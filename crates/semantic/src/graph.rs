//! The schema/mapping graph and its registry.
//!
//! "GridVine maintains information about the graph of schemas and
//! mappings" (§3.1). The [`MappingRegistry`] owns schemas and mappings
//! and derives graph analytics: the directed edge set over *active*
//! mappings, per-schema in/out degrees, strongly connected components
//! (Tarjan), and reachability — the ground truth against which the
//! connectivity indicator of [`crate::connectivity`] is an estimate.

use crate::mapping::{
    Correspondence, Direction, Mapping, MappingId, MappingKind, MappingStatus, Provenance,
};
use crate::schema::{Schema, SchemaId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Degree record a schema-responsible peer publishes under
/// `Hash(Domain)` (§3.1): `{Schema, InDegree, OutDegree}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeRecord {
    pub schema: SchemaId,
    pub in_degree: usize,
    pub out_degree: usize,
}

/// Owns schemas + mappings; the mediation layer's semantic state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MappingRegistry {
    schemas: BTreeMap<SchemaId, Schema>,
    mappings: Vec<Mapping>,
    next_id: u32,
    /// Monotone counter of mapping-network mutations: bumped by every
    /// mapping insert, deprecation, reactivation and mutable mapping
    /// access (quality/status repair). Consumers key derived state on
    /// it — most importantly the reformulation-closure cache
    /// ([`crate::reformulate::ClosureCache`]): as long as the epoch is
    /// unchanged, any previously computed closure over this registry is
    /// still valid.
    epoch: u64,
}

impl MappingRegistry {
    pub fn new() -> MappingRegistry {
        MappingRegistry::default()
    }

    /// Register a schema (idempotent by id; later definitions win).
    pub fn add_schema(&mut self, schema: Schema) {
        self.schemas.insert(schema.id().clone(), schema);
    }

    pub fn schema(&self, id: &SchemaId) -> Option<&Schema> {
        self.schemas.get(id)
    }

    pub fn schemas(&self) -> impl Iterator<Item = &Schema> {
        self.schemas.values()
    }

    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// The current mapping-network epoch (see the field docs). Two
    /// reads returning the same value bracket a window in which no
    /// mapping was inserted, deprecated, reactivated or repaired.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Register a mapping; returns its id.
    pub fn add_mapping(
        &mut self,
        source: impl Into<SchemaId>,
        target: impl Into<SchemaId>,
        kind: MappingKind,
        provenance: Provenance,
        correspondences: Vec<Correspondence>,
    ) -> MappingId {
        let id = MappingId(self.next_id);
        self.next_id += 1;
        self.epoch += 1;
        self.mappings.push(Mapping::new(
            id,
            source,
            target,
            kind,
            provenance,
            correspondences,
        ));
        id
    }

    pub fn mapping(&self, id: MappingId) -> Option<&Mapping> {
        self.mappings.iter().find(|m| m.id == id)
    }

    /// Mutable access to a mapping. Conservatively bumps the epoch:
    /// the caller may change status or quality (the self-organization
    /// repair path does), either of which invalidates cached closures.
    pub fn mapping_mut(&mut self, id: MappingId) -> Option<&mut Mapping> {
        let m = self.mappings.iter_mut().find(|m| m.id == id);
        if m.is_some() {
            self.epoch += 1;
        }
        m
    }

    pub fn mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.iter()
    }

    pub fn active_mappings(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.iter().filter(|m| m.is_active())
    }

    pub fn mapping_count(&self) -> usize {
        self.mappings.len()
    }

    pub fn active_count(&self) -> usize {
        self.active_mappings().count()
    }

    /// Deprecate a mapping: it disappears from reformulation and from
    /// the connectivity statistics (§3.2).
    pub fn deprecate(&mut self, id: MappingId) -> bool {
        match self.mapping_mut(id) {
            Some(m) => {
                m.status = MappingStatus::Deprecated;
                true
            }
            None => false,
        }
    }

    /// Reactivate a previously deprecated or quarantined mapping.
    pub fn reactivate(&mut self, id: MappingId) -> bool {
        match self.mapping_mut(id) {
            Some(m) => {
                m.status = MappingStatus::Active;
                true
            }
            None => false,
        }
    }

    /// Quarantine a mapping: like deprecation it disappears from
    /// reformulation and connectivity, but reversibly — a later
    /// assessment pass may [`reactivate`](Self::reactivate) it. Routed
    /// through [`mapping_mut`](Self::mapping_mut), so the epoch bumps
    /// and every closure cache self-invalidates.
    pub fn quarantine(&mut self, id: MappingId) -> bool {
        match self.mapping_mut(id) {
            Some(m) => {
                m.status = MappingStatus::Quarantined;
                true
            }
            None => false,
        }
    }

    /// Remove a mapping from the registry entirely (bumps the epoch).
    /// This is the rollback half of the atomic mediation commit: a
    /// mapping whose DHT writes could not all be applied must not stay
    /// registered, or queries would observe the half-committed state.
    pub fn retract(&mut self, id: MappingId) -> bool {
        let before = self.mappings.len();
        self.mappings.retain(|m| m.id != id);
        if self.mappings.len() != before {
            self.epoch += 1;
            true
        } else {
            false
        }
    }

    /// Active mappings usable from `schema`, with their direction.
    pub fn applicable_from(&self, schema: &SchemaId) -> Vec<(&Mapping, Direction)> {
        self.active_mappings()
            .filter_map(|m| m.applicable_from(schema).map(|d| (m, d)))
            .collect()
    }

    /// Whether any active mapping already connects the (unordered) pair.
    pub fn connected_directly(&self, a: &SchemaId, b: &SchemaId) -> bool {
        self.active_mappings()
            .any(|m| (&m.source == a && &m.target == b) || (&m.source == b && &m.target == a))
    }

    /// Directed edges of the active graph (deduplicated).
    pub fn edges(&self) -> BTreeSet<(SchemaId, SchemaId)> {
        self.active_mappings().flat_map(|m| m.edges()).collect()
    }

    /// Per-schema (in, out) degrees over active directed edges. Every
    /// registered schema appears, including isolated ones — those are
    /// exactly what drags the connectivity indicator down.
    pub fn degree_records(&self) -> Vec<DegreeRecord> {
        let mut degs: BTreeMap<SchemaId, (usize, usize)> =
            self.schemas.keys().map(|s| (s.clone(), (0, 0))).collect();
        for (from, to) in self.edges() {
            degs.entry(from).or_insert((0, 0)).1 += 1;
            degs.entry(to).or_insert((0, 0)).0 += 1;
        }
        degs.into_iter()
            .map(|(schema, (in_degree, out_degree))| DegreeRecord {
                schema,
                in_degree,
                out_degree,
            })
            .collect()
    }

    /// Schemas reachable from `start` by following active directed
    /// edges (including `start`). This is the set of schemas a query
    /// can be disseminated to (§3.1).
    pub fn reachable(&self, start: &SchemaId) -> BTreeSet<SchemaId> {
        let adj = self.adjacency();
        let mut seen: BTreeSet<SchemaId> = BTreeSet::new();
        let mut stack = vec![start.clone()];
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            if let Some(nexts) = adj.get(&s) {
                for n in nexts {
                    if !seen.contains(n) {
                        stack.push(n.clone());
                    }
                }
            }
        }
        seen
    }

    fn adjacency(&self) -> HashMap<SchemaId, Vec<SchemaId>> {
        let mut adj: HashMap<SchemaId, Vec<SchemaId>> = HashMap::new();
        for (from, to) in self.edges() {
            adj.entry(from).or_default().push(to);
        }
        adj
    }

    /// Strongly connected components (Tarjan, iterative). Isolated
    /// schemas form singleton components.
    pub fn strongly_connected_components(&self) -> Vec<Vec<SchemaId>> {
        let nodes: Vec<SchemaId> = self.schemas.keys().cloned().collect();
        let index_of: HashMap<&SchemaId, usize> =
            nodes.iter().enumerate().map(|(i, s)| (s, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (from, to) in self.edges() {
            if let (Some(&f), Some(&t)) = (index_of.get(&from), index_of.get(&to)) {
                adj[f].push(t);
            }
        }

        // Iterative Tarjan.
        const UNSET: usize = usize::MAX;
        let n = nodes.len();
        let mut index = vec![UNSET; n];
        let mut low = vec![UNSET; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<SchemaId>> = Vec::new();

        for root in 0..n {
            if index[root] != UNSET {
                continue;
            }
            // (node, next child position)
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < adj[v].len() {
                    let w = adj[v][*ci];
                    *ci += 1;
                    if index[w] == UNSET {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack non-empty");
                            on_stack[w] = false;
                            comp.push(nodes[w].clone());
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                    call.pop();
                    if let Some(&mut (parent, _)) = call.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
        sccs.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        sccs
    }

    /// Fraction of schemas inside the largest strongly connected
    /// component — the "giant component" the indicator predicts.
    pub fn largest_scc_fraction(&self) -> f64 {
        if self.schemas.is_empty() {
            return 0.0;
        }
        let largest = self
            .strongly_connected_components()
            .first()
            .map(Vec::len)
            .unwrap_or(0);
        largest as f64 / self.schemas.len() as f64
    }

    /// Whether the active graph is one strongly connected component —
    /// the paper's goal state ("the network of schemas and mappings
    /// forms a strongly connected graph", §3.1).
    pub fn is_strongly_connected(&self) -> bool {
        self.schemas.len() <= 1 || self.largest_scc_fraction() == 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str) -> Schema {
        Schema::new(name, ["a", "b"])
    }

    fn corr() -> Vec<Correspondence> {
        vec![Correspondence::new("a", "a")]
    }

    fn chain(n: usize, kind: MappingKind) -> MappingRegistry {
        let mut reg = MappingRegistry::new();
        for i in 0..n {
            reg.add_schema(schema(&format!("S{i}")));
        }
        for i in 0..n.saturating_sub(1) {
            reg.add_mapping(
                format!("S{i}").as_str(),
                format!("S{}", i + 1).as_str(),
                kind,
                Provenance::Manual,
                corr(),
            );
        }
        reg
    }

    #[test]
    fn equivalence_chain_is_strongly_connected() {
        let reg = chain(5, MappingKind::Equivalence);
        assert!(reg.is_strongly_connected());
        assert_eq!(reg.largest_scc_fraction(), 1.0);
        assert_eq!(reg.reachable(&SchemaId::new("S0")).len(), 5);
    }

    #[test]
    fn subsumption_chain_is_weakly_connected_only() {
        let reg = chain(5, MappingKind::Subsumption);
        assert!(!reg.is_strongly_connected());
        // Each node its own SCC in a directed path.
        assert_eq!(reg.strongly_connected_components().len(), 5);
        assert_eq!(reg.reachable(&SchemaId::new("S0")).len(), 5);
        assert_eq!(reg.reachable(&SchemaId::new("S4")).len(), 1);
    }

    #[test]
    fn deprecation_cuts_the_graph() {
        let mut reg = chain(3, MappingKind::Equivalence);
        assert!(reg.is_strongly_connected());
        let cut = reg
            .mappings()
            .find(|m| m.source == SchemaId::new("S1"))
            .map(|m| m.id)
            .expect("exists");
        assert!(reg.deprecate(cut));
        assert!(!reg.is_strongly_connected());
        assert_eq!(reg.reachable(&SchemaId::new("S0")).len(), 2);
        assert_eq!(reg.active_count(), 1);
        assert_eq!(reg.mapping_count(), 2);
        // Reactivation restores connectivity.
        assert!(reg.reactivate(cut));
        assert!(reg.is_strongly_connected());
    }

    #[test]
    fn quarantine_cuts_the_graph_and_is_reversible() {
        let mut reg = chain(3, MappingKind::Equivalence);
        let cut = reg
            .mappings()
            .find(|m| m.source == SchemaId::new("S1"))
            .map(|m| m.id)
            .expect("exists");
        let e0 = reg.epoch();
        assert!(reg.quarantine(cut));
        assert!(reg.epoch() > e0, "quarantine must bump the epoch");
        assert!(!reg.is_strongly_connected());
        assert_eq!(reg.mapping(cut).unwrap().status, MappingStatus::Quarantined);
        assert_eq!(reg.active_count(), 1);
        let e1 = reg.epoch();
        assert!(reg.reactivate(cut));
        assert!(reg.epoch() > e1, "reactivation must bump the epoch");
        assert!(reg.is_strongly_connected());
        assert!(!reg.quarantine(MappingId(99)));
    }

    #[test]
    fn retract_removes_the_mapping_and_bumps_epoch() {
        let mut reg = chain(2, MappingKind::Equivalence);
        let id = reg.mappings().next().map(|m| m.id).expect("exists");
        let e0 = reg.epoch();
        assert!(reg.retract(id));
        assert!(reg.epoch() > e0);
        assert!(reg.mapping(id).is_none());
        assert_eq!(reg.mapping_count(), 0);
        assert!(!reg.retract(id), "second retract is a no-op");
    }

    #[test]
    fn degree_records_count_directed_edges() {
        let reg = chain(3, MappingKind::Equivalence);
        let recs = reg.degree_records();
        assert_eq!(recs.len(), 3);
        let by_name: BTreeMap<&str, (usize, usize)> = recs
            .iter()
            .map(|r| (r.schema.as_str(), (r.in_degree, r.out_degree)))
            .collect();
        // Equivalence edges are bidirectional: middle has 2 in, 2 out.
        assert_eq!(by_name["S0"], (1, 1));
        assert_eq!(by_name["S1"], (2, 2));
        assert_eq!(by_name["S2"], (1, 1));
    }

    #[test]
    fn isolated_schemas_appear_with_zero_degree() {
        let mut reg = chain(2, MappingKind::Equivalence);
        reg.add_schema(schema("LONER"));
        let recs = reg.degree_records();
        let loner = recs
            .iter()
            .find(|r| r.schema.as_str() == "LONER")
            .expect("present");
        assert_eq!((loner.in_degree, loner.out_degree), (0, 0));
        assert!(!reg.is_strongly_connected());
        assert!((reg.largest_scc_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_cycles_bridged_one_way_are_two_sccs() {
        let mut reg = MappingRegistry::new();
        for s in ["A", "B", "C", "D"] {
            reg.add_schema(schema(s));
        }
        // A ≡ B, C ≡ D, B ⊑ C
        reg.add_mapping(
            "A",
            "B",
            MappingKind::Equivalence,
            Provenance::Manual,
            corr(),
        );
        reg.add_mapping(
            "C",
            "D",
            MappingKind::Equivalence,
            Provenance::Manual,
            corr(),
        );
        reg.add_mapping(
            "B",
            "C",
            MappingKind::Subsumption,
            Provenance::Manual,
            corr(),
        );
        let sccs = reg.strongly_connected_components();
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0].len(), 2);
        assert_eq!(reg.reachable(&SchemaId::new("A")).len(), 4);
        assert_eq!(reg.reachable(&SchemaId::new("C")).len(), 2);
    }

    #[test]
    fn connected_directly_ignores_direction_and_deprecated() {
        let mut reg = chain(2, MappingKind::Subsumption);
        assert!(reg.connected_directly(&SchemaId::new("S0"), &SchemaId::new("S1")));
        assert!(reg.connected_directly(&SchemaId::new("S1"), &SchemaId::new("S0")));
        let id = reg.mappings().next().map(|m| m.id).expect("exists");
        reg.deprecate(id);
        assert!(!reg.connected_directly(&SchemaId::new("S0"), &SchemaId::new("S1")));
    }

    #[test]
    fn empty_registry_is_trivially_connected() {
        let reg = MappingRegistry::new();
        assert!(reg.is_strongly_connected());
        assert_eq!(reg.largest_scc_fraction(), 0.0);
        assert!(reg.degree_records().is_empty());
    }

    #[test]
    fn applicable_from_respects_direction_and_status() {
        let mut reg = MappingRegistry::new();
        reg.add_schema(schema("A"));
        reg.add_schema(schema("B"));
        let id = reg.add_mapping(
            "A",
            "B",
            MappingKind::Subsumption,
            Provenance::Manual,
            corr(),
        );
        assert_eq!(reg.applicable_from(&SchemaId::new("A")).len(), 1);
        assert!(reg.applicable_from(&SchemaId::new("B")).is_empty());
        reg.deprecate(id);
        assert!(reg.applicable_from(&SchemaId::new("A")).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reachability-based SCC for cross-checking Tarjan.
    fn naive_sccs(reg: &MappingRegistry) -> Vec<Vec<SchemaId>> {
        let nodes: Vec<SchemaId> = reg.schemas().map(|s| s.id().clone()).collect();
        let mut comps: Vec<Vec<SchemaId>> = Vec::new();
        let mut assigned: BTreeSet<SchemaId> = BTreeSet::new();
        for a in &nodes {
            if assigned.contains(a) {
                continue;
            }
            let from_a = reg.reachable(a);
            let mut comp = vec![a.clone()];
            for b in &nodes {
                if b != a && from_a.contains(b) && reg.reachable(b).contains(a) {
                    comp.push(b.clone());
                }
            }
            comp.sort();
            for c in &comp {
                assigned.insert(c.clone());
            }
            comps.push(comp);
        }
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        comps
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Tarjan agrees with the O(n²) reachability definition of SCCs
        /// on random graphs.
        #[test]
        fn tarjan_matches_naive(
            n in 1usize..10,
            edges in proptest::collection::vec((0usize..10, 0usize..10, any::<bool>()), 0..25),
        ) {
            let mut reg = MappingRegistry::new();
            for i in 0..n {
                reg.add_schema(Schema::new(format!("S{i}").as_str(), ["a"]));
            }
            for (f, t, equiv) in edges {
                let (f, t) = (f % n, t % n);
                if f == t { continue; }
                let kind = if equiv { MappingKind::Equivalence } else { MappingKind::Subsumption };
                reg.add_mapping(
                    format!("S{f}").as_str(),
                    format!("S{t}").as_str(),
                    kind,
                    Provenance::Manual,
                    vec![Correspondence::new("a", "a")],
                );
            }
            prop_assert_eq!(reg.strongly_connected_components(), naive_sccs(&reg));
        }

        /// SCCs partition the schema set.
        #[test]
        fn sccs_partition(n in 1usize..12, seed_edges in proptest::collection::vec((0usize..12, 0usize..12), 0..30)) {
            let mut reg = MappingRegistry::new();
            for i in 0..n {
                reg.add_schema(Schema::new(format!("S{i}").as_str(), ["a"]));
            }
            for (f, t) in seed_edges {
                let (f, t) = (f % n, t % n);
                if f == t { continue; }
                reg.add_mapping(
                    format!("S{f}").as_str(),
                    format!("S{t}").as_str(),
                    MappingKind::Subsumption,
                    Provenance::Manual,
                    vec![Correspondence::new("a", "a")],
                );
            }
            let sccs = reg.strongly_connected_components();
            let total: usize = sccs.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
            let mut all: Vec<SchemaId> = sccs.into_iter().flatten().collect();
            all.sort();
            all.dedup();
            prop_assert_eq!(all.len(), n);
        }
    }
}
