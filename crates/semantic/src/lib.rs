//! # gridvine-semantic
//!
//! The self-organizing semantics of GridVine (§3 of the paper): schemas,
//! pairwise GAV mappings, the mapping-graph analytics behind the
//! connectivity indicator, query reformulation by view unfolding, the
//! automatic schema matchers, and the Bayesian cycle analysis that
//! deprecates bad mappings.
//!
//! | paper concept | here |
//! |---|---|
//! | schemas as attribute sets (§2.2) | [`schema::Schema`] |
//! | equivalence / subsumption GAV mappings (§3) | [`mapping::Mapping`] |
//! | graph of schemas & mappings (§3.1) | [`graph::MappingRegistry`] |
//! | `ci = Σ (jk − k) p_jk` (§3.1) | [`connectivity::DegreeDistribution`] |
//! | query reformulation / view unfolding (§3, Fig. 2) | [`reformulate`] |
//! | lexicographic + set-distance matchers (§4) | [`matcher`] |
//! | Bayesian cycle analysis & deprecation (§3.2) | [`bayes`] |
//! | stale / corrupted / Byzantine mapping gossip | [`adversary`] |
//!
//! ```
//! use gridvine_semantic::prelude::*;
//! use gridvine_rdf::TriplePatternQuery;
//!
//! // The Figure-2 scenario: EMBL#Organism ≡ EMP#SystematicName.
//! let mut reg = MappingRegistry::new();
//! reg.add_schema(Schema::new("EMBL", ["Organism"]));
//! reg.add_schema(Schema::new("EMP", ["SystematicName"]));
//! reg.add_mapping(
//!     "EMBL", "EMP",
//!     MappingKind::Equivalence, Provenance::Manual,
//!     vec![Correspondence::new("Organism", "SystematicName")],
//! );
//! let q = TriplePatternQuery::example_aspergillus();
//! let refs = reformulations(&reg, &q, 5).unwrap();
//! assert_eq!(refs.len(), 2); // original + EMP reformulation
//! ```

pub mod adversary;
pub mod bayes;
pub mod compose;
pub mod connectivity;
pub mod graph;
pub mod mapping;
pub mod matcher;
pub mod reformulate;
pub mod schema;

/// Glob-import surface.
pub mod prelude {
    pub use crate::adversary::{
        InjectedKind, Injection, SemanticAdversary, SemanticFaultConfig, SemanticFaultCounters,
    };
    pub use crate::bayes::{
        apply_assessment, apply_quarantine, assess, Assessment, BayesConfig, CycleOutcome,
    };
    pub use crate::compose::{compose_correspondences, compose_path, find_path, Composed};
    pub use crate::connectivity::{connectivity_indicator, DegreeDistribution};
    pub use crate::graph::{DegreeRecord, MappingRegistry};
    pub use crate::mapping::{
        Correspondence, Direction, Mapping, MappingId, MappingKind, MappingStatus, Provenance,
    };
    pub use crate::matcher::{
        lexical_similarity, match_profiles, MatcherConfig, SchemaProfile, ScoredCorrespondence,
    };
    pub use crate::reformulate::{
        pattern_schema, query_schema, reformulate_pattern, reformulate_step, reformulations,
        CacheCounters, CachedHop, ClosureCache, ClosureKey, ClosureWalk, ReformulateError,
        Reformulation, Step,
    };
    pub use crate::schema::{Schema, SchemaId};
}

pub use adversary::{
    InjectedKind, Injection, SemanticAdversary, SemanticFaultConfig, SemanticFaultCounters,
};
pub use bayes::{
    apply_assessment, apply_quarantine, assess, Assessment, BayesConfig, CycleOutcome,
};
pub use compose::{compose_correspondences, compose_path, find_path, Composed};
pub use connectivity::{connectivity_indicator, DegreeDistribution};
pub use graph::{DegreeRecord, MappingRegistry};
pub use mapping::{
    Correspondence, Direction, Mapping, MappingId, MappingKind, MappingStatus, Provenance,
};
pub use matcher::{
    lexical_similarity, match_profiles, MatcherConfig, SchemaProfile, ScoredCorrespondence,
};
pub use reformulate::{
    pattern_schema, query_schema, reformulate_pattern, reformulate_step, reformulations,
    CacheCounters, CachedHop, ClosureCache, ClosureKey, ClosureWalk, ReformulateError,
    Reformulation, Step,
};
pub use schema::{Schema, SchemaId};
