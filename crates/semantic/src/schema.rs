//! User-defined schemas.
//!
//! "GridVine supports the sharing of user-defined schemas to structure
//! the data shared at the mediation layer. For the sake of this
//! demonstration, schemas are composed of sets of attributes that are
//! used as predicates in the triples" (§2.2). A schema named `EMBL` with
//! attribute `Organism` yields the predicate URI `EMBL#Organism`.

use gridvine_rdf::Uri;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a schema by its (globally unique) name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SchemaId(String);

impl SchemaId {
    pub fn new(name: impl Into<String>) -> SchemaId {
        SchemaId(name.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SchemaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for SchemaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for SchemaId {
    fn from(s: &str) -> SchemaId {
        SchemaId::new(s)
    }
}

/// A schema: a named set of attributes.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    id: SchemaId,
    attributes: Vec<String>,
}

impl Schema {
    /// Create a schema; attribute names are deduplicated, order
    /// preserved.
    pub fn new(
        id: impl Into<SchemaId>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Schema {
        let mut seen = Vec::new();
        for a in attributes {
            let a = a.into();
            if !seen.contains(&a) {
                seen.push(a);
            }
        }
        Schema {
            id: id.into(),
            attributes: seen,
        }
    }

    pub fn id(&self) -> &SchemaId {
        &self.id
    }

    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    pub fn has_attribute(&self, attr: &str) -> bool {
        self.attributes.iter().any(|a| a == attr)
    }

    /// The predicate URI for one of this schema's attributes:
    /// `<SchemaName>#<attribute>`.
    pub fn predicate(&self, attr: &str) -> Uri {
        debug_assert!(self.has_attribute(attr), "unknown attribute {attr}");
        Uri::new(format!("{}#{attr}", self.id))
    }

    /// All predicate URIs of this schema.
    pub fn predicates(&self) -> impl Iterator<Item = Uri> + '_ {
        self.attributes
            .iter()
            .map(move |a| Uri::new(format!("{}#{a}", self.id)))
    }

    /// Split a predicate URI into (schema id, attribute) if it follows
    /// the `<schema>#<attr>` convention.
    pub fn split_predicate(uri: &Uri) -> Option<(SchemaId, &str)> {
        Schema::split_predicate_str(uri.as_str())
    }

    /// [`Schema::split_predicate`] over a raw lexical (for borrowed
    /// [`gridvine_rdf::TripleRef`] views, which hand out `&str`).
    pub fn split_predicate_str(s: &str) -> Option<(SchemaId, &str)> {
        let (schema, attr) = s.split_once('#')?;
        if schema.is_empty() || attr.is_empty() {
            return None;
        }
        Some((SchemaId::new(schema), &s[schema.len() + 1..]))
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema({}: {})", self.id, self.attributes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_deduplicate_preserving_order() {
        let s = Schema::new("EMBL", ["Organism", "Length", "Organism"]);
        assert_eq!(s.attributes(), &["Organism", "Length"]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn predicate_uri_form() {
        let s = Schema::new("EMBL", ["Organism"]);
        assert_eq!(s.predicate("Organism").as_str(), "EMBL#Organism");
    }

    #[test]
    fn predicates_enumerate_all() {
        let s = Schema::new("EMP", ["SystematicName", "Sequence"]);
        let preds: Vec<String> = s.predicates().map(|u| u.as_str().to_string()).collect();
        assert_eq!(preds, vec!["EMP#SystematicName", "EMP#Sequence"]);
    }

    #[test]
    fn split_predicate_round_trips() {
        let s = Schema::new("SwissProt", ["Entry"]);
        let uri = s.predicate("Entry");
        let (id, attr) = Schema::split_predicate(&uri).expect("splits");
        assert_eq!(id, SchemaId::new("SwissProt"));
        assert_eq!(attr, "Entry");
    }

    #[test]
    fn split_predicate_rejects_malformed() {
        assert!(Schema::split_predicate(&Uri::new("nohash")).is_none());
        assert!(Schema::split_predicate(&Uri::new("#attr")).is_none());
        assert!(Schema::split_predicate(&Uri::new("schema#")).is_none());
    }

    #[test]
    fn has_attribute() {
        let s = Schema::new("A", ["x"]);
        assert!(s.has_attribute("x"));
        assert!(!s.has_attribute("y"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// predicate() and split_predicate() are inverse.
        #[test]
        fn predicate_split_inverse(name in "[A-Za-z][A-Za-z0-9]{0,10}", attr in "[A-Za-z][A-Za-z0-9_]{0,12}") {
            let s = Schema::new(name.as_str(), [attr.as_str()]);
            let uri = s.predicate(&attr);
            let (id, a) = Schema::split_predicate(&uri).expect("round trip");
            prop_assert_eq!(id.as_str(), name.as_str());
            prop_assert_eq!(a, attr.as_str());
        }
    }
}
