//! Deterministic semantic-fault injection: stale, corrupted and
//! Byzantine mappings gossiped into the [`MappingRegistry`].
//!
//! PR 6's [`gridvine_netsim`-level fault model] made the *wire*
//! adversarial; this module extends the adversary to the mediation
//! layer itself. Where a network fault corrupts *delivery*, a semantic
//! fault corrupts *meaning*: the mapping network accumulates edges that
//! are well-formed (they type-check against the registered schemas) but
//! wrong, and only the Bayesian cycle analysis ([`crate::bayes`]) can
//! tell. Three dimensions, each drawn at its configured rate per
//! gossip round:
//!
//! * **stale** — an epoch-lagged copy of a *deprecated* edge is
//!   re-gossiped as if it were still current: a peer that missed the
//!   deprecation keeps spreading the retired mapping;
//! * **corrupted** — an active mapping is re-gossiped with its
//!   [`Correspondence`] attribute pairs permuted: every attribute still
//!   belongs to the right schema, so nothing but cycle evidence exposes
//!   the swap;
//! * **Byzantine** — a designated adversarial peer fabricates an edge
//!   between two random schemas with arbitrary (type-checking)
//!   correspondences, labelled [`Provenance::Byzantine`] purely as
//!   ground truth for experiments — detection never reads the label.
//!
//! Like [`FaultModel`](../../gridvine_netsim/fault/struct.FaultModel.html),
//! the adversary owns a dedicated RNG stream derived from the system
//! seed, and every draw is gated on its rate being non-zero: a *null*
//! config consumes no randomness at all, so enabling the module leaves
//! fault-free runs bit-identical.

use crate::graph::MappingRegistry;
use crate::mapping::{Correspondence, MappingId, MappingKind, MappingStatus, Provenance};
use crate::schema::SchemaId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Mediation-layer fault rates plus the designated adversarial peers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticFaultConfig {
    /// Per-round probability that a deprecated mapping is re-gossiped
    /// as an active copy. In `[0, 1]`.
    pub stale: f64,
    /// Per-round probability that an active mapping is re-gossiped
    /// with permuted correspondences. In `[0, 1]`.
    pub corrupt: f64,
    /// Per-round, per-adversarial-peer probability of fabricating an
    /// edge between two random schemas. In `[0, 1]`.
    pub byzantine: f64,
    /// Peer indices acting Byzantine. Must be non-empty when
    /// `byzantine > 0`.
    pub adversaries: Vec<usize>,
}

impl Default for SemanticFaultConfig {
    fn default() -> Self {
        SemanticFaultConfig::none()
    }
}

impl SemanticFaultConfig {
    /// The null adversary: no injection, zero randomness consumed.
    pub fn none() -> SemanticFaultConfig {
        SemanticFaultConfig {
            stale: 0.0,
            corrupt: 0.0,
            byzantine: 0.0,
            adversaries: Vec::new(),
        }
    }

    /// Stale re-gossip at probability `p`, other dimensions off.
    pub fn stale(p: f64) -> SemanticFaultConfig {
        SemanticFaultConfig {
            stale: p,
            ..SemanticFaultConfig::none()
        }
    }

    /// Correspondence permutation at probability `p`, other dimensions
    /// off.
    pub fn corrupting(p: f64) -> SemanticFaultConfig {
        SemanticFaultConfig {
            corrupt: p,
            ..SemanticFaultConfig::none()
        }
    }

    /// Byzantine fabrication at probability `p` from the given peers.
    pub fn byzantine(p: f64, adversaries: Vec<usize>) -> SemanticFaultConfig {
        SemanticFaultConfig {
            byzantine: p,
            adversaries,
            ..SemanticFaultConfig::none()
        }
    }

    /// Whether this config can never inject anything (fast path: the
    /// system skips adversary processing entirely).
    pub fn is_null(&self) -> bool {
        self.stale == 0.0 && self.corrupt == 0.0 && self.byzantine == 0.0
    }

    /// Panic unless every rate is in `[0, 1]` and a non-zero Byzantine
    /// rate names at least one adversarial peer.
    /// [`SemanticAdversary::new`] calls this; consumers embedding the
    /// config in their own state should too.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.stale),
            "stale gossip probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.corrupt),
            "corrupt gossip probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.byzantine),
            "byzantine probability must be in [0, 1]"
        );
        assert!(
            self.byzantine == 0.0 || !self.adversaries.is_empty(),
            "a non-zero byzantine rate needs designated adversarial peers"
        );
    }
}

/// Running injection counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemanticFaultCounters {
    pub stale: u64,
    pub corrupted: u64,
    pub fabricated: u64,
}

/// What kind of fault one injected mapping is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedKind {
    /// Re-gossiped copy of a deprecated edge.
    Stale,
    /// Permuted-correspondence copy of an active edge.
    Corrupted,
    /// Fabricated edge from the adversarial peer with this index.
    Byzantine(usize),
}

/// One mapping the adversary injected this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    pub id: MappingId,
    pub kind: InjectedKind,
}

/// Stateful semantic adversary: the config plus its own deterministic
/// RNG stream and running counters.
#[derive(Debug)]
pub struct SemanticAdversary {
    cfg: SemanticFaultConfig,
    rng: StdRng,
    counters: SemanticFaultCounters,
}

/// The adversary's RNG stream label (netsim uses `0xFA17` for wire
/// faults, the core retry protocol `0xB0FF`, churn `0xC0_11AB1E`).
const STREAM: u64 = 0x5EED_0BAD;

/// Derive an independent child RNG from a parent seed and a stream
/// label — the same SplitMix64 mix as `gridvine_netsim::rng::derive`,
/// duplicated here so the pure mediation-logic crate does not depend on
/// the network simulator. Stream labels share one namespace across the
/// workspace.
fn derive(seed: u64, stream: u64) -> StdRng {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

impl SemanticAdversary {
    /// Build an adversary from a validated config; the RNG stream is
    /// derived from the system seed so injection draws never collide
    /// with routing, protocol or wire-fault randomness.
    pub fn new(cfg: SemanticFaultConfig, seed: u64) -> SemanticAdversary {
        cfg.validate();
        SemanticAdversary {
            rng: derive(seed, STREAM),
            cfg,
            counters: SemanticFaultCounters::default(),
        }
    }

    /// Whether this adversary can never inject anything.
    pub fn is_null(&self) -> bool {
        self.cfg.is_null()
    }

    /// Injection counts so far.
    pub fn counters(&self) -> SemanticFaultCounters {
        self.counters
    }

    pub fn config(&self) -> &SemanticFaultConfig {
        &self.cfg
    }

    /// Run one gossip round against the registry: each dimension fires
    /// independently at its rate and registers its injected mapping(s).
    /// Draws are gated on non-zero rates so disabled dimensions consume
    /// no randomness. Returns what was injected (the caller is
    /// responsible for publishing DHT copies of the new mappings, so
    /// injected edges are observable by query reformulation too).
    pub fn gossip_round(&mut self, registry: &mut MappingRegistry) -> Vec<Injection> {
        let mut out = Vec::new();
        if self.cfg.stale > 0.0 && self.rng.gen::<f64>() < self.cfg.stale {
            if let Some(id) = self.inject_stale(registry) {
                self.counters.stale += 1;
                out.push(Injection {
                    id,
                    kind: InjectedKind::Stale,
                });
            }
        }
        if self.cfg.corrupt > 0.0 && self.rng.gen::<f64>() < self.cfg.corrupt {
            if let Some(id) = self.inject_corrupted(registry) {
                self.counters.corrupted += 1;
                out.push(Injection {
                    id,
                    kind: InjectedKind::Corrupted,
                });
            }
        }
        if self.cfg.byzantine > 0.0 {
            let adversaries = self.cfg.adversaries.clone();
            for peer in adversaries {
                if self.rng.gen::<f64>() < self.cfg.byzantine {
                    if let Some(id) = self.inject_byzantine(registry) {
                        self.counters.fabricated += 1;
                        out.push(Injection {
                            id,
                            kind: InjectedKind::Byzantine(peer),
                        });
                    }
                }
            }
        }
        out
    }

    /// Re-gossip a deprecated edge as an active copy. The copy carries
    /// [`Provenance::Automatic`]: an unsigned gossiped copy cannot
    /// claim manual trust, so the quality layer is allowed to condemn
    /// it.
    fn inject_stale(&mut self, registry: &mut MappingRegistry) -> Option<MappingId> {
        let candidates: Vec<MappingId> = registry
            .mappings()
            .filter(|m| m.status == MappingStatus::Deprecated)
            .map(|m| m.id)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates[self.rng.gen_range(0..candidates.len())];
        let old = registry.mapping(pick).expect("candidate exists").clone();
        Some(registry.add_mapping(
            old.source,
            old.target,
            old.kind,
            Provenance::Automatic,
            old.correspondences,
        ))
    }

    /// Re-gossip an active mapping with its correspondence targets
    /// rotated by one: every pair still names real attributes of the
    /// right schemas (it type-checks), but the meaning is scrambled.
    fn inject_corrupted(&mut self, registry: &mut MappingRegistry) -> Option<MappingId> {
        let candidates: Vec<MappingId> = registry
            .active_mappings()
            .filter(|m| m.correspondences.len() >= 2)
            .map(|m| m.id)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates[self.rng.gen_range(0..candidates.len())];
        let old = registry.mapping(pick).expect("candidate exists").clone();
        let mut targets: Vec<String> = old
            .correspondences
            .iter()
            .map(|c| c.target_attr.clone())
            .collect();
        targets.rotate_left(1);
        let corrupted: Vec<Correspondence> = old
            .correspondences
            .iter()
            .zip(targets)
            .map(|(c, t)| Correspondence::new(c.source_attr.clone(), t))
            .collect();
        Some(registry.add_mapping(
            old.source,
            old.target,
            old.kind,
            Provenance::Automatic,
            corrupted,
        ))
    }

    /// Fabricate an equivalence edge between two random distinct
    /// schemas, pairing each source attribute with a random attribute
    /// of the target schema.
    fn inject_byzantine(&mut self, registry: &mut MappingRegistry) -> Option<MappingId> {
        let schemas: Vec<SchemaId> = registry.schemas().map(|s| s.id().clone()).collect();
        if schemas.len() < 2 {
            return None;
        }
        let a = self.rng.gen_range(0..schemas.len());
        let mut b = self.rng.gen_range(0..schemas.len() - 1);
        if b >= a {
            b += 1;
        }
        let (source, target) = (schemas[a].clone(), schemas[b].clone());
        let source_attrs = registry.schema(&source)?.attributes().to_vec();
        let target_attrs = registry.schema(&target)?.attributes().to_vec();
        if source_attrs.is_empty() || target_attrs.is_empty() {
            return None;
        }
        let correspondences: Vec<Correspondence> = source_attrs
            .into_iter()
            .map(|s| {
                let t = target_attrs[self.rng.gen_range(0..target_attrs.len())].clone();
                Correspondence::new(s, t)
            })
            .collect();
        Some(registry.add_mapping(
            source,
            target,
            MappingKind::Equivalence,
            Provenance::Byzantine,
            correspondences,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn registry(schemas: usize, chain: usize) -> MappingRegistry {
        let mut reg = MappingRegistry::new();
        for i in 0..schemas {
            reg.add_schema(Schema::new(format!("S{i}").as_str(), ["a", "b"]));
        }
        for i in 0..chain.min(schemas.saturating_sub(1)) {
            reg.add_mapping(
                format!("S{i}").as_str(),
                format!("S{}", i + 1).as_str(),
                MappingKind::Equivalence,
                Provenance::Manual,
                vec![Correspondence::new("a", "a"), Correspondence::new("b", "b")],
            );
        }
        reg
    }

    #[test]
    fn null_adversary_injects_nothing() {
        let mut adv = SemanticAdversary::new(SemanticFaultConfig::none(), 7);
        assert!(adv.is_null());
        let mut reg = registry(4, 3);
        let before = (reg.epoch(), reg.mapping_count());
        for _ in 0..50 {
            assert!(adv.gossip_round(&mut reg).is_empty());
        }
        assert_eq!((reg.epoch(), reg.mapping_count()), before);
        assert_eq!(adv.counters(), SemanticFaultCounters::default());
    }

    #[test]
    fn stale_reinjects_a_deprecated_edge() {
        let mut reg = registry(3, 2);
        let dead = reg.mappings().next().map(|m| m.id).unwrap();
        let (src, tgt) = {
            let m = reg.mapping(dead).unwrap();
            (m.source.clone(), m.target.clone())
        };
        reg.deprecate(dead);
        let mut adv = SemanticAdversary::new(SemanticFaultConfig::stale(1.0), 3);
        let injected = adv.gossip_round(&mut reg);
        assert_eq!(injected.len(), 1);
        assert_eq!(injected[0].kind, InjectedKind::Stale);
        let copy = reg.mapping(injected[0].id).unwrap();
        assert!(copy.is_active());
        assert_eq!((&copy.source, &copy.target), (&src, &tgt));
        assert_eq!(copy.provenance, Provenance::Automatic);
        assert_eq!(adv.counters().stale, 1);
    }

    #[test]
    fn stale_with_no_deprecated_candidates_is_a_noop() {
        let mut reg = registry(3, 2);
        let mut adv = SemanticAdversary::new(SemanticFaultConfig::stale(1.0), 3);
        assert!(adv.gossip_round(&mut reg).is_empty());
        assert_eq!(adv.counters().stale, 0);
    }

    #[test]
    fn corrupted_copy_permutes_but_still_type_checks() {
        let mut reg = registry(3, 2);
        let mut adv = SemanticAdversary::new(SemanticFaultConfig::corrupting(1.0), 5);
        let injected = adv.gossip_round(&mut reg);
        assert_eq!(injected.len(), 1);
        let copy = reg.mapping(injected[0].id).unwrap().clone();
        let original = reg
            .mappings()
            .find(|m| {
                m.id != copy.id && m.source == copy.source && m.provenance == Provenance::Manual
            })
            .unwrap();
        // Same edge, same source attributes, permuted targets.
        assert_eq!(copy.target, original.target);
        assert_ne!(copy.correspondences, original.correspondences);
        let target_attrs = reg.schema(&copy.target).unwrap().attributes().to_vec();
        for c in &copy.correspondences {
            assert!(target_attrs.contains(&c.target_attr), "{c:?} type-checks");
        }
    }

    #[test]
    fn byzantine_fabricates_from_designated_peers() {
        let mut reg = registry(5, 0);
        let mut adv = SemanticAdversary::new(SemanticFaultConfig::byzantine(1.0, vec![3, 9]), 11);
        let injected = adv.gossip_round(&mut reg);
        assert_eq!(injected.len(), 2, "both adversaries fire at rate 1.0");
        let peers: Vec<usize> = injected
            .iter()
            .map(|i| match i.kind {
                InjectedKind::Byzantine(p) => p,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(peers, vec![3, 9]);
        for i in &injected {
            let m = reg.mapping(i.id).unwrap();
            assert_eq!(m.provenance, Provenance::Byzantine);
            assert_ne!(m.source, m.target);
            let target_attrs = reg.schema(&m.target).unwrap().attributes().to_vec();
            for c in &m.correspondences {
                assert!(target_attrs.contains(&c.target_attr));
            }
        }
    }

    #[test]
    fn identical_seeds_identical_injections() {
        let run = |seed: u64| {
            let mut reg = registry(6, 4);
            let dead = reg.mappings().next().map(|m| m.id).unwrap();
            reg.deprecate(dead);
            let mut adv = SemanticAdversary::new(
                SemanticFaultConfig {
                    stale: 0.4,
                    corrupt: 0.4,
                    byzantine: 0.4,
                    adversaries: vec![1, 2],
                },
                seed,
            );
            let mut all = Vec::new();
            for _ in 0..30 {
                all.extend(adv.gossip_round(&mut reg));
            }
            all
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn disabled_dimensions_consume_no_randomness() {
        // A stale-only run must make exactly the same injections as a
        // run whose corrupt/byzantine draws are gated out — the stale
        // stream does not shift when other dimensions are disabled.
        let run = |cfg: SemanticFaultConfig| {
            let mut reg = registry(5, 3);
            let dead = reg.mappings().next().map(|m| m.id).unwrap();
            reg.deprecate(dead);
            let mut adv = SemanticAdversary::new(cfg, 4);
            let mut all = Vec::new();
            for _ in 0..40 {
                all.extend(adv.gossip_round(&mut reg).iter().map(|i| i.kind));
            }
            all
        };
        assert_eq!(
            run(SemanticFaultConfig::stale(0.3)),
            run(SemanticFaultConfig {
                stale: 0.3,
                corrupt: 0.0,
                byzantine: 0.0,
                adversaries: vec![],
            })
        );
    }

    #[test]
    #[should_panic(expected = "stale gossip probability")]
    fn rejects_invalid_stale_rate() {
        let _ = SemanticAdversary::new(
            SemanticFaultConfig {
                stale: 1.5,
                ..SemanticFaultConfig::none()
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "designated adversarial peers")]
    fn rejects_byzantine_without_adversaries() {
        let _ = SemanticAdversary::new(SemanticFaultConfig::byzantine(0.5, vec![]), 0);
    }
}
