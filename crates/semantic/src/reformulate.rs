//! Query reformulation by view unfolding (§3, Figure 2).
//!
//! "Mappings allow the reformulation of a query posed against a given
//! schema into a new query posed against a semantically similar schema.
//! By iterating this process over several mappings, a query can traverse
//! a sequence of schemas at the mediation layer and retrieve all relevant
//! results, irrespective of their schemas."
//!
//! [`reformulations`] expands a triple-pattern query through the active
//! mapping network breadth-first, producing one reformulated query per
//! reachable schema (shortest mapping path first), exactly the expansion
//! the *iterative* strategy executes at the originating peer. The
//! *recursive* strategy executes the same one-step rule
//! ([`reformulate_step`]) at each intermediate peer.

use crate::graph::MappingRegistry;
use crate::mapping::{Direction, MappingId};
use crate::schema::{Schema, SchemaId};
use gridvine_rdf::{PatternTerm, Term, TriplePattern, TriplePatternQuery, Uri};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// One application of a mapping along a reformulation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    pub mapping: MappingId,
    pub direction: Direction,
}

/// A query translated into another schema's vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reformulation {
    /// Schema the reformulated query is posed against.
    pub schema: SchemaId,
    /// The translated query.
    pub query: TriplePatternQuery,
    /// The mapping path from the original schema (empty for the
    /// original query itself).
    pub path: Vec<Step>,
}

impl Reformulation {
    /// Number of mapping applications.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Smallest quality along the path (1.0 for the original query);
    /// a simple confidence proxy for ranking results.
    pub fn path_quality(&self, registry: &MappingRegistry) -> f64 {
        self.path
            .iter()
            .filter_map(|s| registry.mapping(s.mapping))
            .map(|m| m.quality)
            .fold(1.0, f64::min)
    }
}

/// Why a query cannot be reformulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReformulateError {
    /// The query's predicate is a variable — there is no schema to
    /// translate from.
    UnboundPredicate,
    /// The predicate does not follow the `<schema>#<attr>` convention.
    MalformedPredicate { uri: String },
}

impl std::fmt::Display for ReformulateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReformulateError::UnboundPredicate => {
                write!(f, "query predicate is a variable; nothing to reformulate")
            }
            ReformulateError::MalformedPredicate { uri } => {
                write!(f, "predicate {uri:?} is not of the form schema#attribute")
            }
        }
    }
}

impl std::error::Error for ReformulateError {}

/// Extract the (schema, attribute) of a pattern's predicate constant.
pub fn pattern_schema(pattern: &TriplePattern) -> Result<(SchemaId, String), ReformulateError> {
    match &pattern.predicate {
        PatternTerm::Var(_) => Err(ReformulateError::UnboundPredicate),
        PatternTerm::Const(Term::Literal(s)) => {
            Err(ReformulateError::MalformedPredicate { uri: s.to_string() })
        }
        PatternTerm::Const(Term::Uri(u)) => match Schema::split_predicate(u) {
            Some((schema, attr)) => Ok((schema, attr.to_string())),
            None => Err(ReformulateError::MalformedPredicate {
                uri: u.as_str().to_string(),
            }),
        },
    }
}

/// Extract the (schema, attribute) of a query's predicate constant.
pub fn query_schema(query: &TriplePatternQuery) -> Result<(SchemaId, String), ReformulateError> {
    pattern_schema(&query.pattern)
}

/// Apply one mapping step to a bare pattern: replace the predicate
/// `source#attr` by `dest#attr'`. The mapping-object variant used when
/// mapping lists come from the DHT rather than a local registry.
pub fn reformulate_pattern(
    pattern: &TriplePattern,
    mapping: &crate::mapping::Mapping,
    direction: Direction,
) -> Option<TriplePattern> {
    let (schema, attr) = pattern_schema(pattern).ok()?;
    if mapping.applicable_from(&schema) != Some(direction) {
        return None;
    }
    let new_attr = mapping.translate(&attr, direction)?;
    let dest = mapping.destination(direction);
    Some(TriplePattern::new(
        pattern.subject.clone(),
        PatternTerm::Const(Term::Uri(Uri::new(format!("{dest}#{new_attr}")))),
        pattern.object.clone(),
    ))
}

/// Apply one mapping step to a query: replace the predicate
/// `source#attr` by `dest#attr'` (view unfolding of a single predicate
/// correspondence). Returns `None` if the mapping does not cover the
/// attribute.
pub fn reformulate_step(
    registry: &MappingRegistry,
    query: &TriplePatternQuery,
    mapping: MappingId,
    direction: Direction,
) -> Option<TriplePatternQuery> {
    let (schema, attr) = query_schema(query).ok()?;
    let m = registry.mapping(mapping)?;
    if !m.is_active() || m.applicable_from(&schema) != Some(direction) {
        return None;
    }
    let new_attr = m.translate(&attr, direction)?;
    let dest = m.destination(direction);
    let new_predicate = Uri::new(format!("{dest}#{new_attr}"));
    let pattern = TriplePattern::new(
        query.pattern.subject.clone(),
        PatternTerm::Const(Term::Uri(new_predicate)),
        query.pattern.object.clone(),
    );
    TriplePatternQuery::new(query.distinguished.clone(), pattern).ok()
}

/// Step-wise traversal state for expanding a query through the mapping
/// network: the visited-schema set plus the expansion frontier, carrying
/// an arbitrary per-hop payload `P` (a reformulated query, the peer
/// that will issue it, an index into an output buffer, …).
///
/// This is the one loop-prevention rule of the PDMS — every schema is
/// entered at most once — factored out so each driver only supplies its
/// mapping source and hop order: the registry-local expansion
/// ([`reformulations`]) pulls hops breadth-first (shortest mapping path
/// first), while `gridvine-core`'s streaming executor pulls depth-first
/// with mapping lists fetched from the DHT, exactly as the legacy
/// `SearchFor` traversal did.
#[derive(Debug, Clone)]
pub struct ClosureWalk<P> {
    visited: BTreeSet<SchemaId>,
    /// Pending hops: `(schema, payload, depth)` where `depth` counts
    /// mapping applications from the origin.
    frontier: VecDeque<(SchemaId, P, usize)>,
}

impl<P> ClosureWalk<P> {
    /// Start a walk at the query's own schema (depth 0).
    pub fn new(origin: SchemaId, payload: P) -> ClosureWalk<P> {
        let mut visited = BTreeSet::new();
        visited.insert(origin.clone());
        let mut frontier = VecDeque::new();
        frontier.push_back((origin, payload, 0));
        ClosureWalk { visited, frontier }
    }

    /// Next hop, breadth-first: non-decreasing mapping-path length.
    pub fn next_breadth_first(&mut self) -> Option<(SchemaId, P, usize)> {
        self.frontier.pop_front()
    }

    /// Next hop, depth-first: the synchronous executor's order (each
    /// reformulation chain is driven to its TTL before siblings).
    pub fn next_depth_first(&mut self) -> Option<(SchemaId, P, usize)> {
        self.frontier.pop_back()
    }

    /// Has a schema already been entered (or queued)?
    pub fn visited(&self, schema: &SchemaId) -> bool {
        self.visited.contains(schema)
    }

    /// Queue a newly reached schema at `depth` mapping applications;
    /// returns `false` (and queues nothing) if it was already visited.
    pub fn admit(&mut self, dest: SchemaId, payload: P, depth: usize) -> bool {
        if !self.visited.insert(dest.clone()) {
            return false;
        }
        self.frontier.push_back((dest, payload, depth));
        true
    }

    /// Schemas entered or queued so far (the traversal's
    /// `schemas_visited` statistic, origin included).
    pub fn visited_count(&self) -> usize {
        self.visited.len()
    }

    /// No hops left to pull: the closure is fully expanded.
    pub fn is_exhausted(&self) -> bool {
        self.frontier.is_empty()
    }
}

/// One hop of a memoized reformulation closure: the schema a query
/// reaches, the translated predicate to pose there, the mapping-path
/// depth and the path quality (minimum mapping quality along the path).
///
/// The closure of a triple-pattern query through the mapping network
/// depends only on its *predicate* — subject and object constraints are
/// carried along unchanged by view unfolding — so a recorded hop list
/// can be replayed for any pattern sharing the predicate: the consumer
/// swaps in each hop's predicate and keeps its own subject/object slots
/// (this is what makes the cache pay off under bound-substitution
/// joins, where every substituted instance shares the predicate).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedHop {
    /// Schema reached at this hop (the origin schema at depth 0).
    pub schema: SchemaId,
    /// Predicate to pose there: `schema#translated-attribute`.
    pub predicate: Uri,
    /// Mapping applications from the origin (0 for the original query).
    pub depth: usize,
    /// Minimum mapping quality along the path (1.0 at the origin).
    pub quality: f64,
}

/// Cache key of one closure expansion: where the walk starts and how
/// deep it may go. Subject/object constraints are deliberately absent —
/// see [`CachedHop`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClosureKey {
    pub schema: SchemaId,
    pub attr: String,
    pub ttl: usize,
}

/// Hit/miss/eviction accounting of one [`ClosureCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from a coherent entry.
    pub hits: u64,
    /// Lookups that found no coherent entry (stale-epoch clears count
    /// here too — the caller pays the cold walk either way).
    pub misses: u64,
    /// Entries displaced by the capacity bound (epoch clears are not
    /// evictions; they are invalidations).
    pub evictions: u64,
}

/// An epoch-keyed, capacity-bounded LRU memo of reformulation closures.
///
/// Every entry was computed against one mapping-network [`epoch`]
/// ([`MappingRegistry::epoch`]); the cache stores the epoch it is
/// coherent with and self-invalidates wholesale the first time it is
/// consulted under a newer one — a mapping insert, deprecation or
/// repair may rewire any path, so per-entry invalidation buys nothing.
/// Repeated plans over an unchanged mapping network skip the closure
/// BFS (and, in the distributed executor, its per-schema mapping-list
/// retrieves) entirely.
///
/// A bounded cache ([`ClosureCache::bounded`]) additionally models a
/// real peer's finite memory: at most `capacity` closures are retained
/// and inserting past the bound evicts the least-recently-used entry
/// (lookups refresh recency). Eviction is a linear scan over the
/// recency stamps — capacities are per-peer and small, so a pointer-
/// chasing LRU list would cost more than it saves.
///
/// [`epoch`]: MappingRegistry::epoch
#[derive(Debug, Clone, Default)]
pub struct ClosureCache {
    epoch: u64,
    entries: HashMap<ClosureKey, (Arc<[CachedHop]>, u64)>,
    /// `None` = unbounded (the pre-PR-5 behaviour, kept for tests).
    capacity: Option<usize>,
    /// Monotone recency stamp; bumped by every lookup hit and insert.
    tick: u64,
    counters: CacheCounters,
}

impl ClosureCache {
    pub fn new() -> ClosureCache {
        ClosureCache::default()
    }

    /// A cache retaining at most `capacity` closures under LRU
    /// eviction. A zero capacity caches nothing (every lookup misses).
    pub fn bounded(capacity: usize) -> ClosureCache {
        ClosureCache {
            capacity: Some(capacity),
            ..ClosureCache::default()
        }
    }

    /// The configured capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The hops recorded for `key`, if the cache is coherent with
    /// `epoch` and holds the entry. A stale cache (any older epoch) is
    /// cleared on the spot and misses. Hits refresh the entry's
    /// recency.
    pub fn lookup(&mut self, epoch: u64, key: &ClosureKey) -> Option<Arc<[CachedHop]>> {
        if self.epoch != epoch {
            self.entries.clear();
            self.epoch = epoch;
            self.counters.misses += 1;
            return None;
        }
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((hops, stamp)) => {
                *stamp = self.tick;
                self.counters.hits += 1;
                Some(hops.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Record a fully-expanded closure computed at `epoch`. A stale
    /// cache is cleared first so entries from different epochs never
    /// coexist; a full cache evicts its least-recently-used entry.
    pub fn insert(&mut self, epoch: u64, key: ClosureKey, hops: Vec<CachedHop>) {
        if self.epoch != epoch {
            self.entries.clear();
            self.epoch = epoch;
        }
        if self.capacity == Some(0) {
            return;
        }
        self.tick += 1;
        let fresh = !self.entries.contains_key(&key);
        if fresh {
            if let Some(cap) = self.capacity {
                while self.entries.len() >= cap {
                    let lru = self
                        .entries
                        .iter()
                        .min_by_key(|(_, (_, stamp))| *stamp)
                        .map(|(k, _)| k.clone())
                        .expect("len >= cap >= 1 implies an entry");
                    self.entries.remove(&lru);
                    self.counters.evictions += 1;
                }
            }
        }
        self.entries.insert(key, (hops.into(), self.tick));
    }

    /// The epoch the stored entries were computed at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of memoized closures (for tests and introspection).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Number of entries valid under `epoch` — the whole cache when
    /// coherent, zero when stale (a stale cache counts as empty even
    /// before its lazy clear).
    pub fn coherent_len(&self, epoch: u64) -> usize {
        if self.epoch == epoch {
            self.entries.len()
        } else {
            0
        }
    }
}

/// Breadth-first expansion of a query through the mapping network.
///
/// Returns the original query (depth 0) followed by one reformulation
/// per newly reached schema, in non-decreasing path length, visiting at
/// most `ttl` mapping applications deep. Each schema is visited once —
/// the loop-prevention rule is [`ClosureWalk`]'s.
pub fn reformulations(
    registry: &MappingRegistry,
    query: &TriplePatternQuery,
    ttl: usize,
) -> Result<Vec<Reformulation>, ReformulateError> {
    let (origin, _) = query_schema(query)?;
    let mut out = vec![Reformulation {
        schema: origin.clone(),
        query: query.clone(),
        path: Vec::new(),
    }];
    // Payload: index into `out`, so the frontier never clones a query.
    let mut walk = ClosureWalk::new(origin, 0usize);

    while let Some((schema, i, depth)) = walk.next_breadth_first() {
        if depth >= ttl {
            continue;
        }
        for (m, dir) in registry.applicable_from(&schema) {
            let dest = m.destination(dir).clone();
            if walk.visited(&dest) {
                continue;
            }
            if let Some(q) = reformulate_step(registry, &out[i].query, m.id, dir) {
                let mut path = out[i].path.clone();
                path.push(Step {
                    mapping: m.id,
                    direction: dir,
                });
                let next = out.len();
                out.push(Reformulation {
                    schema: dest.clone(),
                    query: q,
                    path,
                });
                walk.admit(dest, next, depth + 1);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Correspondence, MappingKind, Provenance};
    use crate::schema::Schema;

    /// The Figure 2 setup: EMBL#Organism ≡ EMP#SystematicName.
    fn figure2_registry() -> MappingRegistry {
        let mut reg = MappingRegistry::new();
        reg.add_schema(Schema::new("EMBL", ["Organism"]));
        reg.add_schema(Schema::new("EMP", ["SystematicName"]));
        reg.add_mapping(
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        );
        reg
    }

    fn aspergillus_query() -> TriplePatternQuery {
        TriplePatternQuery::example_aspergillus()
    }

    #[test]
    fn figure2_reformulation() {
        // SearchFor(x1? : (x1?, EMBL#Organism, %Aspergillus%))
        //   ⇒ SearchFor(x2? : (x2?, EMP#SystematicName, %Aspergillus%))
        let reg = figure2_registry();
        let refs = reformulations(&reg, &aspergillus_query(), 5).expect("reformulates");
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].depth(), 0);
        assert_eq!(refs[1].schema, SchemaId::new("EMP"));
        assert_eq!(
            refs[1]
                .query
                .pattern
                .predicate
                .as_const()
                .map(|t| t.lexical()),
            Some("EMP#SystematicName")
        );
        // Object constraint is carried along unchanged.
        assert_eq!(
            refs[1].query.pattern.object.as_const().map(|t| t.lexical()),
            Some("%Aspergillus%")
        );
        assert_eq!(refs[1].depth(), 1);
    }

    #[test]
    fn equivalence_applies_backward_too() {
        let reg = figure2_registry();
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("EMP#SystematicName")),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
        )
        .unwrap();
        let refs = reformulations(&reg, &q, 5).expect("reformulates");
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[1].schema, SchemaId::new("EMBL"));
        assert_eq!(refs[1].path[0].direction, Direction::Backward);
    }

    #[test]
    fn chain_expands_transitively_within_ttl() {
        let mut reg = MappingRegistry::new();
        for (i, attr) in ["a0", "a1", "a2", "a3"].iter().enumerate() {
            reg.add_schema(Schema::new(format!("S{i}").as_str(), [*attr]));
        }
        for i in 0..3 {
            reg.add_mapping(
                format!("S{i}").as_str(),
                format!("S{}", i + 1).as_str(),
                MappingKind::Equivalence,
                Provenance::Manual,
                vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
            );
        }
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S0#a0")),
                PatternTerm::var("o"),
            ),
        )
        .unwrap();
        let all = reformulations(&reg, &q, 10).expect("ok");
        assert_eq!(all.len(), 4);
        assert_eq!(all[3].schema, SchemaId::new("S3"));
        assert_eq!(all[3].depth(), 3);
        assert_eq!(
            all[3]
                .query
                .pattern
                .predicate
                .as_const()
                .map(|t| t.lexical()),
            Some("S3#a3")
        );

        // TTL truncates the expansion.
        let limited = reformulations(&reg, &q, 1).expect("ok");
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn cycles_do_not_loop() {
        // Triangle of equivalences: each schema visited exactly once.
        let mut reg = MappingRegistry::new();
        for (s, a) in [("A", "x"), ("B", "y"), ("C", "z")] {
            reg.add_schema(Schema::new(s, [a]));
        }
        reg.add_mapping(
            "A",
            "B",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("x", "y")],
        );
        reg.add_mapping(
            "B",
            "C",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("y", "z")],
        );
        reg.add_mapping(
            "C",
            "A",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("z", "x")],
        );
        let q = TriplePatternQuery::new(
            "v",
            TriplePattern::new(
                PatternTerm::var("v"),
                PatternTerm::constant(Term::uri("A#x")),
                PatternTerm::var("o"),
            ),
        )
        .unwrap();
        let all = reformulations(&reg, &q, 50).expect("ok");
        assert_eq!(all.len(), 3);
        let schemas: BTreeSet<&str> = all.iter().map(|r| r.schema.as_str()).collect();
        assert_eq!(schemas, BTreeSet::from(["A", "B", "C"]));
    }

    #[test]
    fn deprecated_mappings_are_skipped() {
        let mut reg = figure2_registry();
        let id = reg.mappings().next().map(|m| m.id).unwrap();
        reg.deprecate(id);
        let refs = reformulations(&reg, &aspergillus_query(), 5).expect("ok");
        assert_eq!(refs.len(), 1, "only the original query remains");
    }

    #[test]
    fn uncovered_attribute_stops_translation() {
        let mut reg = MappingRegistry::new();
        reg.add_schema(Schema::new("EMBL", ["Organism", "Length"]));
        reg.add_schema(Schema::new("EMP", ["SystematicName"]));
        reg.add_mapping(
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        );
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("EMBL#Length")),
                PatternTerm::var("o"),
            ),
        )
        .unwrap();
        let refs = reformulations(&reg, &q, 5).expect("ok");
        assert_eq!(refs.len(), 1, "Length has no correspondence");
    }

    #[test]
    fn variable_predicate_is_an_error() {
        let reg = figure2_registry();
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("p"),
                PatternTerm::var("o"),
            ),
        )
        .unwrap();
        assert_eq!(
            reformulations(&reg, &q, 5).unwrap_err(),
            ReformulateError::UnboundPredicate
        );
    }

    #[test]
    fn malformed_predicate_is_an_error() {
        let reg = figure2_registry();
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("no-hash-here")),
                PatternTerm::var("o"),
            ),
        )
        .unwrap();
        assert!(matches!(
            reformulations(&reg, &q, 5).unwrap_err(),
            ReformulateError::MalformedPredicate { .. }
        ));
    }

    #[test]
    fn epoch_bumps_on_every_mapping_mutation() {
        let mut reg = figure2_registry();
        let e0 = reg.epoch();
        let id = reg.mappings().next().map(|m| m.id).unwrap();
        reg.deprecate(id);
        let e1 = reg.epoch();
        assert!(e1 > e0, "deprecation must bump the epoch");
        reg.reactivate(id);
        let e2 = reg.epoch();
        assert!(e2 > e1, "reactivation must bump the epoch");
        reg.mapping_mut(id).unwrap().quality = 0.5;
        let e3 = reg.epoch();
        assert!(e3 > e2, "repair (mutable access) must bump the epoch");
        reg.add_mapping(
            "EMP",
            "EMBL",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new("SystematicName", "Organism")],
        );
        assert!(reg.epoch() > e3, "insert must bump the epoch");
    }

    #[test]
    fn closure_cache_hits_within_an_epoch_and_clears_across() {
        let mut reg = figure2_registry();
        let key = ClosureKey {
            schema: SchemaId::new("EMBL"),
            attr: "Organism".to_string(),
            ttl: 10,
        };
        let hops = vec![CachedHop {
            schema: SchemaId::new("EMBL"),
            predicate: Uri::new("EMBL#Organism"),
            depth: 0,
            quality: 1.0,
        }];
        let mut cache = ClosureCache::new();
        assert!(cache.lookup(reg.epoch(), &key).is_none());
        cache.insert(reg.epoch(), key.clone(), hops.clone());
        let hit = cache.lookup(reg.epoch(), &key).expect("same-epoch hit");
        assert_eq!(&*hit, hops.as_slice());
        // Any registry mutation invalidates the whole cache.
        let id = reg.mappings().next().map(|m| m.id).unwrap();
        reg.deprecate(id);
        assert!(
            cache.lookup(reg.epoch(), &key).is_none(),
            "stale entries gone"
        );
        assert!(cache.is_empty());
        // Entries recorded at the new epoch are served again.
        cache.insert(reg.epoch(), key.clone(), hops);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(reg.epoch(), &key).is_some());
    }

    fn hop(schema: &str) -> CachedHop {
        CachedHop {
            schema: SchemaId::new(schema),
            predicate: Uri::new(format!("{schema}#a")),
            depth: 0,
            quality: 1.0,
        }
    }

    fn key(schema: &str) -> ClosureKey {
        ClosureKey {
            schema: SchemaId::new(schema),
            attr: "a".to_string(),
            ttl: 10,
        }
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let mut cache = ClosureCache::bounded(2);
        assert_eq!(cache.capacity(), Some(2));
        cache.insert(0, key("A"), vec![hop("A")]);
        cache.insert(0, key("B"), vec![hop("B")]);
        assert_eq!(cache.len(), 2);
        // Touch A so B becomes the LRU entry.
        assert!(cache.lookup(0, &key("A")).is_some());
        cache.insert(0, key("C"), vec![hop("C")]);
        assert_eq!(cache.len(), 2, "capacity bound respected");
        assert!(cache.lookup(0, &key("A")).is_some(), "A survived (recent)");
        assert!(cache.lookup(0, &key("B")).is_none(), "B evicted (LRU)");
        assert!(cache.lookup(0, &key("C")).is_some());
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn bounded_cache_still_invalidates_on_epoch_bump() {
        let mut cache = ClosureCache::bounded(4);
        cache.insert(0, key("A"), vec![hop("A")]);
        assert!(cache.lookup(0, &key("A")).is_some());
        // A newer epoch clears everything — that is an invalidation,
        // not an eviction.
        assert!(cache.lookup(1, &key("A")).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.counters().evictions, 0);
        // Re-inserting a present key never evicts.
        cache.insert(1, key("A"), vec![hop("A")]);
        cache.insert(1, key("A"), vec![hop("A")]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters().evictions, 0);
    }

    #[test]
    fn zero_capacity_cache_never_stores() {
        let mut cache = ClosureCache::bounded(0);
        cache.insert(0, key("A"), vec![hop("A")]);
        assert!(cache.is_empty());
        assert!(cache.lookup(0, &key("A")).is_none());
    }

    #[test]
    fn path_quality_is_minimum_along_path() {
        let mut reg = MappingRegistry::new();
        for (s, a) in [("A", "x"), ("B", "y"), ("C", "z")] {
            reg.add_schema(Schema::new(s, [a]));
        }
        let m1 = reg.add_mapping(
            "A",
            "B",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new("x", "y")],
        );
        let _m2 = reg.add_mapping(
            "B",
            "C",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new("y", "z")],
        );
        reg.mapping_mut(m1).unwrap().quality = 0.6;
        let q = TriplePatternQuery::new(
            "v",
            TriplePattern::new(
                PatternTerm::var("v"),
                PatternTerm::constant(Term::uri("A#x")),
                PatternTerm::var("o"),
            ),
        )
        .unwrap();
        let all = reformulations(&reg, &q, 5).expect("ok");
        let to_c = all
            .iter()
            .find(|r| r.schema.as_str() == "C")
            .expect("reaches C");
        assert!((to_c.path_quality(&reg) - 0.6).abs() < 1e-12);
    }
}
