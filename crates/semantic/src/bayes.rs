//! Bayesian mapping-quality assessment by cycle analysis (§3.2).
//!
//! "GridVine uses a Bayesian analysis comparing transitive closures of
//! mappings to assess the quality of the mappings \[3\]. The mappings
//! manually created by the users are always considered as correct in
//! this analysis, while probabilistic correctness values are inferred
//! for mappings that were created automatically. A mapping detected as
//! incorrect is marked as deprecated."
//!
//! Following the authors' ICDE'06 probabilistic-message-passing paper,
//! the implementation:
//!
//! 1. enumerates simple mapping **cycles** up to a length bound (a cycle
//!    is a path of mapping applications returning to its start schema
//!    without re-using a mapping);
//! 2. classifies each cycle by **composing its correspondences**: if
//!    every attribute that survives the full composition returns to
//!    itself the cycle is *consistent* (evidence the mappings on it are
//!    correct); if any attribute returns as a different attribute the
//!    cycle is *inconsistent* (at least one mapping on it is wrong);
//! 3. runs iterative **belief updates**: for each mapping, each cycle
//!    contributes a likelihood ratio computed from the current beliefs
//!    about the *other* mappings on the cycle; manual mappings are
//!    clamped at probability 1;
//! 4. mappings whose posterior falls below the deprecation threshold are
//!    deprecated via [`apply_assessment`] — or reversibly quarantined
//!    via [`apply_quarantine`], the containment the periodic
//!    query-serving assessment pass uses.
//!
//! ## Correspondence to the paper's model
//!
//! | paper (§3.2 / ICDE'06) | here |
//! |---|---|
//! | "transitive closures of mappings" compared around loops | [`find_cycles`] enumerates simple mapping cycles up to [`BayesConfig::max_cycle_len`]; `compose_cycle` runs the closed-loop attribute composition |
//! | a closure that returns an attribute to itself | [`CycleOutcome::Consistent`] |
//! | a closure that returns a *different* attribute | [`CycleOutcome::Inconsistent`] |
//! | probability an error cancels out by accident | [`BayesConfig::delta`] — P(consistent given some mapping wrong) |
//! | noise from partial correspondences | [`BayesConfig::epsilon`] — P(inconsistent given all correct) |
//! | "manually created … always considered as correct" | manual beliefs clamped at 1.0 each sweep |
//! | "probabilistic correctness values are inferred" | [`assess`] iterates posterior log-odds: prior odds × Π per-cycle likelihood ratios, where each ratio conditions on the product `q` of the current beliefs in the *other* mappings on the cycle |
//! | "a mapping detected as incorrect is marked as deprecated" | [`apply_assessment`] (permanent) / [`apply_quarantine`] (reversible) below [`BayesConfig::deprecate_below`] |
//!
//! Cycle evidence is the *only* detection signal: the semantic
//! adversary's [`Provenance::Byzantine`](crate::mapping::Provenance)
//! label is ground-truth bookkeeping for experiments and is read by
//! neither [`find_cycles`] nor [`assess`] (a Byzantine mapping enters
//! the analysis at the same prior as an honest automatic one).

use crate::graph::MappingRegistry;
use crate::mapping::{Direction, MappingId, Provenance};
use crate::schema::SchemaId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Assessment tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BayesConfig {
    /// Prior correctness probability of an automatic mapping.
    pub prior: f64,
    /// P(cycle observed consistent | some mapping on it is wrong):
    /// the chance an error cancels out by accident.
    pub delta: f64,
    /// P(cycle observed inconsistent | all mappings correct): noise
    /// from partial correspondences.
    pub epsilon: f64,
    /// Maximum cycle length considered.
    pub max_cycle_len: usize,
    /// Belief-propagation sweeps.
    pub iterations: usize,
    /// Posterior below which a mapping is deprecated.
    pub deprecate_below: f64,
}

impl Default for BayesConfig {
    fn default() -> Self {
        BayesConfig {
            prior: 0.7,
            delta: 0.1,
            epsilon: 0.05,
            max_cycle_len: 6,
            iterations: 8,
            deprecate_below: 0.4,
        }
    }
}

/// Outcome of composing one cycle's correspondences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CycleOutcome {
    /// All surviving attributes return to themselves.
    Consistent,
    /// Some attribute returns as a different attribute.
    Inconsistent,
    /// No attribute survives the whole composition: no evidence.
    Unobservable,
}

/// A mapping cycle with its composed outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cycle {
    /// Start (= end) schema.
    pub base: SchemaId,
    /// The mapping applications, in order.
    pub steps: Vec<(MappingId, Direction)>,
    pub outcome: CycleOutcome,
}

/// The result of an assessment pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Assessment {
    /// Posterior correctness per assessed mapping.
    pub posteriors: BTreeMap<MappingId, f64>,
    /// Cycles found (with outcomes), for inspection.
    pub cycles: Vec<Cycle>,
}

impl Assessment {
    /// Mappings whose posterior is below the threshold.
    pub fn condemned(&self, threshold: f64) -> Vec<MappingId> {
        self.posteriors
            .iter()
            .filter(|(_, p)| **p < threshold)
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Enumerate simple cycles (no mapping reused, schemas visited at most
/// once except the base) up to `max_len` steps, starting from every
/// schema. Each undirected cycle is reported once, keyed by its mapping
/// set.
pub fn find_cycles(registry: &MappingRegistry, max_len: usize) -> Vec<Cycle> {
    let mut seen: BTreeSet<Vec<MappingId>> = BTreeSet::new();
    let mut cycles = Vec::new();
    let schemas: Vec<SchemaId> = registry.schemas().map(|s| s.id().clone()).collect();

    // DFS frame: (current schema, steps so far, visited schemas).
    type Frame = (SchemaId, Vec<(MappingId, Direction)>, BTreeSet<SchemaId>);
    for base in &schemas {
        let mut stack: Vec<Frame> =
            vec![(base.clone(), Vec::new(), BTreeSet::from([base.clone()]))];
        while let Some((at, steps, visited)) = stack.pop() {
            if steps.len() >= max_len {
                continue;
            }
            for (m, dir) in registry.applicable_from(&at) {
                if steps.iter().any(|(id, _)| *id == m.id) {
                    continue; // a mapping may appear once per cycle
                }
                let dest = m.destination(dir).clone();
                if dest == *base {
                    if steps.is_empty() {
                        continue; // self-loop mapping: not a cycle
                    }
                    let mut step_ids: Vec<MappingId> = steps.iter().map(|(id, _)| *id).collect();
                    step_ids.push(m.id);
                    step_ids.sort();
                    if seen.insert(step_ids) {
                        let mut full = steps.clone();
                        full.push((m.id, dir));
                        let outcome = compose_cycle(registry, base, &full);
                        cycles.push(Cycle {
                            base: base.clone(),
                            steps: full,
                            outcome,
                        });
                    }
                    continue;
                }
                if visited.contains(&dest) {
                    continue;
                }
                let mut v = visited.clone();
                v.insert(dest.clone());
                let mut s = steps.clone();
                s.push((m.id, dir));
                stack.push((dest, s, v));
            }
        }
    }
    cycles
}

/// Compose a cycle's correspondences over every attribute of the base
/// schema and classify the outcome.
fn compose_cycle(
    registry: &MappingRegistry,
    base: &SchemaId,
    steps: &[(MappingId, Direction)],
) -> CycleOutcome {
    let Some(schema) = registry.schema(base) else {
        return CycleOutcome::Unobservable;
    };
    let mut observed = false;
    for attr in schema.attributes() {
        let mut cur = attr.clone();
        let mut alive = true;
        for (id, dir) in steps {
            let Some(m) = registry.mapping(*id) else {
                alive = false;
                break;
            };
            match m.translate(&cur, *dir) {
                Some(next) => cur = next.to_string(),
                None => {
                    alive = false;
                    break;
                }
            }
        }
        if alive {
            observed = true;
            if &cur != attr {
                return CycleOutcome::Inconsistent;
            }
        }
    }
    if observed {
        CycleOutcome::Consistent
    } else {
        CycleOutcome::Unobservable
    }
}

/// Run the iterative Bayesian analysis over all active mappings.
pub fn assess(registry: &MappingRegistry, cfg: &BayesConfig) -> Assessment {
    let cycles = find_cycles(registry, cfg.max_cycle_len);

    // Initial beliefs.
    let mut belief: BTreeMap<MappingId, f64> = registry
        .active_mappings()
        .map(|m| {
            let p = match m.provenance {
                Provenance::Manual => 1.0,
                // Byzantine is ground-truth bookkeeping only: the
                // analysis must not read the label, so a fabricated
                // mapping enters at the same prior as an honest one.
                Provenance::Automatic | Provenance::Byzantine => cfg.prior,
            };
            (m.id, p)
        })
        .collect();

    for _ in 0..cfg.iterations {
        let snapshot = belief.clone();
        for (&id, b) in belief.iter_mut() {
            let m = registry.mapping(id).expect("active mapping exists");
            if m.provenance == Provenance::Manual {
                *b = 1.0;
                continue;
            }
            // Posterior odds: prior odds × Π cycle likelihood ratios.
            let prior = cfg.prior.clamp(1e-6, 1.0 - 1e-6);
            let mut log_odds = (prior / (1.0 - prior)).ln();
            for cycle in &cycles {
                if cycle.outcome == CycleOutcome::Unobservable {
                    continue;
                }
                if !cycle.steps.iter().any(|(mid, _)| *mid == id) {
                    continue;
                }
                // Probability that all *other* mappings on the cycle are
                // correct, under current beliefs.
                let q: f64 = cycle
                    .steps
                    .iter()
                    .filter(|(mid, _)| *mid != id)
                    .map(|(mid, _)| snapshot.get(mid).copied().unwrap_or(cfg.prior))
                    .product();
                let p_cons_given_ok = q * (1.0 - cfg.epsilon) + (1.0 - q) * cfg.delta;
                let p_cons_given_bad = cfg.delta;
                let (l_ok, l_bad) = match cycle.outcome {
                    CycleOutcome::Consistent => (p_cons_given_ok, p_cons_given_bad),
                    CycleOutcome::Inconsistent => (1.0 - p_cons_given_ok, 1.0 - p_cons_given_bad),
                    CycleOutcome::Unobservable => unreachable!("filtered above"),
                };
                log_odds += (l_ok.max(1e-9) / l_bad.max(1e-9)).ln();
            }
            let odds = log_odds.exp();
            *b = (odds / (1.0 + odds)).clamp(0.0, 1.0);
        }
    }

    Assessment {
        posteriors: belief,
        cycles,
    }
}

/// Write posteriors back into the registry and deprecate condemned
/// mappings. Returns the deprecated ids.
pub fn apply_assessment(
    registry: &mut MappingRegistry,
    assessment: &Assessment,
    cfg: &BayesConfig,
) -> Vec<MappingId> {
    let mut deprecated = Vec::new();
    for (&id, &p) in &assessment.posteriors {
        if let Some(m) = registry.mapping_mut(id) {
            m.quality = p;
        }
    }
    for id in assessment.condemned(cfg.deprecate_below) {
        if registry
            .mapping(id)
            .map(|m| m.provenance == Provenance::Automatic)
            .unwrap_or(false)
            && registry.deprecate(id)
        {
            deprecated.push(id);
        }
    }
    deprecated
}

/// Write posteriors back into the registry and *quarantine* condemned
/// non-manual mappings — the reversible variant of [`apply_assessment`]
/// used by the periodic query-serving assessment pass. A quarantined
/// mapping is excluded from reformulation and connectivity exactly like
/// a deprecated one, but a later assessment may
/// [`reactivate`](MappingRegistry::reactivate) it; manual mappings are
/// never quarantined (their belief is clamped at 1.0 anyway). Returns
/// the newly quarantined ids. Idempotent: a mapping already quarantined
/// is inactive, therefore absent from the assessment's posteriors, and
/// is never reported twice.
pub fn apply_quarantine(
    registry: &mut MappingRegistry,
    assessment: &Assessment,
    cfg: &BayesConfig,
) -> Vec<MappingId> {
    let mut quarantined = Vec::new();
    for (&id, &p) in &assessment.posteriors {
        if let Some(m) = registry.mapping_mut(id) {
            m.quality = p;
        }
    }
    for id in assessment.condemned(cfg.deprecate_below) {
        if registry
            .mapping(id)
            .map(|m| m.provenance != Provenance::Manual && m.is_active())
            .unwrap_or(false)
            && registry.quarantine(id)
        {
            quarantined.push(id);
        }
    }
    quarantined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Correspondence, MappingKind, MappingStatus};
    use crate::schema::Schema;

    /// A directed triangle A→B→C→A over one attribute, with configurable
    /// correctness of the C→A closure. Subsumption mappings keep the
    /// graph analysis directional: removing the closure leaves a path.
    fn triangle(last_correct: bool, provenance: Provenance) -> (MappingRegistry, MappingId) {
        let mut reg = MappingRegistry::new();
        reg.add_schema(Schema::new("A", ["x", "w"]));
        reg.add_schema(Schema::new("B", ["y", "w2"]));
        reg.add_schema(Schema::new("C", ["z", "w3"]));
        reg.add_mapping(
            "A",
            "B",
            MappingKind::Subsumption,
            Provenance::Manual,
            vec![
                Correspondence::new("x", "y"),
                Correspondence::new("w", "w2"),
            ],
        );
        reg.add_mapping(
            "B",
            "C",
            MappingKind::Subsumption,
            Provenance::Manual,
            vec![
                Correspondence::new("y", "z"),
                Correspondence::new("w2", "w3"),
            ],
        );
        let target = if last_correct { "x" } else { "w" };
        let id = reg.add_mapping(
            "C",
            "A",
            MappingKind::Subsumption,
            provenance,
            vec![Correspondence::new("z", target)],
        );
        (reg, id)
    }

    #[test]
    fn finds_the_triangle_cycle() {
        let (reg, _) = triangle(true, Provenance::Automatic);
        let cycles = find_cycles(&reg, 6);
        assert!(!cycles.is_empty());
        // Every reported cycle uses 2 or 3 distinct mappings (the
        // equivalence pair A→B→A is a legitimate 2-cycle through two
        // different mappings only if two distinct mappings connect them
        // — here each pair has one mapping, so all cycles are length 3).
        for c in &cycles {
            assert_eq!(c.steps.len(), 3, "{c:?}");
        }
    }

    #[test]
    fn consistent_triangle_is_consistent() {
        let (reg, _) = triangle(true, Provenance::Automatic);
        let cycles = find_cycles(&reg, 6);
        assert!(cycles.iter().all(|c| c.outcome == CycleOutcome::Consistent));
    }

    #[test]
    fn wrong_closure_is_inconsistent() {
        let (reg, _) = triangle(false, Provenance::Automatic);
        let cycles = find_cycles(&reg, 6);
        assert!(
            cycles
                .iter()
                .any(|c| c.outcome == CycleOutcome::Inconsistent),
            "{cycles:?}"
        );
    }

    #[test]
    fn good_mapping_gains_belief() {
        let (reg, id) = triangle(true, Provenance::Automatic);
        let cfg = BayesConfig::default();
        let a = assess(&reg, &cfg);
        let p = a.posteriors[&id];
        assert!(
            p > cfg.prior,
            "posterior {p} should exceed prior {}",
            cfg.prior
        );
        assert!(a.condemned(cfg.deprecate_below).is_empty());
    }

    #[test]
    fn bad_mapping_loses_belief_and_is_deprecated() {
        let (mut reg, id) = triangle(false, Provenance::Automatic);
        let cfg = BayesConfig::default();
        let a = assess(&reg, &cfg);
        let p = a.posteriors[&id];
        assert!(p < 0.4, "posterior {p} should collapse");
        let deprecated = apply_assessment(&mut reg, &a, &cfg);
        assert_eq!(deprecated, vec![id]);
        assert!(!reg.mapping(id).unwrap().is_active());
        assert_eq!(reg.mapping(id).unwrap().quality, p);
    }

    #[test]
    fn manual_mappings_are_never_deprecated() {
        let (mut reg, id) = triangle(false, Provenance::Manual);
        let cfg = BayesConfig::default();
        let a = assess(&reg, &cfg);
        // Clamped to 1.0 regardless of the inconsistent cycle.
        assert_eq!(a.posteriors[&id], 1.0);
        assert!(apply_assessment(&mut reg, &a, &cfg).is_empty());
        assert!(reg.mapping(id).unwrap().is_active());
    }

    #[test]
    fn no_cycles_means_prior_is_kept() {
        let mut reg = MappingRegistry::new();
        reg.add_schema(Schema::new("A", ["x"]));
        reg.add_schema(Schema::new("B", ["y"]));
        let id = reg.add_mapping(
            "A",
            "B",
            MappingKind::Subsumption,
            Provenance::Automatic,
            vec![Correspondence::new("x", "y")],
        );
        let cfg = BayesConfig::default();
        let a = assess(&reg, &cfg);
        assert!(a.cycles.is_empty());
        assert!((a.posteriors[&id] - cfg.prior).abs() < 1e-9);
    }

    #[test]
    fn unobservable_cycle_carries_no_evidence() {
        // The C→A mapping covers an attribute that never flows around
        // the cycle, so composition observes nothing.
        let mut reg = MappingRegistry::new();
        reg.add_schema(Schema::new("A", ["x"]));
        reg.add_schema(Schema::new("B", ["y"]));
        reg.add_schema(Schema::new("C", ["z", "dead"]));
        reg.add_mapping(
            "A",
            "B",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("x", "y")],
        );
        reg.add_mapping(
            "B",
            "C",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![],
        ); // empty: breaks every composition
        let id = reg.add_mapping(
            "C",
            "A",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new("dead", "x")],
        );
        let cfg = BayesConfig::default();
        let a = assess(&reg, &cfg);
        for c in &a.cycles {
            assert_eq!(c.outcome, CycleOutcome::Unobservable, "{c:?}");
        }
        assert!((a.posteriors[&id] - cfg.prior).abs() < 1e-9);
    }

    #[test]
    fn deprecation_enables_topology_replacement() {
        // The §4 storyline: a bad mapping is deprecated; the graph then
        // reports disconnection, prompting creation of a replacement.
        let (mut reg, id) = triangle(false, Provenance::Automatic);
        let cfg = BayesConfig::default();
        let a = assess(&reg, &cfg);
        apply_assessment(&mut reg, &a, &cfg);
        assert!(!reg.is_strongly_connected());
        // A replacement (correct) mapping restores connectivity.
        reg.add_mapping(
            "C",
            "A",
            MappingKind::Subsumption,
            Provenance::Automatic,
            vec![Correspondence::new("z", "x")],
        );
        assert!(reg.is_strongly_connected());
        let again = assess(&reg, &cfg);
        let replacement_id = reg
            .active_mappings()
            .find(|m| m.source == SchemaId::new("C"))
            .map(|m| m.id)
            .unwrap();
        assert_ne!(replacement_id, id);
        assert!(again.posteriors[&replacement_id] > cfg.prior);
    }

    #[test]
    fn empty_cycle_set_condemns_nothing() {
        // A pure chain has no cycles: every posterior stays at the
        // prior, and neither apply variant touches any status.
        let mut reg = MappingRegistry::new();
        for s in ["A", "B", "C"] {
            reg.add_schema(Schema::new(s, ["x"]));
        }
        for (a, b) in [("A", "B"), ("B", "C")] {
            reg.add_mapping(
                a,
                b,
                MappingKind::Subsumption,
                Provenance::Automatic,
                vec![Correspondence::new("x", "x")],
            );
        }
        let cfg = BayesConfig::default();
        let a = assess(&reg, &cfg);
        assert!(a.cycles.is_empty());
        assert!(apply_assessment(&mut reg, &a, &cfg).is_empty());
        assert!(apply_quarantine(&mut reg, &a, &cfg).is_empty());
        assert_eq!(reg.active_count(), 2);
    }

    #[test]
    fn all_mappings_condemned_when_threshold_exceeds_every_posterior() {
        // With the threshold above every posterior, every automatic
        // mapping is condemned; apply_quarantine contains them all and
        // only the manual ones survive as active.
        let (mut reg, _) = triangle(false, Provenance::Automatic);
        let cfg = BayesConfig {
            deprecate_below: 0.999,
            ..BayesConfig::default()
        };
        let a = assess(&reg, &cfg);
        let autos: Vec<MappingId> = reg
            .mappings()
            .filter(|m| m.provenance == Provenance::Automatic)
            .map(|m| m.id)
            .collect();
        let condemned = a.condemned(cfg.deprecate_below);
        for id in &autos {
            assert!(condemned.contains(id), "{id} must be condemned");
        }
        let quarantined = apply_quarantine(&mut reg, &a, &cfg);
        assert_eq!(quarantined, autos);
        for m in reg.mappings() {
            match m.provenance {
                Provenance::Manual => assert!(m.is_active()),
                _ => assert_eq!(m.status, MappingStatus::Quarantined),
            }
        }
    }

    #[test]
    fn threshold_exactly_at_a_posterior_spares_the_mapping() {
        // condemned() is a strict `<`: a posterior equal to the
        // threshold is NOT condemned.
        let mut a = Assessment::default();
        a.posteriors.insert(MappingId(0), 0.4);
        a.posteriors.insert(MappingId(1), 0.39999);
        assert_eq!(a.condemned(0.4), vec![MappingId(1)]);
        assert!(a.condemned(0.39999).is_empty());
    }

    #[test]
    fn assessment_is_idempotent_on_a_quarantined_registry() {
        // First pass quarantines the bad closure; a second
        // assess+apply_quarantine over the already-quarantined registry
        // must change nothing (the quarantined mapping is inactive, so
        // it is outside the new assessment entirely).
        let (mut reg, id) = triangle(false, Provenance::Automatic);
        let cfg = BayesConfig::default();
        let a0 = assess(&reg, &cfg);
        let first = apply_quarantine(&mut reg, &a0, &cfg);
        assert_eq!(first, vec![id]);
        assert_eq!(reg.mapping(id).unwrap().status, MappingStatus::Quarantined);

        let statuses: Vec<MappingStatus> = reg.mappings().map(|m| m.status).collect();
        let again = assess(&reg, &cfg);
        assert!(!again.posteriors.contains_key(&id), "inactive: unassessed");
        let second = apply_quarantine(&mut reg, &again, &cfg);
        assert!(second.is_empty(), "second pass must be a no-op: {second:?}");
        let statuses_after: Vec<MappingStatus> = reg.mappings().map(|m| m.status).collect();
        assert_eq!(statuses, statuses_after);
    }

    #[test]
    fn quarantine_spares_manual_mappings() {
        let (mut reg, id) = triangle(false, Provenance::Manual);
        let cfg = BayesConfig {
            deprecate_below: 0.999,
            ..BayesConfig::default()
        };
        let a0 = assess(&reg, &cfg);
        let quarantined = apply_quarantine(&mut reg, &a0, &cfg);
        assert!(!quarantined.contains(&id));
        assert!(reg.mapping(id).unwrap().is_active());
    }

    #[test]
    fn byzantine_fabrication_is_condemned_by_cycle_evidence() {
        let (mut reg, id) = triangle(false, Provenance::Byzantine);
        let cfg = BayesConfig::default();
        let a = assess(&reg, &cfg);
        assert!(a.posteriors[&id] < cfg.deprecate_below);
        let quarantined = apply_quarantine(&mut reg, &a, &cfg);
        assert_eq!(quarantined, vec![id]);
    }

    #[test]
    fn larger_network_isolates_the_single_bad_mapping() {
        // Ring of 5 schemas with one extra chord; one automatic mapping
        // is wrong. Only that mapping should be condemned.
        let mut reg = MappingRegistry::new();
        let n = 5;
        for i in 0..n {
            reg.add_schema(Schema::new(
                format!("S{i}").as_str(),
                [format!("a{i}"), format!("b{i}")],
            ));
        }
        let mut ids = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            // The ring: correct equivalences a_i ↔ a_j, b_i ↔ b_j.
            ids.push(reg.add_mapping(
                format!("S{i}").as_str(),
                format!("S{j}").as_str(),
                MappingKind::Equivalence,
                Provenance::Automatic,
                vec![
                    Correspondence::new(format!("a{i}"), format!("a{j}")),
                    Correspondence::new(format!("b{i}"), format!("b{j}")),
                ],
            ));
        }
        // Chord S0→S2, wrong: maps a0 to b2.
        let bad = reg.add_mapping(
            "S0",
            "S2",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new("a0", "b2")],
        );
        let cfg = BayesConfig {
            max_cycle_len: 5,
            ..BayesConfig::default()
        };
        let a = assess(&reg, &cfg);
        let condemned = a.condemned(cfg.deprecate_below);
        assert!(
            condemned.contains(&bad),
            "bad mapping must be condemned: {a:?}"
        );
        for id in ids {
            assert!(
                !condemned.contains(&id),
                "ring mapping {id} wrongly condemned (p = {})",
                a.posteriors[&id]
            );
        }
    }
}
