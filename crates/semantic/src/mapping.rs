//! Pairwise GAV schema mappings.
//!
//! "GridVine allows for the definition of both equivalence and inclusion
//! (subsumption) GAV mappings. For the sake of this demonstration,
//! mappings relate semantically similar predicates defined in different
//! schemas. Queries are then reformulated by replacing the predicates
//! with the definition of their equivalent or subsumed predicates (view
//! unfolding)" (§3).
//!
//! A [`Mapping`] is directed from a *source* schema to a *target* schema
//! and carries a set of attribute correspondences. Equivalence mappings
//! may also be applied in reverse. Mappings record their provenance
//! (manual mappings are trusted by the Bayesian analysis, §3.2) and a
//! lifecycle status (active / deprecated).

use crate::schema::SchemaId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Equivalence (`≡`, bidirectional) or subsumption (`⊑`, source is
/// included in target: queries over the target can be forwarded to the
/// source side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingKind {
    Equivalence,
    Subsumption,
}

/// Who created the mapping. Manual mappings "are always considered as
/// correct" by the quality analysis (§3.2). `Byzantine` marks edges
/// fabricated by the semantic adversary
/// ([`crate::adversary::SemanticAdversary`]): the label is ground-truth
/// bookkeeping for experiments — detection itself goes through the same
/// Bayesian cycle analysis as any automatic mapping, never through the
/// label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    Manual,
    Automatic,
    Byzantine,
}

/// Lifecycle: deprecated mappings are "ignored, both for the
/// reformulation of the queries and for the connectivity analysis" (§3.2).
/// Quarantined mappings are equally invisible to reformulation and
/// connectivity, but the state is *reversible*: the periodic
/// quality-assessment pass may reactivate a quarantined edge once the
/// cycle evidence clears it, whereas deprecation is permanent retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingStatus {
    Active,
    Deprecated,
    Quarantined,
}

/// A single attribute correspondence `source.attr ↦ target.attr`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Correspondence {
    pub source_attr: String,
    pub target_attr: String,
}

impl Correspondence {
    pub fn new(source_attr: impl Into<String>, target_attr: impl Into<String>) -> Correspondence {
        Correspondence {
            source_attr: source_attr.into(),
            target_attr: target_attr.into(),
        }
    }
}

/// Unique mapping identifier (dense, assigned by the registry).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MappingId(pub u32);

impl fmt::Debug for MappingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MappingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A pairwise schema mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    pub id: MappingId,
    pub source: SchemaId,
    pub target: SchemaId,
    pub kind: MappingKind,
    pub provenance: Provenance,
    pub status: MappingStatus,
    pub correspondences: Vec<Correspondence>,
    /// Posterior probability of correctness maintained by the Bayesian
    /// analysis; manual mappings stay at 1.0.
    pub quality: f64,
}

impl Mapping {
    /// Create an active mapping with quality 1.0 (manual) or the given
    /// initial belief (automatic).
    pub fn new(
        id: MappingId,
        source: impl Into<SchemaId>,
        target: impl Into<SchemaId>,
        kind: MappingKind,
        provenance: Provenance,
        correspondences: Vec<Correspondence>,
    ) -> Mapping {
        let quality = match provenance {
            Provenance::Manual => 1.0,
            // A Byzantine edge *claims* the confidence of an honest
            // automatic one — nothing distinguishes it a priori.
            Provenance::Automatic | Provenance::Byzantine => 0.9,
        };
        Mapping {
            id,
            source: source.into(),
            target: target.into(),
            kind,
            provenance,
            status: MappingStatus::Active,
            correspondences,
            quality,
        }
    }

    pub fn is_active(&self) -> bool {
        self.status == MappingStatus::Active
    }

    /// Translate an attribute of the source schema to the target schema.
    pub fn map_forward(&self, source_attr: &str) -> Option<&str> {
        self.correspondences
            .iter()
            .find(|c| c.source_attr == source_attr)
            .map(|c| c.target_attr.as_str())
    }

    /// Translate backwards (target → source); only legal for
    /// equivalence mappings.
    pub fn map_backward(&self, target_attr: &str) -> Option<&str> {
        if self.kind != MappingKind::Equivalence {
            return None;
        }
        self.correspondences
            .iter()
            .find(|c| c.target_attr == target_attr)
            .map(|c| c.source_attr.as_str())
    }

    /// The directed edges this mapping contributes to the schema graph:
    /// always source→target; equivalence also target→source. (A
    /// bidirectional mapping is "inserted at the key spaces corresponding
    /// to both schemas", §3.)
    pub fn edges(&self) -> Vec<(SchemaId, SchemaId)> {
        match self.kind {
            MappingKind::Equivalence => vec![
                (self.source.clone(), self.target.clone()),
                (self.target.clone(), self.source.clone()),
            ],
            MappingKind::Subsumption => vec![(self.source.clone(), self.target.clone())],
        }
    }

    /// Directions in which the mapping can translate a query posed
    /// against `schema`: forward if `schema == source`, backward if
    /// equivalence and `schema == target`.
    pub fn applicable_from(&self, schema: &SchemaId) -> Option<Direction> {
        if !self.is_active() {
            return None;
        }
        if &self.source == schema {
            Some(Direction::Forward)
        } else if self.kind == MappingKind::Equivalence && &self.target == schema {
            Some(Direction::Backward)
        } else {
            None
        }
    }

    /// Apply in the given direction.
    pub fn translate(&self, attr: &str, dir: Direction) -> Option<&str> {
        match dir {
            Direction::Forward => self.map_forward(attr),
            Direction::Backward => self.map_backward(attr),
        }
    }

    /// The schema reached when applying in the given direction.
    pub fn destination(&self, dir: Direction) -> &SchemaId {
        match dir {
            Direction::Forward => &self.target,
            Direction::Backward => &self.source,
        }
    }
}

/// Application direction of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    Forward,
    Backward,
}

impl Direction {
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embl_emp() -> Mapping {
        Mapping::new(
            MappingId(0),
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        )
    }

    #[test]
    fn forward_and_backward_translation() {
        let m = embl_emp();
        assert_eq!(m.map_forward("Organism"), Some("SystematicName"));
        assert_eq!(m.map_backward("SystematicName"), Some("Organism"));
        assert_eq!(m.map_forward("Nope"), None);
    }

    #[test]
    fn subsumption_is_one_way() {
        let m = Mapping::new(
            MappingId(1),
            "EMBL",
            "EMP",
            MappingKind::Subsumption,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        );
        assert_eq!(m.map_forward("Organism"), Some("SystematicName"));
        assert_eq!(m.map_backward("SystematicName"), None);
        assert_eq!(m.edges().len(), 1);
    }

    #[test]
    fn equivalence_contributes_both_edges() {
        let edges = embl_emp().edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(SchemaId::new("EMBL"), SchemaId::new("EMP"))));
        assert!(edges.contains(&(SchemaId::new("EMP"), SchemaId::new("EMBL"))));
    }

    #[test]
    fn applicable_from_directions() {
        let m = embl_emp();
        assert_eq!(
            m.applicable_from(&SchemaId::new("EMBL")),
            Some(Direction::Forward)
        );
        assert_eq!(
            m.applicable_from(&SchemaId::new("EMP")),
            Some(Direction::Backward)
        );
        assert_eq!(m.applicable_from(&SchemaId::new("PDB")), None);
    }

    #[test]
    fn deprecated_mapping_is_inapplicable() {
        let mut m = embl_emp();
        m.status = MappingStatus::Deprecated;
        assert_eq!(m.applicable_from(&SchemaId::new("EMBL")), None);
        assert!(!m.is_active());
    }

    #[test]
    fn quarantined_mapping_is_inapplicable() {
        let mut m = embl_emp();
        m.status = MappingStatus::Quarantined;
        assert_eq!(m.applicable_from(&SchemaId::new("EMBL")), None);
        assert_eq!(m.applicable_from(&SchemaId::new("EMP")), None);
        assert!(!m.is_active());
    }

    #[test]
    fn byzantine_provenance_claims_automatic_confidence() {
        let fab = Mapping::new(
            MappingId(3),
            "A",
            "B",
            MappingKind::Equivalence,
            Provenance::Byzantine,
            vec![],
        );
        assert_eq!(fab.quality, 0.9);
        assert!(fab.is_active());
    }

    #[test]
    fn provenance_sets_initial_quality() {
        assert_eq!(embl_emp().quality, 1.0);
        let auto = Mapping::new(
            MappingId(2),
            "A",
            "B",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![],
        );
        assert!(auto.quality < 1.0);
    }

    #[test]
    fn translate_and_destination_follow_direction() {
        let m = embl_emp();
        assert_eq!(
            m.translate("Organism", Direction::Forward),
            Some("SystematicName")
        );
        assert_eq!(m.destination(Direction::Forward), &SchemaId::new("EMP"));
        assert_eq!(
            m.translate("SystematicName", Direction::Backward),
            Some("Organism")
        );
        assert_eq!(m.destination(Direction::Backward), &SchemaId::new("EMBL"));
        assert_eq!(Direction::Forward.reverse(), Direction::Backward);
    }
}
