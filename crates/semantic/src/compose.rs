//! Mapping composition along paths (§3.2, §4).
//!
//! "The deprecation of mappings fosters the creation of a new topology
//! of mappings" and deprecated mappings "are gradually replaced by other
//! mapping paths" (§4). Composition is the mechanism that turns a
//! *path* of mappings into a single direct mapping: if `A#x ↦ B#y` and
//! `B#y ↦ C#z`, then `A#x ↦ C#z`. The same transitive-closure machinery
//! underlies the Bayesian cycle analysis of [`crate::bayes`].
//!
//! [`compose_path`] is pure — it reads the registry and returns the
//! *description* of the composed mapping; actually registering it (and
//! publishing it into the DHT) is the caller's job, because in GridVine
//! a mapping insertion is a mediation-layer `Update` with message costs.

use crate::graph::MappingRegistry;
use crate::mapping::{Correspondence, Direction, Mapping, MappingKind};
use crate::reformulate::Step;
use crate::schema::SchemaId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// The description of a mapping obtained by composing a path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Composed {
    pub source: SchemaId,
    pub target: SchemaId,
    /// `Equivalence` iff every step was applied as an equivalence (so
    /// the composite translates both ways); otherwise `Subsumption`.
    pub kind: MappingKind,
    pub correspondences: Vec<Correspondence>,
    /// Product of the step qualities — composing degrades confidence.
    pub quality: f64,
    /// The steps the composite summarizes (for provenance/debugging).
    pub path: Vec<Step>,
}

/// A mapping viewed in its direction of application: an effective
/// (source, target, correspondence) triple.
fn effective(m: &Mapping, dir: Direction) -> Option<(SchemaId, SchemaId, Vec<Correspondence>)> {
    match dir {
        Direction::Forward => Some((
            m.source.clone(),
            m.target.clone(),
            m.correspondences.clone(),
        )),
        Direction::Backward => {
            if m.kind != MappingKind::Equivalence {
                return None; // subsumption does not reverse
            }
            Some((
                m.target.clone(),
                m.source.clone(),
                m.correspondences
                    .iter()
                    .map(|c| Correspondence::new(c.target_attr.clone(), c.source_attr.clone()))
                    .collect(),
            ))
        }
    }
}

/// Compose two effective correspondence lists: `x ↦ z` exists iff some
/// middle attribute `y` has both `x ↦ y` and `y ↦ z`.
pub fn compose_correspondences(
    first: &[Correspondence],
    second: &[Correspondence],
) -> Vec<Correspondence> {
    let mut out = Vec::new();
    for a in first {
        for b in second {
            if a.target_attr == b.source_attr {
                out.push(Correspondence::new(
                    a.source_attr.clone(),
                    b.target_attr.clone(),
                ));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Compose a path of (mapping, direction) steps into one direct mapping
/// description.
///
/// ```
/// use gridvine_semantic::{compose_path, Correspondence, Direction,
///     MappingKind, MappingRegistry, Provenance, Schema, Step};
///
/// let mut reg = MappingRegistry::new();
/// for (s, a) in [("EMBL", "Organism"), ("EMP", "SystematicName"), ("PDB", "Species")] {
///     reg.add_schema(Schema::new(s, [a]));
/// }
/// let m1 = reg.add_mapping("EMBL", "EMP", MappingKind::Equivalence, Provenance::Manual,
///     vec![Correspondence::new("Organism", "SystematicName")]);
/// let m2 = reg.add_mapping("EMP", "PDB", MappingKind::Equivalence, Provenance::Manual,
///     vec![Correspondence::new("SystematicName", "Species")]);
///
/// let path = [Step { mapping: m1, direction: Direction::Forward },
///             Step { mapping: m2, direction: Direction::Forward }];
/// let direct = compose_path(&reg, &path).expect("chains");
/// assert_eq!(direct.correspondences,
///     vec![Correspondence::new("Organism", "Species")]);
/// ```
///
/// Returns `None` when the path is shorter than two steps, any step is
/// missing/deprecated/irreversible, consecutive steps do not chain
/// (`target(i) ≠ source(i+1)`), the path is not simple (revisits a
/// schema — composites around cycles assess mappings, they don't define
/// new ones), or the composed correspondence set is empty.
pub fn compose_path(registry: &MappingRegistry, path: &[Step]) -> Option<Composed> {
    if path.len() < 2 {
        return None;
    }
    let mut acc: Option<(SchemaId, SchemaId, Vec<Correspondence>)> = None;
    let mut kind = MappingKind::Equivalence;
    let mut quality = 1.0f64;
    let mut seen: BTreeSet<SchemaId> = BTreeSet::new();
    for step in path {
        let m = registry.mapping(step.mapping)?;
        if !m.is_active() {
            return None;
        }
        if m.kind != MappingKind::Equivalence {
            kind = MappingKind::Subsumption;
        }
        quality *= m.quality;
        let (src, dst, corrs) = effective(m, step.direction)?;
        acc = Some(match acc {
            None => {
                seen.insert(src.clone());
                seen.insert(dst.clone());
                (src, dst, corrs)
            }
            Some((first_src, prev_dst, prev_corrs)) => {
                if prev_dst != src || !seen.insert(dst.clone()) {
                    return None;
                }
                (first_src, dst, compose_correspondences(&prev_corrs, &corrs))
            }
        });
    }
    let (source, target, correspondences) = acc?;
    if correspondences.is_empty() {
        return None;
    }
    Some(Composed {
        source,
        target,
        kind,
        correspondences,
        quality,
        path: path.to_vec(),
    })
}

/// Shortest active mapping path `from → to` (BFS over the directed
/// application graph), or `None` when unreachable. Paths of length one
/// are returned too — callers wanting a *replacement* for a direct
/// mapping should exclude the deprecated mapping before searching (a
/// deprecated mapping is inactive, so BFS never uses it).
pub fn find_path(registry: &MappingRegistry, from: &SchemaId, to: &SchemaId) -> Option<Vec<Step>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut visited: BTreeSet<SchemaId> = BTreeSet::new();
    visited.insert(from.clone());
    let mut frontier: VecDeque<(SchemaId, Vec<Step>)> = VecDeque::new();
    frontier.push_back((from.clone(), Vec::new()));
    while let Some((at, path)) = frontier.pop_front() {
        for (m, dir) in registry.applicable_from(&at) {
            let dest = m.destination(dir).clone();
            if !visited.insert(dest.clone()) {
                continue;
            }
            let mut next = path.clone();
            next.push(Step {
                mapping: m.id,
                direction: dir,
            });
            if dest == *to {
                return Some(next);
            }
            frontier.push_back((dest, next));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Provenance;
    use crate::schema::Schema;
    use proptest::prelude::*;

    /// S0 —m0— S1 —m1— S2 (equivalences, aligned attributes a0/a1/a2).
    fn chain(n: usize) -> (MappingRegistry, Vec<crate::mapping::MappingId>) {
        let mut reg = MappingRegistry::new();
        for i in 0..=n {
            reg.add_schema(Schema::new(format!("S{i}").as_str(), [format!("a{i}")]));
        }
        let ids = (0..n)
            .map(|i| {
                reg.add_mapping(
                    format!("S{i}").as_str(),
                    format!("S{}", i + 1).as_str(),
                    MappingKind::Equivalence,
                    Provenance::Manual,
                    vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
                )
            })
            .collect();
        (reg, ids)
    }

    fn fwd(id: crate::mapping::MappingId) -> Step {
        Step {
            mapping: id,
            direction: Direction::Forward,
        }
    }

    #[test]
    fn two_step_composition_translates_end_to_end() {
        let (reg, ids) = chain(2);
        let c = compose_path(&reg, &[fwd(ids[0]), fwd(ids[1])]).expect("composes");
        assert_eq!(c.source, SchemaId::new("S0"));
        assert_eq!(c.target, SchemaId::new("S2"));
        assert_eq!(c.kind, MappingKind::Equivalence);
        assert_eq!(c.correspondences, vec![Correspondence::new("a0", "a2")]);
    }

    #[test]
    fn backward_steps_reverse_equivalences() {
        let (reg, ids) = chain(2);
        // S2 → S1 → S0, both backward.
        let path = [
            Step {
                mapping: ids[1],
                direction: Direction::Backward,
            },
            Step {
                mapping: ids[0],
                direction: Direction::Backward,
            },
        ];
        let c = compose_path(&reg, &path).expect("composes backward");
        assert_eq!(c.source, SchemaId::new("S2"));
        assert_eq!(c.target, SchemaId::new("S0"));
        assert_eq!(c.correspondences, vec![Correspondence::new("a2", "a0")]);
    }

    #[test]
    fn subsumption_steps_poison_the_kind_and_refuse_reversal() {
        let mut reg = MappingRegistry::new();
        for (s, a) in [("A", "x"), ("B", "y"), ("C", "z")] {
            reg.add_schema(Schema::new(s, [a]));
        }
        let m1 = reg.add_mapping(
            "A",
            "B",
            MappingKind::Subsumption,
            Provenance::Manual,
            vec![Correspondence::new("x", "y")],
        );
        let m2 = reg.add_mapping(
            "B",
            "C",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("y", "z")],
        );
        let c = compose_path(&reg, &[fwd(m1), fwd(m2)]).expect("composes");
        assert_eq!(c.kind, MappingKind::Subsumption);
        // Reversing through the subsumption step is refused.
        let bad = [
            Step {
                mapping: m2,
                direction: Direction::Backward,
            },
            Step {
                mapping: m1,
                direction: Direction::Backward,
            },
        ];
        assert_eq!(compose_path(&reg, &bad), None);
    }

    #[test]
    fn quality_is_the_product_of_steps() {
        let (mut reg, ids) = chain(2);
        reg.mapping_mut(ids[0]).unwrap().quality = 0.8;
        reg.mapping_mut(ids[1]).unwrap().quality = 0.5;
        let c = compose_path(&reg, &[fwd(ids[0]), fwd(ids[1])]).unwrap();
        assert!((c.quality - 0.4).abs() < 1e-12);
    }

    #[test]
    fn broken_chains_and_cycles_refuse() {
        let (reg, ids) = chain(3);
        // Non-adjacent steps (S0→S1 then S2→S3) do not chain.
        assert_eq!(compose_path(&reg, &[fwd(ids[0]), fwd(ids[2])]), None);
        // Single step is not a composition.
        assert_eq!(compose_path(&reg, &[fwd(ids[0])]), None);
        // Forward then backward over the same mapping revisits S0.
        let back = Step {
            mapping: ids[0],
            direction: Direction::Backward,
        };
        assert_eq!(compose_path(&reg, &[fwd(ids[0]), back]), None);
    }

    #[test]
    fn deprecated_steps_refuse() {
        let (mut reg, ids) = chain(2);
        reg.deprecate(ids[1]);
        assert_eq!(compose_path(&reg, &[fwd(ids[0]), fwd(ids[1])]), None);
    }

    #[test]
    fn empty_correspondence_intersection_refuses() {
        let mut reg = MappingRegistry::new();
        for (s, attrs) in [("A", vec!["x"]), ("B", vec!["y", "u"]), ("C", vec!["z"])] {
            reg.add_schema(Schema::new(s, attrs));
        }
        let m1 = reg.add_mapping(
            "A",
            "B",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("x", "y")],
        );
        // The second mapping goes through B#u, not B#y: no middle attr.
        let m2 = reg.add_mapping(
            "B",
            "C",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("u", "z")],
        );
        assert_eq!(compose_path(&reg, &[fwd(m1), fwd(m2)]), None);
    }

    #[test]
    fn find_path_returns_shortest_and_respects_deprecation() {
        let (mut reg, ids) = chain(3);
        // Direct chord S0→S3 gives a one-step path.
        let chord = reg.add_mapping(
            "S0",
            "S3",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new("a0", "a3")],
        );
        let p = find_path(&reg, &SchemaId::new("S0"), &SchemaId::new("S3")).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].mapping, chord);
        // Deprecate the chord: BFS must fall back to the 3-step chain.
        reg.deprecate(chord);
        let p = find_path(&reg, &SchemaId::new("S0"), &SchemaId::new("S3")).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.iter().map(|s| s.mapping).collect::<Vec<_>>(), ids);
        // Unreachable target.
        reg.add_schema(Schema::new("ISLAND", ["q"]));
        assert_eq!(
            find_path(&reg, &SchemaId::new("S0"), &SchemaId::new("ISLAND")),
            None
        );
    }

    #[test]
    fn composed_path_replaces_deprecated_chord() {
        // The §4 storyline in miniature: deprecate a chord, find the
        // alternative path, compose it — the composite translates the
        // same attribute the chord did.
        let (mut reg, _ids) = chain(3);
        let chord = reg.add_mapping(
            "S0",
            "S3",
            MappingKind::Equivalence,
            Provenance::Automatic,
            vec![Correspondence::new("a0", "a3")],
        );
        reg.deprecate(chord);
        let path = find_path(&reg, &SchemaId::new("S0"), &SchemaId::new("S3")).unwrap();
        let c = compose_path(&reg, &path).expect("replacement composes");
        assert_eq!(c.correspondences, vec![Correspondence::new("a0", "a3")]);
        assert_eq!(c.kind, MappingKind::Equivalence);
    }

    fn arb_chain_len() -> impl proptest::strategy::Strategy<Value = usize> {
        2usize..7
    }

    proptest! {
        /// Composing a full forward chain always yields the end-to-end
        /// correspondence a0 ↦ a_n with quality = product.
        #[test]
        fn chain_composition_is_end_to_end(n in arb_chain_len(), q in 0.5f64..1.0) {
            let (mut reg, ids) = chain(n);
            for &id in &ids {
                reg.mapping_mut(id).unwrap().quality = q;
            }
            let path: Vec<Step> = ids.iter().map(|&id| fwd(id)).collect();
            let c = compose_path(&reg, &path).expect("chain composes");
            prop_assert_eq!(
                c.correspondences,
                vec![Correspondence::new("a0", format!("a{n}"))]
            );
            prop_assert!((c.quality - q.powi(n as i32)).abs() < 1e-9);
        }

        /// Composition agrees with step-by-step translation for every
        /// attribute the composite covers.
        #[test]
        fn composite_translation_matches_chained_translation(n in arb_chain_len()) {
            let (reg, ids) = chain(n);
            let path: Vec<Step> = ids.iter().map(|&id| fwd(id)).collect();
            let c = compose_path(&reg, &path).expect("composes");
            for corr in &c.correspondences {
                // Chase the attribute through the chain by hand.
                let mut attr = corr.source_attr.clone();
                for step in &path {
                    let m = reg.mapping(step.mapping).unwrap();
                    attr = m.translate(&attr, step.direction).unwrap().to_string();
                }
                prop_assert_eq!(&attr, &corr.target_attr);
            }
        }
    }
}
