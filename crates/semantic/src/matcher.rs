//! Automatic schema matching (§3.2/§4).
//!
//! "We take advantage of shared references to the same protein sequence
//! to select pairs of candidate schemas, and create the automatic
//! mappings using a combination of lexicographical measures and set
//! distance measures between the predicates defined in both schemas."
//!
//! Three signal families are implemented:
//!
//! * **lexicographic** — normalized Levenshtein similarity, trigram Dice
//!   coefficient, and token overlap over camel-case/underscore-split
//!   attribute names;
//! * **set distance** — Jaccard similarity between the value sets two
//!   attributes take *on the shared instances* (records present under
//!   both schemas, linked by a common accession);
//! * **combination** — a weighted blend with a decision threshold.

use crate::mapping::Correspondence;
use crate::schema::SchemaId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------
// Lexicographic measures
// ---------------------------------------------------------------------

/// Levenshtein edit distance (iterative two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity normalized to [0, 1]: `1 − d/max_len`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Character trigrams of the lowercased, padded string.
fn trigrams(s: &str) -> BTreeSet<[char; 3]> {
    let padded: Vec<char> = std::iter::once('^')
        .chain(s.to_lowercase().chars())
        .chain(std::iter::once('$'))
        .collect();
    padded.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

/// Dice coefficient over character trigrams, in [0, 1].
pub fn trigram_dice(a: &str, b: &str) -> f64 {
    let ta = trigrams(a);
    let tb = trigrams(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let shared = ta.intersection(&tb).count();
    2.0 * shared as f64 / (ta.len() + tb.len()) as f64
}

/// Split an attribute name into lowercase tokens on underscores, dashes
/// and camel-case boundaries: `SystematicName` → `["systematic",
/// "name"]`, `seq_length` → `["seq", "length"]`.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == ' ' {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            continue;
        }
        let prev_lower = i > 0 && chars[i - 1].is_lowercase();
        if c.is_uppercase() && prev_lower && !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Jaccard similarity of the token sets.
pub fn token_overlap(a: &str, b: &str) -> f64 {
    let ta: BTreeSet<String> = tokenize(a).into_iter().collect();
    let tb: BTreeSet<String> = tokenize(b).into_iter().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.union(&tb).count();
    inter as f64 / union as f64
}

/// The combined lexicographic score: the strongest of the three signals
/// (names match if *any* view of them matches well).
pub fn lexical_similarity(a: &str, b: &str) -> f64 {
    levenshtein_similarity(a, b)
        .max(trigram_dice(a, b))
        .max(token_overlap(a, b))
}

// ---------------------------------------------------------------------
// Instance-based (set distance) measures
// ---------------------------------------------------------------------

/// The observable extension of one schema: for every attribute, the
/// value each *instance* (shared accession) takes. Built from the
/// triples a peer can see.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaProfile {
    pub schema: SchemaId,
    /// attribute → (instance key → value).
    pub attributes: BTreeMap<String, BTreeMap<String, String>>,
}

impl SchemaProfile {
    pub fn new(schema: impl Into<SchemaId>) -> SchemaProfile {
        SchemaProfile {
            schema: schema.into(),
            attributes: BTreeMap::new(),
        }
    }

    /// Record that `instance`'s `attr` has `value` under this schema.
    pub fn observe(
        &mut self,
        attr: impl Into<String>,
        instance: impl Into<String>,
        value: impl Into<String>,
    ) {
        self.attributes
            .entry(attr.into())
            .or_default()
            .insert(instance.into(), value.into());
    }

    /// Instances observed under any attribute.
    pub fn instances(&self) -> BTreeSet<&str> {
        self.attributes
            .values()
            .flat_map(|m| m.keys().map(String::as_str))
            .collect()
    }

    /// Instances shared with another profile — the candidate-selection
    /// signal ("shared references to the same protein sequence").
    pub fn shared_instances(&self, other: &SchemaProfile) -> BTreeSet<String> {
        self.instances()
            .intersection(&other.instances())
            .map(|s| s.to_string())
            .collect()
    }
}

/// Jaccard similarity between the value sets of two attributes,
/// restricted to the given shared instances. Returns `None` when fewer
/// than `min_support` shared instances carry both attributes.
pub fn instance_similarity(
    a: &BTreeMap<String, String>,
    b: &BTreeMap<String, String>,
    shared: &BTreeSet<String>,
    min_support: usize,
) -> Option<f64> {
    let va: BTreeSet<&str> = shared
        .iter()
        .filter_map(|i| a.get(i).map(String::as_str))
        .collect();
    let vb: BTreeSet<&str> = shared
        .iter()
        .filter_map(|i| b.get(i).map(String::as_str))
        .collect();
    let support = shared
        .iter()
        .filter(|i| a.contains_key(*i) && b.contains_key(*i))
        .count();
    if support < min_support {
        return None;
    }
    let inter = va.intersection(&vb).count();
    let union = va.union(&vb).count();
    if union == 0 {
        return None;
    }
    Some(inter as f64 / union as f64)
}

// ---------------------------------------------------------------------
// Combined matcher
// ---------------------------------------------------------------------

/// Matcher tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Weight of the lexicographic score.
    pub lexical_weight: f64,
    /// Weight of the instance (set-distance) score.
    pub instance_weight: f64,
    /// Minimum combined score to emit a correspondence.
    pub threshold: f64,
    /// Minimum shared instances carrying both attributes for the
    /// instance score to count.
    pub min_support: usize,
    /// Minimum shared instances between two schemas to consider the
    /// pair at all.
    pub min_shared_instances: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            lexical_weight: 0.5,
            instance_weight: 0.5,
            threshold: 0.55,
            min_support: 2,
            min_shared_instances: 2,
        }
    }
}

impl MatcherConfig {
    /// Lexical-signal-only configuration (ablation A3).
    pub fn lexical_only() -> MatcherConfig {
        MatcherConfig {
            lexical_weight: 1.0,
            instance_weight: 0.0,
            ..MatcherConfig::default()
        }
    }

    /// Instance-signal-only configuration (ablation A3).
    pub fn instance_only() -> MatcherConfig {
        MatcherConfig {
            lexical_weight: 0.0,
            instance_weight: 1.0,
            ..MatcherConfig::default()
        }
    }
}

/// A scored candidate correspondence between two schemas' attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredCorrespondence {
    pub correspondence: Correspondence,
    pub lexical: f64,
    pub instance: Option<f64>,
    pub score: f64,
}

/// Match two schema profiles: score every attribute pair and keep, per
/// source attribute, the best-scoring target above the threshold
/// (stable marriage is overkill at 5–12 attributes per schema).
pub fn match_profiles(
    a: &SchemaProfile,
    b: &SchemaProfile,
    cfg: &MatcherConfig,
) -> Vec<ScoredCorrespondence> {
    let shared = a.shared_instances(b);
    if shared.len() < cfg.min_shared_instances {
        return Vec::new();
    }
    let mut out: Vec<ScoredCorrespondence> = Vec::new();
    for (attr_a, vals_a) in &a.attributes {
        let mut best: Option<ScoredCorrespondence> = None;
        for (attr_b, vals_b) in &b.attributes {
            let lexical = lexical_similarity(attr_a, attr_b);
            let instance = instance_similarity(vals_a, vals_b, &shared, cfg.min_support);
            let denom = cfg.lexical_weight
                + if instance.is_some() {
                    cfg.instance_weight
                } else {
                    0.0
                };
            if denom == 0.0 {
                continue;
            }
            let blend = (cfg.lexical_weight * lexical
                + cfg.instance_weight * instance.unwrap_or(0.0))
                / denom;
            // A correspondence is accepted when the blend *or* any
            // enabled single signal clears the threshold: one decisive
            // signal (identical value sets, or near-identical names)
            // should not be vetoed by the other being unavailable or
            // degraded by formatting differences.
            let mut score = blend;
            if cfg.lexical_weight > 0.0 {
                score = score.max(lexical);
            }
            if cfg.instance_weight > 0.0 {
                score = score.max(instance.unwrap_or(0.0));
            }
            if score < cfg.threshold {
                continue;
            }
            let cand = ScoredCorrespondence {
                correspondence: Correspondence::new(attr_a.clone(), attr_b.clone()),
                lexical,
                instance,
                score,
            };
            if best.as_ref().map(|b| cand.score > b.score).unwrap_or(true) {
                best = Some(cand);
            }
        }
        if let Some(b) = best {
            out.push(b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("organism", "organism"), 0);
    }

    #[test]
    fn levenshtein_similarity_range() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("Organism", "Organisms");
        assert!(s > 0.85 && s < 1.0);
    }

    #[test]
    fn trigram_dice_detects_shared_substrings() {
        assert_eq!(trigram_dice("abc", "abc"), 1.0);
        assert!(trigram_dice("OrganismName", "Organism") > 0.5);
        assert!(trigram_dice("abc", "xyz") < 0.01);
    }

    #[test]
    fn tokenize_camel_and_snake() {
        assert_eq!(tokenize("SystematicName"), vec!["systematic", "name"]);
        assert_eq!(tokenize("seq_length"), vec!["seq", "length"]);
        assert_eq!(
            tokenize("EMBL-Organism name"),
            vec!["embl", "organism", "name"]
        );
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("ABC"), vec!["abc"]);
    }

    #[test]
    fn token_overlap_matches_reordered_names() {
        assert_eq!(token_overlap("OrganismName", "name_organism"), 1.0);
        assert!(token_overlap("OrganismName", "Organism") > 0.4);
        assert_eq!(token_overlap("abc", "xyz"), 0.0);
    }

    #[test]
    fn lexical_similarity_takes_best_signal() {
        // Token reorder: Levenshtein poor, token overlap perfect.
        assert_eq!(lexical_similarity("OrganismName", "name_organism"), 1.0);
        // Close spelling: Levenshtein strong.
        assert!(lexical_similarity("Organism", "Organisme") > 0.85);
    }

    fn profile_pair() -> (SchemaProfile, SchemaProfile) {
        let mut a = SchemaProfile::new("EMBL");
        let mut b = SchemaProfile::new("EMP");
        for (acc, org) in [
            ("P100", "Aspergillus niger"),
            ("P101", "Aspergillus nidulans"),
            ("P102", "Penicillium notatum"),
        ] {
            a.observe("Organism", acc, org);
            b.observe("SystematicName", acc, org);
            a.observe("SeqLength", acc, format!("{}", acc.len() * 100));
            b.observe("Length", acc, format!("{}", acc.len() * 100));
            // A decoy attribute with unrelated values.
            b.observe("Curator", acc, format!("curator-{acc}"));
        }
        (a, b)
    }

    #[test]
    fn shared_instances_found() {
        let (a, b) = profile_pair();
        assert_eq!(a.shared_instances(&b).len(), 3);
    }

    #[test]
    fn instance_similarity_separates_real_from_decoy() {
        let (a, b) = profile_pair();
        let shared = a.shared_instances(&b);
        let org_a = &a.attributes["Organism"];
        let sys_b = &b.attributes["SystematicName"];
        let cur_b = &b.attributes["Curator"];
        let good = instance_similarity(org_a, sys_b, &shared, 2).expect("supported");
        let bad = instance_similarity(org_a, cur_b, &shared, 2).expect("supported");
        assert_eq!(good, 1.0);
        assert_eq!(bad, 0.0);
    }

    #[test]
    fn instance_similarity_requires_support() {
        let (a, b) = profile_pair();
        let shared = a.shared_instances(&b);
        let org_a = &a.attributes["Organism"];
        let sys_b = &b.attributes["SystematicName"];
        assert!(instance_similarity(org_a, sys_b, &shared, 10).is_none());
    }

    #[test]
    fn combined_matcher_finds_both_correspondences() {
        let (a, b) = profile_pair();
        let found = match_profiles(&a, &b, &MatcherConfig::default());
        let pairs: BTreeSet<(String, String)> = found
            .iter()
            .map(|s| {
                (
                    s.correspondence.source_attr.clone(),
                    s.correspondence.target_attr.clone(),
                )
            })
            .collect();
        assert!(
            pairs.contains(&("Organism".into(), "SystematicName".into())),
            "{pairs:?}"
        );
        assert!(
            pairs.contains(&("SeqLength".into(), "Length".into())),
            "{pairs:?}"
        );
        // The decoy must not be chosen for Organism.
        assert!(!pairs.contains(&("Organism".into(), "Curator".into())));
    }

    #[test]
    fn matcher_needs_shared_instances() {
        let mut a = SchemaProfile::new("A");
        let mut b = SchemaProfile::new("B");
        a.observe("Organism", "X1", "v");
        b.observe("Organism", "Y1", "v");
        assert!(match_profiles(&a, &b, &MatcherConfig::default()).is_empty());
    }

    #[test]
    fn instance_only_matcher_ignores_names() {
        let mut a = SchemaProfile::new("A");
        let mut b = SchemaProfile::new("B");
        for acc in ["I1", "I2", "I3"] {
            a.observe("CompletelyDifferent", acc, format!("val-{acc}"));
            b.observe("UnrelatedName", acc, format!("val-{acc}"));
        }
        let found = match_profiles(&a, &b, &MatcherConfig::instance_only());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].instance, Some(1.0));
        // Lexical-only finds nothing here.
        assert!(match_profiles(&a, &b, &MatcherConfig::lexical_only()).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Levenshtein is a metric: symmetry + identity + triangle.
        #[test]
        fn levenshtein_metric(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        /// All similarity measures stay within [0, 1].
        #[test]
        fn similarities_bounded(a in "[A-Za-z_]{0,14}", b in "[A-Za-z_]{0,14}") {
            for s in [levenshtein_similarity(&a, &b), trigram_dice(&a, &b),
                      token_overlap(&a, &b), lexical_similarity(&a, &b)] {
                prop_assert!((0.0..=1.0).contains(&s), "{s}");
            }
        }

        /// Identical names always score 1.0 on the combined signal.
        #[test]
        fn identical_names_score_one(a in "[A-Za-z][A-Za-z_]{0,10}") {
            prop_assert!((lexical_similarity(&a, &a) - 1.0).abs() < 1e-12);
        }
    }
}
