//! The connectivity indicator `ci` (§3.1).
//!
//! "Each peer storing a schema definition is responsible for updating
//! the number of incoming and outgoing mappings attached to its schema
//! … The peer responsible for Hash(Domain) can then locally derive the
//! degree distribution of the graph of schemas … It evaluates the
//! connectivity of the mediation layer by computing a connectivity
//! indicator:  ci = Σ_{j,k} (jk − k) p_{jk},  where p_{jk} stands for
//! the probability of a schema to have in-degree j and out-degree k.
//! ci ≥ 0 indicates the emergence of a giant connected component …
//! Thus, the mediation layer is not strongly connected as long as
//! ci < 0."
//!
//! This is the directed-graph Molloy–Reed criterion from the authors'
//! ODBASE'04 paper \[2\]. The estimator is *local*: the domain peer sees
//! only the degree records, never the full graph, which is exactly why
//! GridVine can monitor connectivity without crawling.

use crate::graph::DegreeRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The aggregated joint degree distribution held by the domain peer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DegreeDistribution {
    /// counts[(j, k)] = number of schemas with in-degree j, out-degree k.
    counts: BTreeMap<(usize, usize), usize>,
    total: usize,
}

impl DegreeDistribution {
    pub fn new() -> DegreeDistribution {
        DegreeDistribution::default()
    }

    /// Aggregate from the records published under `Hash(Domain)`.
    pub fn from_records(records: &[DegreeRecord]) -> DegreeDistribution {
        let mut d = DegreeDistribution::new();
        for r in records {
            d.add(r.in_degree, r.out_degree);
        }
        d
    }

    /// Record one schema's degrees.
    pub fn add(&mut self, in_degree: usize, out_degree: usize) {
        *self.counts.entry((in_degree, out_degree)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of schemas aggregated.
    pub fn schemas(&self) -> usize {
        self.total
    }

    /// `p_{jk}` — empirical probability of the (j, k) degree pair.
    pub fn p(&self, j: usize, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.get(&(j, k)).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Mean in-degree E\[j\].
    pub fn mean_in(&self) -> f64 {
        self.moment(|j, _| j as f64)
    }

    /// Mean out-degree E\[k\].
    pub fn mean_out(&self) -> f64 {
        self.moment(|_, k| k as f64)
    }

    /// E[j·k] — the in/out degree correlation term.
    pub fn mean_product(&self) -> f64 {
        self.moment(|j, k| (j * k) as f64)
    }

    fn moment<F: Fn(usize, usize) -> f64>(&self, f: F) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|(&(j, k), &c)| f(j, k) * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// The paper's connectivity indicator:
    /// `ci = Σ_{j,k} (jk − k) p_{jk} = E[jk] − E[k]`.
    pub fn connectivity_indicator(&self) -> f64 {
        self.counts
            .iter()
            .map(|(&(j, k), &c)| ((j * k) as f64 - k as f64) * c as f64)
            .sum::<f64>()
            / self.total.max(1) as f64
    }

    /// `ci ≥ 0` — the giant-SCC emergence condition.
    pub fn predicts_giant_component(&self) -> bool {
        self.total > 0 && self.connectivity_indicator() >= 0.0
    }
}

/// Convenience: indicator straight from degree records.
pub fn connectivity_indicator(records: &[DegreeRecord]) -> f64 {
    DegreeDistribution::from_records(records).connectivity_indicator()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::MappingRegistry;
    use crate::mapping::{Correspondence, MappingKind, Provenance};
    use crate::schema::Schema;

    fn record(schema: &str, j: usize, k: usize) -> DegreeRecord {
        DegreeRecord {
            schema: schema.into(),
            in_degree: j,
            out_degree: k,
        }
    }

    #[test]
    fn empty_distribution_is_zero() {
        let d = DegreeDistribution::new();
        assert_eq!(d.connectivity_indicator(), 0.0);
        assert!(!d.predicts_giant_component());
        assert_eq!(d.p(0, 0), 0.0);
    }

    #[test]
    fn matches_hand_computation() {
        // Two schemas: (j=1, k=1) and (j=0, k=2).
        // ci = [(1·1 − 1) + (0·2 − 2)] / 2 = (0 − 2)/2 = −1.
        let d = DegreeDistribution::from_records(&[record("a", 1, 1), record("b", 0, 2)]);
        assert!((d.connectivity_indicator() - (-1.0)).abs() < 1e-12);
        assert!(!d.predicts_giant_component());
    }

    #[test]
    fn ring_graph_is_critical() {
        // Directed ring: every schema has j = k = 1 ⇒ ci = (1·1 − 1) = 0,
        // exactly the critical point.
        let d = DegreeDistribution::from_records(&[
            record("a", 1, 1),
            record("b", 1, 1),
            record("c", 1, 1),
        ]);
        assert_eq!(d.connectivity_indicator(), 0.0);
        assert!(d.predicts_giant_component());
    }

    #[test]
    fn dense_graph_is_positive_sparse_negative() {
        // Dense: everyone has in/out degree 3 ⇒ ci = 9 − 3 = 6.
        let dense = DegreeDistribution::from_records(&vec![record("a", 3, 3); 5]);
        assert!(dense.connectivity_indicator() > 0.0);
        // Sparse: mostly isolated with a couple of out-edges.
        let sparse = DegreeDistribution::from_records(&[
            record("a", 0, 1),
            record("b", 0, 1),
            record("c", 1, 0),
            record("d", 1, 0),
            record("e", 0, 0),
        ]);
        assert!(sparse.connectivity_indicator() < 0.0);
    }

    #[test]
    fn moments_are_consistent() {
        let d = DegreeDistribution::from_records(&[record("a", 2, 4), record("b", 0, 2)]);
        assert!((d.mean_in() - 1.0).abs() < 1e-12);
        assert!((d.mean_out() - 3.0).abs() < 1e-12);
        assert!((d.mean_product() - 4.0).abs() < 1e-12);
        // ci = E[jk] − E[k].
        assert!((d.connectivity_indicator() - (4.0 - 3.0)).abs() < 1e-12);
    }

    #[test]
    fn indicator_tracks_graph_ground_truth_on_growth() {
        // Grow a directed (subsumption) chain over 12 schemas, then
        // close it into a ring. While the chain is open the graph is
        // not strongly connected and ci < 0 (the chain head has
        // out-degree without in-degree); once the ring closes, every
        // schema has j = k = 1, ci = 0 — exactly the critical point —
        // and the graph becomes one SCC.
        let n = 12;
        let mut reg = MappingRegistry::new();
        for i in 0..n {
            reg.add_schema(Schema::new(format!("S{i}").as_str(), ["a"]));
        }
        for i in 0..n - 1 {
            reg.add_mapping(
                format!("S{i}").as_str(),
                format!("S{}", i + 1).as_str(),
                MappingKind::Subsumption,
                Provenance::Manual,
                vec![Correspondence::new("a", "a")],
            );
            let ci = connectivity_indicator(&reg.degree_records());
            assert!(ci < 0.0, "open chain after {i} mappings: ci = {ci}");
            assert!(!reg.is_strongly_connected());
        }
        // Close the ring.
        reg.add_mapping(
            format!("S{}", n - 1).as_str(),
            "S0",
            MappingKind::Subsumption,
            Provenance::Manual,
            vec![Correspondence::new("a", "a")],
        );
        let ci = connectivity_indicator(&reg.degree_records());
        assert!(reg.is_strongly_connected());
        assert!(ci >= 0.0, "closed ring must have ci ≥ 0, got {ci}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// ci computed via the p_{jk} sum equals E[jk] − E[k].
        #[test]
        fn ci_equals_moment_difference(recs in proptest::collection::vec((0usize..6, 0usize..6), 1..40)) {
            let records: Vec<DegreeRecord> = recs
                .iter()
                .enumerate()
                .map(|(i, &(j, k))| DegreeRecord {
                    schema: format!("S{i}").as_str().into(),
                    in_degree: j,
                    out_degree: k,
                })
                .collect();
            let d = DegreeDistribution::from_records(&records);
            let expected = d.mean_product() - d.mean_out();
            prop_assert!((d.connectivity_indicator() - expected).abs() < 1e-9);
        }

        /// The probabilities p_{jk} sum to one.
        #[test]
        fn p_sums_to_one(recs in proptest::collection::vec((0usize..5, 0usize..5), 1..30)) {
            let mut d = DegreeDistribution::new();
            for &(j, k) in &recs { d.add(j, k); }
            let sum: f64 = (0..5).flat_map(|j| (0..5).map(move |k| (j, k)))
                .map(|(j, k)| d.p(j, k))
                .sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
