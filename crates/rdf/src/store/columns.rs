//! Columnar row storage: one `TermId` column per triple position.
//!
//! A stored triple is a *row id* (its insertion index) into three
//! parallel id columns plus two bit-packed flag columns (object kind,
//! tombstone). Row ids are stable for the lifetime of the store — the
//! posting lists, the sorted runs and every cursor hand them out — so
//! deletion tombstones instead of compacting in place
//! ([`crate::TripleStore::compact`] rebuilds and renumbers).
//!
//! The columnar split is what makes scans cheap: an equality scan over
//! one position touches one `u32` column (and the zone-mapped sorted
//! runs prune most of that), not 16-byte row tuples, and term
//! materialization is deferred until a consumer dereferences a row id.

use crate::dict::TermId;
use crate::triple::Position;
use serde::{Deserialize, Serialize};

/// One logical row as a value: the interned ids plus the object's kind
/// (URIs and literals with equal lexical share a [`TermId`]; the flag is
/// what keeps `<x>` and `"x"` distinct triples). Used for encoding,
/// dedup and row equality — storage itself is columnar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Row {
    pub(crate) s: TermId,
    pub(crate) p: TermId,
    pub(crate) o: TermId,
    pub(crate) o_lit: bool,
}

impl std::hash::Hash for Row {
    /// One packed 128-bit write (two mix rounds under
    /// [`crate::fasthash::FxHashSet`]) instead of four field writes —
    /// this hash sits on the ingest dedup path.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let packed = ((self.s.0 as u128) << 65)
            | ((self.p.0 as u128) << 33)
            | ((self.o.0 as u128) << 1)
            | self.o_lit as u128;
        state.write_u128(packed);
    }
}

impl Row {
    #[inline]
    pub(crate) fn id_at(&self, pos: Position) -> TermId {
        match pos {
            Position::Subject => self.s,
            Position::Predicate => self.p,
            Position::Object => self.o,
        }
    }

    /// Term code at a position: id shifted, low bit = literal kind.
    #[inline]
    pub(crate) fn code_at(&self, pos: Position) -> u64 {
        let lit = match pos {
            Position::Object => self.o_lit,
            _ => false,
        };
        ((self.id_at(pos).0 as u64) << 1) | lit as u64
    }
}

/// A bit-packed boolean column (64 flags per word).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct BitColumn {
    words: Vec<u64>,
    len: usize,
}

impl BitColumn {
    #[inline]
    pub(crate) fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / 64] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    #[inline]
    pub(crate) fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn reserve(&mut self, additional: usize) {
        self.words.reserve(additional.div_ceil(64));
    }
}

/// The column set of one store: three `TermId` columns, the object-kind
/// bits and the tombstone bits, all indexed by row id.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct Columns {
    pub(crate) s: Vec<TermId>,
    pub(crate) p: Vec<TermId>,
    pub(crate) o: Vec<TermId>,
    o_lit: BitColumn,
    dead: BitColumn,
    /// Number of set tombstone bits (O(1) liveness answers).
    dead_count: usize,
}

impl Columns {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.s.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    pub(crate) fn reserve(&mut self, additional: usize) {
        self.s.reserve(additional);
        self.p.reserve(additional);
        self.o.reserve(additional);
        self.o_lit.reserve(additional);
        self.dead.reserve(additional);
    }

    /// Append one live row.
    #[inline]
    pub(crate) fn push(&mut self, row: Row) {
        self.s.push(row.s);
        self.p.push(row.p);
        self.o.push(row.o);
        self.o_lit.push(row.o_lit);
        self.dead.push(false);
    }

    /// The row value at a row id.
    #[inline]
    pub(crate) fn row(&self, id: u32) -> Row {
        let i = id as usize;
        Row {
            s: self.s[i],
            p: self.p[i],
            o: self.o[i],
            o_lit: self.o_lit.get(i),
        }
    }

    /// One position's id column.
    #[inline]
    pub(crate) fn col(&self, pos: Position) -> &[TermId] {
        match pos {
            Position::Subject => &self.s,
            Position::Predicate => &self.p,
            Position::Object => &self.o,
        }
    }

    #[inline]
    pub(crate) fn id_at(&self, id: u32, pos: Position) -> TermId {
        self.col(pos)[id as usize]
    }

    /// Term code of one position of a stored row: the columnar twin of
    /// [`Row::code_at`] that touches only the probed column (plus the
    /// kind bits for objects) instead of assembling a full [`Row`] —
    /// what the granule-batch residual filter reads per candidate.
    #[inline]
    pub(crate) fn code_at(&self, id: u32, pos: Position) -> u64 {
        let lit = match pos {
            Position::Object => self.o_lit.get(id as usize),
            _ => false,
        };
        ((self.col(pos)[id as usize].0 as u64) << 1) | lit as u64
    }

    /// Whether the object of a row is a literal.
    #[inline]
    pub(crate) fn o_lit_at(&self, id: u32) -> bool {
        self.o_lit.get(id as usize)
    }

    #[inline]
    pub(crate) fn is_dead(&self, id: u32) -> bool {
        self.dead.get(id as usize)
    }

    /// Tombstone a row (the caller maintains the live count).
    #[inline]
    pub(crate) fn kill(&mut self, id: u32) {
        self.dead.set(id as usize);
        self.dead_count += 1;
    }

    /// Whether any row is tombstoned.
    #[inline]
    pub(crate) fn any_dead(&self) -> bool {
        self.dead_count > 0
    }
}
