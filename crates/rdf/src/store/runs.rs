//! Immutable sorted runs with zone maps over the columnar row log.
//!
//! Rows arrive append-only. The tail of the row-id space is the *append
//! log* — recent rows with no scan acceleration beyond the posting
//! lists. Once the log passes a threshold it is *sealed* into a run: an
//! immutable summary of a contiguous row-id range holding, per
//! position,
//!
//! * a **sorted permutation** — the range's row ids ordered by
//!   `(term id, row id)`,
//! * a **key projection** — the term id of each permutation entry,
//!   stored contiguously alongside it (`keys[i]` is the id of row
//!   `perm[i]`), so every in-run binary search, zone derivation and
//!   group walk reads one sequential `u32` array instead of gathering
//!   `col[perm[i]]` through the permutation — the *run-local
//!   projection*, and
//! * a **zone map** — the min/max term id of each [`BLOCK`]-sized
//!   granule of that sorted order (a sparse index: because the
//!   projection is sorted, a granule's zone is just its first and last
//!   entry).
//!
//! An equality scan prunes granules whose `[min, max]` cannot contain
//! the probed id — by construction a contiguous granule range found by
//! two binary searches over the zones — and then narrows to the exact
//! match range inside the surviving granules. Matches come out ordered
//! by row id within a run, and runs partition the row-id space in
//! order, so a multi-run scan yields globally ascending row ids with no
//! merge step.
//!
//! The sorted projection additionally makes a run *group-iterable*: the
//! rows of each distinct term form one contiguous span of the
//! permutation ([`Run::for_each_group`]), so a string predicate over a
//! position is evaluated once per distinct run-local term and then
//! credited to the whole span — not once per row
//! ([`crate::TripleStore::count_where`]) — and two patterns can be
//! merge-joined by walking their key projections in lockstep
//! ([`crate::TripleStore::merge_join`]).
//!
//! Runs are merged lazily on a **size-tiered schedule**: sealing keeps
//! merging the two newest runs while the older is within [`TIER`]× the
//! newer, so the store converges to O(log n) runs without ever paying a
//! big sort on the ingest path (merging two sorted permutations is one
//! linear pass). [`RunSet::seal_all`] — the compaction entry point —
//! folds everything into a single run.
//!
//! Each run also records its **distinct predicate ids**, read off the
//! predicate projection for free; [`crate::TripleStore::predicates`]
//! unions those instead of walking the dictionary.

use super::columns::Columns;
use crate::dict::TermId;
use crate::triple::Position;

/// Rows per zone-map granule (also the batch size of the granule-at-a-
/// time cursor evaluation, re-exported as [`crate::store::GRANULE`]).
pub(crate) const BLOCK: usize = 256;

/// Append-log length that triggers sealing a new run.
pub(crate) const SEAL_MIN: usize = 32_768;

/// Size-tiered merge factor: the two newest runs merge while
/// `older.len() <= TIER * newer.len()`.
const TIER: usize = 2;

#[inline]
fn pidx(pos: Position) -> usize {
    match pos {
        Position::Subject => 0,
        Position::Predicate => 1,
        Position::Object => 2,
    }
}

/// Min/max term id of one granule of a run's sorted permutation
/// (inclusive bounds over `TermId.0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Zone {
    pub(crate) min: u32,
    pub(crate) max: u32,
}

/// One immutable sorted run over the contiguous row-id range
/// `[start, end)`.
#[derive(Debug, Clone)]
pub(crate) struct Run {
    start: u32,
    end: u32,
    /// Per position: row ids of the range ordered by `(term id, row id)`.
    sorted: [Vec<u32>; 3],
    /// Per position: the term id of each `sorted` entry (`keys[p][i]` is
    /// the id of row `sorted[p][i]`) — the contiguous projection every
    /// in-run search and group walk reads instead of the columns.
    keys: [Vec<u32>; 3],
    /// Per position: min/max term id per [`BLOCK`] of the sorted order.
    zones: [Vec<Zone>; 3],
    /// Sorted distinct predicate ids of the range.
    distinct_p: Vec<TermId>,
}

impl Run {
    /// Seal `[start, end)` of the columns into a run: three permutation
    /// sorts plus linear zone/distinct passes.
    ///
    /// `id_bound` (the dictionary's id-space bound) enables a stable
    /// counting sort — O(rows + ids) with no comparisons — whenever the
    /// id space is not vastly larger than the range; pathological
    /// ratios fall back to a packed-key comparison sort.
    fn build(cols: &Columns, start: u32, end: u32, id_bound: usize) -> Run {
        let n = (end - start) as usize;
        let mut sorted: [Vec<u32>; 3] = Default::default();
        let mut keys: [Vec<u32>; 3] = Default::default();
        for pos in Position::ALL {
            let col = &cols.col(pos)[start as usize..end as usize];
            let perm = if id_bound <= 4 * n + 1024 {
                // Counting sort by term id; iteration order supplies the
                // stable row-id tiebreak.
                let mut counts = vec![0u32; id_bound + 1];
                for id in col {
                    counts[id.index()] += 1;
                }
                let mut total = 0u32;
                for c in counts.iter_mut() {
                    let here = *c;
                    *c = total;
                    total += here;
                }
                let mut perm = vec![0u32; n];
                for (offset, id) in col.iter().enumerate() {
                    let slot = &mut counts[id.index()];
                    perm[*slot as usize] = start + offset as u32;
                    *slot += 1;
                }
                perm
            } else {
                // Packed (term id, row) keys: sort u64s, unpack rows.
                let mut keyed: Vec<u64> = col
                    .iter()
                    .enumerate()
                    .map(|(offset, id)| ((id.0 as u64) << 32) | (start as u64 + offset as u64))
                    .collect();
                keyed.sort_unstable();
                keyed.into_iter().map(|k| k as u32).collect()
            };
            // Project the ids into permutation order: one gather now so
            // every later search walks a contiguous array.
            keys[pidx(pos)] = perm.iter().map(|&r| cols.col(pos)[r as usize].0).collect();
            sorted[pidx(pos)] = perm;
        }
        let mut run = Run {
            start,
            end,
            sorted,
            keys,
            zones: Default::default(),
            distinct_p: Vec::new(),
        };
        run.rebuild_metadata();
        run
    }

    /// Merge two row-id-adjacent runs: one linear pass per position over
    /// their key projections (no column gathers).
    fn merge(a: &Run, b: &Run) -> Run {
        debug_assert_eq!(a.end, b.start);
        let mut sorted: [Vec<u32>; 3] = Default::default();
        let mut keys: [Vec<u32>; 3] = Default::default();
        for pos in Position::ALL {
            let p = pidx(pos);
            let (pa, pb) = (&a.sorted[p], &b.sorted[p]);
            let (ka, kb) = (&a.keys[p], &b.keys[p]);
            let mut out = Vec::with_capacity(pa.len() + pb.len());
            let mut out_keys = Vec::with_capacity(pa.len() + pb.len());
            let (mut i, mut j) = (0, 0);
            while i < pa.len() && j < pb.len() {
                // Row ids of `a` precede `b`'s, so equal keys take `a`.
                if ka[i] <= kb[j] {
                    out.push(pa[i]);
                    out_keys.push(ka[i]);
                    i += 1;
                } else {
                    out.push(pb[j]);
                    out_keys.push(kb[j]);
                    j += 1;
                }
            }
            out.extend_from_slice(&pa[i..]);
            out_keys.extend_from_slice(&ka[i..]);
            out.extend_from_slice(&pb[j..]);
            out_keys.extend_from_slice(&kb[j..]);
            sorted[p] = out;
            keys[p] = out_keys;
        }
        let mut run = Run {
            start: a.start,
            end: b.end,
            sorted,
            keys,
            zones: Default::default(),
            distinct_p: Vec::new(),
        };
        run.rebuild_metadata();
        run
    }

    /// Derive zones and distinct predicates from the key projections
    /// (both are linear reads of sorted data).
    fn rebuild_metadata(&mut self) {
        for pos in Position::ALL {
            let keys = &self.keys[pidx(pos)];
            let zones = keys
                .chunks(BLOCK)
                .map(|chunk| Zone {
                    min: chunk[0],
                    max: chunk[chunk.len() - 1],
                })
                .collect();
            self.zones[pidx(pos)] = zones;
        }
        let mut distinct = Vec::new();
        let mut last = u32::MAX;
        for &k in &self.keys[pidx(Position::Predicate)] {
            if k != last {
                distinct.push(TermId(k));
                last = k;
            }
        }
        self.distinct_p = distinct;
    }

    pub(crate) fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    pub(crate) fn end(&self) -> u32 {
        self.end
    }

    pub(crate) fn distinct_predicates(&self) -> &[TermId] {
        &self.distinct_p
    }

    /// One position's sorted permutation (row ids in `(term id, row id)`
    /// order).
    #[cfg(test)]
    pub(crate) fn perm(&self, pos: Position) -> &[u32] {
        &self.sorted[pidx(pos)]
    }

    /// One position's key projection, aligned with [`Run::perm`].
    #[cfg(test)]
    pub(crate) fn keys(&self, pos: Position) -> &[u32] {
        &self.keys[pidx(pos)]
    }

    /// Walk the run's distinct-term groups at one position: `f` is
    /// called once per distinct term with the contiguous (row-id
    /// ascending) span of rows carrying it — the group-at-a-time read
    /// the sorted projection makes free.
    pub(crate) fn for_each_group(&self, pos: Position, mut f: impl FnMut(TermId, &[u32])) {
        let keys = &self.keys[pidx(pos)];
        let perm = &self.sorted[pidx(pos)];
        let mut i = 0;
        while i < keys.len() {
            let key = keys[i];
            let mut j = i + 1;
            while j < keys.len() && keys[j] == key {
                j += 1;
            }
            f(TermId(key), &perm[i..j]);
            i = j;
        }
    }

    /// The contiguous granule range the zone map cannot rule out for
    /// `id` (granule indexes into the sorted permutation).
    pub(crate) fn pruned_granules(&self, pos: Position, id: TermId) -> std::ops::Range<usize> {
        let zones = &self.zones[pidx(pos)];
        let lo = zones.partition_point(|z| z.max < id.0);
        let hi = zones.partition_point(|z| z.min <= id.0);
        lo..hi
    }

    /// Row ids of the run whose `pos` equals `id`, ascending: prune
    /// granules via the zone map, then narrow to the exact equal range
    /// inside the survivors — two binary searches over the contiguous
    /// key projection, no column gathers (entries are
    /// `(term id, row id)`-sorted, so the range is contiguous and
    /// already row-id ordered).
    pub(crate) fn eq_rows(&self, pos: Position, id: TermId) -> &[u32] {
        let granules = self.pruned_granules(pos, id);
        let perm = &self.sorted[pidx(pos)];
        let keys = &self.keys[pidx(pos)];
        let lo = (granules.start * BLOCK).min(perm.len());
        let hi = (granules.end * BLOCK).min(perm.len());
        let window = &keys[lo..hi];
        let from = window.partition_point(|&k| k < id.0);
        let to = window.partition_point(|&k| k <= id.0);
        &perm[lo + from..lo + to]
    }
}

/// The store's run structure: sealed runs covering `[0, sealed_end)` of
/// the row-id space plus the trailing append log.
///
/// Serde-skipped by the store: runs are derived accelerators, rebuilt
/// by sealing as a deserialized store ingests (until then the whole
/// row space is treated as the append log, which every scan handles).
#[derive(Debug, Clone, Default)]
pub(crate) struct RunSet {
    runs: Vec<Run>,
}

impl RunSet {
    /// First row id *not* covered by a sealed run (start of the log).
    pub(crate) fn sealed_end(&self) -> u32 {
        self.runs.last().map(|r| r.end()).unwrap_or(0)
    }

    pub(crate) fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Called after rows are appended: seal the log into a run once it
    /// is big enough, then run the size-tiered merge schedule.
    pub(crate) fn note_appended(&mut self, cols: &Columns, id_bound: usize) {
        let log = cols.len() as u32 - self.sealed_end();
        if (log as usize) >= SEAL_MIN {
            self.seal_log(cols, id_bound);
        }
    }

    /// Unconditionally seal the current append log into a run and apply
    /// the merge schedule (the threshold-free core of
    /// [`RunSet::note_appended`]; tests use it to exercise run structure
    /// on small stores).
    pub(crate) fn seal_log(&mut self, cols: &Columns, id_bound: usize) {
        let sealed = self.sealed_end();
        if (cols.len() as u32) > sealed {
            self.runs
                .push(Run::build(cols, sealed, cols.len() as u32, id_bound));
            self.merge_tail();
        }
    }

    /// Fold everything — runs and log alike — into one sorted run
    /// (compaction). Leaves an empty run set for an empty store.
    pub(crate) fn seal_all(&mut self, cols: &Columns, id_bound: usize) {
        self.runs.clear();
        if !cols.is_empty() {
            self.runs
                .push(Run::build(cols, 0, cols.len() as u32, id_bound));
        }
    }

    /// Drop all runs (the caller rebuilt the columns).
    pub(crate) fn clear(&mut self) {
        self.runs.clear();
    }

    fn merge_tail(&mut self) {
        while self.runs.len() >= 2 {
            let newer = &self.runs[self.runs.len() - 1];
            let older = &self.runs[self.runs.len() - 2];
            if older.len() > TIER * newer.len() {
                break;
            }
            let merged = Run::merge(older, newer);
            self.runs.truncate(self.runs.len() - 2);
            self.runs.push(merged);
        }
    }
}
