//! Row cursors: lazy, allocation-free scans over the columnar store.
//!
//! A [`RowCursor`] yields *row ids* in ascending (insertion) order,
//! skipping tombstones, and defers all term materialization until the
//! consumer asks — [`RowCursor::refs`] for borrowed views,
//! [`RowCursor::triples`] for owned terms, or plain `count()` for
//! cardinalities, which touches no string at all. This is what the
//! seed's `Vec<&Triple>` selections deferred implicitly and what the
//! eager `Vec<TripleRef>` API paid for on every fat posting list.
//!
//! Three sources back a cursor:
//!
//! * **posting** — the probed term's posting list (point lookups:
//!   [`crate::TripleStore::select_eq_rows`]);
//! * **zone-mapped scan** — the sorted runs pruned granule-by-granule
//!   via their zone maps, then the append log linearly
//!   ([`crate::TripleStore::scan_eq_rows`]) — the scan-analytics path
//!   that needs no posting list at all;
//! * **full** — every live row ([`crate::TripleStore::rows`]).

use super::runs::Run;
use super::{TripleRef, TripleStore};
use crate::dict::TermId;
use crate::triple::{Position, Triple};

/// A lazy iterator of live row ids (see the module docs).
pub struct RowCursor<'a> {
    store: &'a TripleStore,
    src: Source<'a>,
}

enum Source<'a> {
    Empty,
    Posting { ids: &'a [u32], i: usize },
    Scan(ScanState<'a>),
    Full { next: u32 },
}

/// Zone-mapped equality scan: runs first (each contributing its exact
/// match range, found under the zone map's pruned granules), then the
/// append log linearly. Runs partition the row-id space in order, so
/// the concatenation is globally ascending.
struct ScanState<'a> {
    pos: Position,
    id: TermId,
    runs: &'a [Run],
    /// Next run to open.
    run: usize,
    /// Current run's match range.
    matches: &'a [u32],
    mi: usize,
    /// Next append-log row to test.
    log_next: u32,
}

impl<'a> RowCursor<'a> {
    pub(super) fn empty(store: &'a TripleStore) -> RowCursor<'a> {
        RowCursor {
            store,
            src: Source::Empty,
        }
    }

    pub(super) fn posting(store: &'a TripleStore, ids: &'a [u32]) -> RowCursor<'a> {
        RowCursor {
            store,
            src: Source::Posting { ids, i: 0 },
        }
    }

    pub(super) fn scan_eq(store: &'a TripleStore, pos: Position, id: TermId) -> RowCursor<'a> {
        RowCursor {
            store,
            src: Source::Scan(ScanState {
                pos,
                id,
                runs: store.runs.runs(),
                run: 0,
                matches: &[],
                mi: 0,
                log_next: store.runs.sealed_end(),
            }),
        }
    }

    pub(super) fn full(store: &'a TripleStore) -> RowCursor<'a> {
        RowCursor {
            store,
            src: Source::Full { next: 0 },
        }
    }

    /// Collect the remaining row ids into a `Vec`, using tight
    /// per-source loops: a tombstone-free posting cursor is one
    /// `memcpy` of the list, a tombstone-free run scan one
    /// `extend_from_slice` per run — none of the per-item iterator
    /// state machine that a generic `collect()` pays.
    pub fn into_vec(self) -> Vec<u32> {
        let cols = &self.store.cols;
        let clean = !cols.any_dead();
        match self.src {
            Source::Empty => Vec::new(),
            Source::Posting { ids, i } if clean => ids[i..].to_vec(),
            Source::Posting { ids, i } => ids[i..]
                .iter()
                .copied()
                .filter(|&id| !cols.is_dead(id))
                .collect(),
            Source::Scan(mut s) => {
                let mut out: Vec<u32> = Vec::new();
                let mut take = |rows: &[u32]| {
                    if clean {
                        out.extend_from_slice(rows);
                    } else {
                        out.extend(rows.iter().copied().filter(|&id| !cols.is_dead(id)));
                    }
                };
                take(&s.matches[s.mi..]);
                while s.run < s.runs.len() {
                    take(s.runs[s.run].eq_rows(cols, s.pos, s.id));
                    s.run += 1;
                }
                out.extend(
                    (s.log_next..cols.len() as u32)
                        .filter(|&id| cols.id_at(id, s.pos) == s.id && !cols.is_dead(id)),
                );
                out
            }
            Source::Full { next } if clean => (next..cols.len() as u32).collect(),
            Source::Full { next } => (next..cols.len() as u32)
                .filter(|&id| !cols.is_dead(id))
                .collect(),
        }
    }

    /// Materialize each row id as a borrowed [`TripleRef`] view.
    pub fn refs(self) -> impl Iterator<Item = TripleRef<'a>> {
        let store = self.store;
        self.map(move |id| store.ref_of(id))
    }

    /// Materialize each row id as an owned [`Triple`] (refcount bumps
    /// on the dictionary buffers, no string copies).
    pub fn triples(self) -> impl Iterator<Item = Triple> + 'a {
        let store = self.store;
        self.map(move |id| store.triple_of(id))
    }
}

impl Iterator for RowCursor<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let cols = &self.store.cols;
        match &mut self.src {
            Source::Empty => None,
            Source::Posting { ids, i } => {
                while *i < ids.len() {
                    let id = ids[*i];
                    *i += 1;
                    if !cols.is_dead(id) {
                        return Some(id);
                    }
                }
                None
            }
            Source::Scan(s) => {
                loop {
                    // Drain the current run's match range.
                    while s.mi < s.matches.len() {
                        let id = s.matches[s.mi];
                        s.mi += 1;
                        if !cols.is_dead(id) {
                            return Some(id);
                        }
                    }
                    // Open the next run.
                    if s.run < s.runs.len() {
                        s.matches = s.runs[s.run].eq_rows(cols, s.pos, s.id);
                        s.mi = 0;
                        s.run += 1;
                        continue;
                    }
                    // Append log: linear column scan.
                    let end = cols.len() as u32;
                    while s.log_next < end {
                        let id = s.log_next;
                        s.log_next += 1;
                        if cols.id_at(id, s.pos) == s.id && !cols.is_dead(id) {
                            return Some(id);
                        }
                    }
                    return None;
                }
            }
            Source::Full { next } => {
                let end = cols.len() as u32;
                while *next < end {
                    let id = *next;
                    *next += 1;
                    if !cols.is_dead(id) {
                        return Some(id);
                    }
                }
                None
            }
        }
    }

    /// Specialized counting: tight per-source loops instead of the
    /// general `next()` state machine — counting a selection touches
    /// only row ids and tombstone bits, never a term. With no
    /// tombstones in the store, posting and run cardinalities are
    /// answered from lengths alone, O(1) per list.
    #[inline]
    fn count(self) -> usize {
        let cols = &self.store.cols;
        let clean = !cols.any_dead();
        match self.src {
            Source::Empty => 0,
            Source::Posting { ids, i } if clean => ids.len() - i,
            Source::Posting { ids, i } => ids[i..].iter().filter(|&&id| !cols.is_dead(id)).count(),
            Source::Scan(mut s) => {
                let live = |rows: &[u32]| {
                    if clean {
                        rows.len()
                    } else {
                        rows.iter().filter(|&&id| !cols.is_dead(id)).count()
                    }
                };
                let mut n = live(&s.matches[s.mi..]);
                while s.run < s.runs.len() {
                    n += live(s.runs[s.run].eq_rows(cols, s.pos, s.id));
                    s.run += 1;
                }
                n += (s.log_next..cols.len() as u32)
                    .filter(|&id| cols.id_at(id, s.pos) == s.id && !cols.is_dead(id))
                    .count();
                n
            }
            Source::Full { next } if clean => cols.len() - next as usize,
            Source::Full { next } => (next..cols.len() as u32)
                .filter(|&id| !cols.is_dead(id))
                .count(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // With no tombstones, posting and full sources yield every
        // remaining id — an exact hint, so `collect()` sizes once.
        let clean = !self.store.cols.any_dead();
        match &self.src {
            Source::Empty => (0, Some(0)),
            Source::Posting { ids, i } => {
                let rem = ids.len() - i;
                (if clean { rem } else { 0 }, Some(rem))
            }
            Source::Scan(_) => (0, Some(self.store.cols.len())),
            Source::Full { next } => {
                let remaining = self.store.cols.len() - *next as usize;
                (if clean { remaining } else { 0 }, Some(remaining))
            }
        }
    }
}
