//! Row cursors: lazy, allocation-free scans over the columnar store.
//!
//! A [`RowCursor`] yields *row ids* in ascending (insertion) order,
//! skipping tombstones, and defers all term materialization until the
//! consumer asks — [`RowCursor::refs`] for borrowed views,
//! [`RowCursor::triples`] for owned terms, or plain `count()` for
//! cardinalities, which touches no string at all. This is what the
//! seed's `Vec<&Triple>` selections deferred implicitly and what the
//! eager `Vec<TripleRef>` API paid for on every fat posting list.
//!
//! Three sources back a cursor:
//!
//! * **posting** — the probed term's posting rows: the CSR head slice
//!   plus the unsealed tail slice (point lookups:
//!   [`crate::TripleStore::select_eq_rows`]) — both ascending, the head
//!   strictly below the tail, so the concatenation is the ascending
//!   posting list;
//! * **zone-mapped scan** — the sorted runs pruned granule-by-granule
//!   via their zone maps, then the append log linearly
//!   ([`crate::TripleStore::scan_eq_rows`]) — the scan-analytics path
//!   that needs no posting list at all;
//! * **full** — every live row ([`crate::TripleStore::rows`]).
//!
//! Besides row-at-a-time iteration, a cursor drains in **granule
//! batches**: [`RowCursor::next_block`] refills a caller buffer with up
//! to [`crate::store::GRANULE`] live row ids per call — same ids, same
//! order as iteration, but with the per-item iterator state machine
//! amortized over the batch (tight slice loops per source). The
//! pattern-match pipeline and the batched term gather are built on it.

use super::runs::Run;
use super::{TripleRef, TripleStore, GRANULE};
use crate::dict::TermId;
use crate::triple::{Position, Triple};

/// A lazy iterator of live row ids (see the module docs).
pub struct RowCursor<'a> {
    store: &'a TripleStore,
    src: Source<'a>,
}

enum Source<'a> {
    Empty,
    /// Two ascending slices, every `head` id below every `tail` id:
    /// the CSR span plus the unsealed spill of one term's posting.
    Posting {
        head: &'a [u32],
        tail: &'a [u32],
        i: usize,
    },
    Scan(ScanState<'a>),
    Full {
        next: u32,
    },
}

/// Zone-mapped equality scan: runs first (each contributing its exact
/// match range, found under the zone map's pruned granules), then the
/// append log linearly. Runs partition the row-id space in order, so
/// the concatenation is globally ascending.
struct ScanState<'a> {
    pos: Position,
    id: TermId,
    runs: &'a [Run],
    /// Next run to open.
    run: usize,
    /// Current run's match range.
    matches: &'a [u32],
    mi: usize,
    /// Next append-log row to test.
    log_next: u32,
}

impl<'a> RowCursor<'a> {
    pub(super) fn empty(store: &'a TripleStore) -> RowCursor<'a> {
        RowCursor {
            store,
            src: Source::Empty,
        }
    }

    pub(super) fn posting(
        store: &'a TripleStore,
        head: &'a [u32],
        tail: &'a [u32],
    ) -> RowCursor<'a> {
        RowCursor {
            store,
            src: Source::Posting { head, tail, i: 0 },
        }
    }

    pub(super) fn scan_eq(store: &'a TripleStore, pos: Position, id: TermId) -> RowCursor<'a> {
        RowCursor {
            store,
            src: Source::Scan(ScanState {
                pos,
                id,
                runs: store.runs.runs(),
                run: 0,
                matches: &[],
                mi: 0,
                log_next: store.runs.sealed_end(),
            }),
        }
    }

    pub(super) fn full(store: &'a TripleStore) -> RowCursor<'a> {
        RowCursor {
            store,
            src: Source::Full { next: 0 },
        }
    }

    /// Collect the remaining row ids into a `Vec`, using tight
    /// per-source loops: a tombstone-free posting cursor is one
    /// `memcpy` per slice, a tombstone-free run scan one
    /// `extend_from_slice` per run — none of the per-item iterator
    /// state machine that a generic `collect()` pays.
    pub fn into_vec(self) -> Vec<u32> {
        let cols = &self.store.cols;
        let clean = !cols.any_dead();
        match self.src {
            Source::Empty => Vec::new(),
            Source::Posting { head, tail, i } => {
                let (h, t) = split_posting(head, tail, i);
                let mut out = Vec::with_capacity(h.len() + t.len());
                for part in [h, t] {
                    if clean {
                        out.extend_from_slice(part);
                    } else {
                        out.extend(part.iter().copied().filter(|&id| !cols.is_dead(id)));
                    }
                }
                out
            }
            Source::Scan(mut s) => {
                let mut out: Vec<u32> = Vec::new();
                let mut take = |rows: &[u32]| {
                    if clean {
                        out.extend_from_slice(rows);
                    } else {
                        out.extend(rows.iter().copied().filter(|&id| !cols.is_dead(id)));
                    }
                };
                take(&s.matches[s.mi..]);
                while s.run < s.runs.len() {
                    take(s.runs[s.run].eq_rows(s.pos, s.id));
                    s.run += 1;
                }
                out.extend(
                    (s.log_next..cols.len() as u32)
                        .filter(|&id| cols.id_at(id, s.pos) == s.id && !cols.is_dead(id)),
                );
                out
            }
            Source::Full { next } if clean => (next..cols.len() as u32).collect(),
            Source::Full { next } => (next..cols.len() as u32)
                .filter(|&id| !cols.is_dead(id))
                .collect(),
        }
    }

    /// Refill `out` with the next granule of live row ids — up to
    /// [`GRANULE`] of them, in exactly the order iteration would yield
    /// — returning `false` once the cursor is exhausted and `out` came
    /// back empty. The granule-at-a-time drain: consumers that filter
    /// or gather per batch ([`crate::store::PatternMatches`], the term
    /// gather) amortize the source dispatch over 256 rows.
    pub fn next_block(&mut self, out: &mut Vec<u32>) -> bool {
        out.clear();
        let cols = &self.store.cols;
        match &mut self.src {
            Source::Empty => {}
            Source::Posting { head, tail, i } => {
                while out.len() < GRANULE {
                    let (h, t) = split_posting(head, tail, *i);
                    let part = if !h.is_empty() { h } else { t };
                    if part.is_empty() {
                        break;
                    }
                    let want = (GRANULE - out.len()).min(part.len());
                    let chunk = &part[..want];
                    *i += want;
                    if cols.any_dead() {
                        out.extend(chunk.iter().copied().filter(|&id| !cols.is_dead(id)));
                    } else {
                        out.extend_from_slice(chunk);
                    }
                }
            }
            Source::Scan(s) => {
                while out.len() < GRANULE {
                    if s.mi < s.matches.len() {
                        let part = &s.matches[s.mi..];
                        let want = (GRANULE - out.len()).min(part.len());
                        s.mi += want;
                        if cols.any_dead() {
                            out.extend(
                                part[..want].iter().copied().filter(|&id| !cols.is_dead(id)),
                            );
                        } else {
                            out.extend_from_slice(&part[..want]);
                        }
                        continue;
                    }
                    if s.run < s.runs.len() {
                        s.matches = s.runs[s.run].eq_rows(s.pos, s.id);
                        s.mi = 0;
                        s.run += 1;
                        continue;
                    }
                    let end = cols.len() as u32;
                    while s.log_next < end && out.len() < GRANULE {
                        let id = s.log_next;
                        s.log_next += 1;
                        if cols.id_at(id, s.pos) == s.id && !cols.is_dead(id) {
                            out.push(id);
                        }
                    }
                    break;
                }
            }
            Source::Full { next } => {
                let end = cols.len() as u32;
                if cols.any_dead() {
                    while *next < end && out.len() < GRANULE {
                        let id = *next;
                        *next += 1;
                        if !cols.is_dead(id) {
                            out.push(id);
                        }
                    }
                } else {
                    let take = (end - *next).min(GRANULE as u32);
                    out.extend(*next..*next + take);
                    *next += take;
                }
            }
        }
        !out.is_empty()
    }

    /// Materialize each row id as a borrowed [`TripleRef`] view.
    pub fn refs(self) -> impl Iterator<Item = TripleRef<'a>> {
        let store = self.store;
        self.map(move |id| store.ref_of(id))
    }

    /// Materialize each row id as an owned [`Triple`] (refcount bumps
    /// on the dictionary buffers, no string copies).
    pub fn triples(self) -> impl Iterator<Item = Triple> + 'a {
        let store = self.store;
        self.map(move |id| store.triple_of(id))
    }

    /// Eagerly materialize every remaining row as an owned [`Triple`]
    /// via the batched dictionary gather: ids are drained with the
    /// tight [`RowCursor::into_vec`] loops, then resolved
    /// position-major a granule at a time
    /// (`TripleStore::gather_triples`) — the fast twin of
    /// `.triples().collect()`.
    pub fn triples_vec(self) -> Vec<Triple> {
        let store = self.store;
        let ids = self.into_vec();
        store.gather_triples(&ids)
    }

    /// Eagerly materialize every remaining row as a borrowed
    /// [`TripleRef`] via the batched position-major gather (the fast
    /// twin of `.refs().collect()`).
    pub fn refs_vec(self) -> Vec<TripleRef<'a>> {
        let store = self.store;
        let ids = self.into_vec();
        store.gather_refs(&ids)
    }
}

/// The unread remainders of a two-slice posting at concatenated
/// offset `i`.
#[inline]
fn split_posting<'a>(head: &'a [u32], tail: &'a [u32], i: usize) -> (&'a [u32], &'a [u32]) {
    if i < head.len() {
        (&head[i..], tail)
    } else {
        (&[], &tail[(i - head.len()).min(tail.len())..])
    }
}

impl Iterator for RowCursor<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let cols = &self.store.cols;
        match &mut self.src {
            Source::Empty => None,
            Source::Posting { head, tail, i } => loop {
                let n = head.len() + tail.len();
                if *i >= n {
                    return None;
                }
                let id = if *i < head.len() {
                    head[*i]
                } else {
                    tail[*i - head.len()]
                };
                *i += 1;
                if !cols.is_dead(id) {
                    return Some(id);
                }
            },
            Source::Scan(s) => {
                loop {
                    // Drain the current run's match range.
                    while s.mi < s.matches.len() {
                        let id = s.matches[s.mi];
                        s.mi += 1;
                        if !cols.is_dead(id) {
                            return Some(id);
                        }
                    }
                    // Open the next run.
                    if s.run < s.runs.len() {
                        s.matches = s.runs[s.run].eq_rows(s.pos, s.id);
                        s.mi = 0;
                        s.run += 1;
                        continue;
                    }
                    // Append log: linear column scan.
                    let end = cols.len() as u32;
                    while s.log_next < end {
                        let id = s.log_next;
                        s.log_next += 1;
                        if cols.id_at(id, s.pos) == s.id && !cols.is_dead(id) {
                            return Some(id);
                        }
                    }
                    return None;
                }
            }
            Source::Full { next } => {
                let end = cols.len() as u32;
                while *next < end {
                    let id = *next;
                    *next += 1;
                    if !cols.is_dead(id) {
                        return Some(id);
                    }
                }
                None
            }
        }
    }

    /// Specialized counting: tight per-source loops instead of the
    /// general `next()` state machine — counting a selection touches
    /// only row ids and tombstone bits, never a term. With no
    /// tombstones in the store, posting and run cardinalities are
    /// answered from lengths alone, O(1) per list.
    #[inline]
    fn count(self) -> usize {
        let cols = &self.store.cols;
        let clean = !cols.any_dead();
        match self.src {
            Source::Empty => 0,
            Source::Posting { head, tail, i } => {
                let (h, t) = split_posting(head, tail, i);
                if clean {
                    h.len() + t.len()
                } else {
                    h.iter().chain(t).filter(|&&id| !cols.is_dead(id)).count()
                }
            }
            Source::Scan(mut s) => {
                let live = |rows: &[u32]| {
                    if clean {
                        rows.len()
                    } else {
                        rows.iter().filter(|&&id| !cols.is_dead(id)).count()
                    }
                };
                let mut n = live(&s.matches[s.mi..]);
                while s.run < s.runs.len() {
                    n += live(s.runs[s.run].eq_rows(s.pos, s.id));
                    s.run += 1;
                }
                n += (s.log_next..cols.len() as u32)
                    .filter(|&id| cols.id_at(id, s.pos) == s.id && !cols.is_dead(id))
                    .count();
                n
            }
            Source::Full { next } if clean => cols.len() - next as usize,
            Source::Full { next } => (next..cols.len() as u32)
                .filter(|&id| !cols.is_dead(id))
                .count(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // With no tombstones, posting and full sources yield every
        // remaining id — an exact hint, so `collect()` sizes once.
        let clean = !self.store.cols.any_dead();
        match &self.src {
            Source::Empty => (0, Some(0)),
            Source::Posting { head, tail, i } => {
                let (h, t) = split_posting(head, tail, *i);
                let rem = h.len() + t.len();
                (if clean { rem } else { 0 }, Some(rem))
            }
            Source::Scan(_) => (0, Some(self.store.cols.len())),
            Source::Full { next } => {
                let remaining = self.store.cols.len() - *next as usize;
                (if clean { remaining } else { 0 }, Some(remaining))
            }
        }
    }
}
