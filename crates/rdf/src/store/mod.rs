//! The per-peer local triple database `DB_p`.
//!
//! "Each peer p maintains a local database DBp to store the triples it is
//! responsible for … the physical schemas of the local databases can all
//! be identical and consist of three attributes SDB = (subject,
//! predicate, object). The local databases support three standard
//! relational algebra operators: projection π, selection σ and (self)
//! join ⋈" (§2.2).
//!
//! ## Layout
//!
//! Every lexical value is interned through a hash-sharded [`TermDict`]
//! and a stored triple is a *row id* into three per-position `TermId`
//! columns (`columns.rs`). On top of the columns sit two independent
//! access structures, both rebuilt around the **seal boundary** — the
//! first row id not yet covered by a sorted run:
//!
//! * **CSR posting lists** — per position, term id → row ids, directly
//!   indexed by the dense id. Sealed rows live in one shared
//!   *offsets + data* pair (compressed sparse rows: `data` holds every
//!   posting of the position back to back, `offsets[t]..offsets[t+1]`
//!   is term `t`'s span), so the whole index is two flat arrays — no
//!   per-term allocation, and a probe touches sequential memory.
//!   Rows appended since the last seal spill into a small per-term
//!   *tail* (up to `INLINE_POSTING` ids inline in the entry).
//!   Each position additionally keeps a lazily built sorted key index
//!   (`BTreeMap<Arc<str>, TermId>`, sharing the dictionary's buffers)
//!   so `select_like` prefix patterns run as range scans;
//! * **zone-mapped sorted runs** (`runs.rs`) — the row-id space is an
//!   append log whose tail is periodically sealed into immutable runs:
//!   per position, a sorted permutation of row ids **plus a key
//!   projection** — the term id of each permutation entry, stored
//!   contiguously alongside it — with min/max zone maps per
//!   [`GRANULE`]-row granule. Runs back the scan-analytics path
//!   ([`TripleStore::scan_eq_rows`], [`TripleStore::count_where`]) and
//!   the sort-merge join ([`TripleStore::merge_join`]) and never touch
//!   a posting list.
//!
//! ```text
//!            row-id space ───────────────────────────────▶
//!            ┌─────────────── sealed ──────────────┬─ append log ─┐
//!  columns   │ s[..] p[..] o[..]  (TermId, row id) │   s p o      │
//!            └──────────────────────────────────────┴──────────────┘
//!  postings   CSR head (rebuilt at each seal)        per-term tail
//!             offsets: [0, 2, 2, 5, …]  ── term t ─┐  t → Inline[≤5]
//!             data:    [r0 r7 │ r1 r4 r9 │ …]  ◀───┘      or Heap
//!  runs       Run { perm:  [r1 r4 r9 r0 …]  (sorted by (key, row))
//!                   keys:  [ 3  3  3  8 …]  (projection of perm)
//!                   zones: [min..max per 256-row granule] }
//! ```
//!
//! Scans hand out [`RowCursor`]s (`cursor.rs`): lazy row-id iterators
//! that defer term materialization until the consumer asks, so
//! counting, ref collection and selection cost what the consumer
//! actually uses — and drain in [`GRANULE`]-row batches
//! ([`RowCursor::next_block`]) where a consumer filters or gathers
//! per block ([`PatternMatches`], `TripleStore::gather_triples`).
//! Selections and joins compare `u64` term codes; strings are
//! materialized only at the API boundary, position-major through the
//! batched dictionary gather.

mod columns;
mod cursor;
mod runs;

pub use cursor::RowCursor;

/// Rows per evaluation granule: the zone-map granule width and the
/// batch size of [`RowCursor::next_block`] / the pattern pipeline.
pub const GRANULE: usize = runs::BLOCK;

use crate::dict::{TermDict, TermId};
use crate::fasthash::FxHashSet;
use crate::join::{hash_join_rows, merge_rows, VarTable, UNBOUND};
use crate::term::{LikePattern, Term};
use crate::triple::{Binding, PatternTerm, Position, Triple, TriplePattern};
use columns::{Columns, Row};
use runs::{RunSet, SEAL_MIN};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::{Arc, OnceLock};

/// Row ids a tail posting entry holds before spilling to the heap.
const INLINE_POSTING: usize = 5;

/// One position's posting index, directly indexed by the dense
/// [`TermId`] — a probe is an array access, no hashing.
///
/// Split at the seal boundary (see the module diagram):
///
/// * the **CSR head** covers every row below `csr_end`: `data` is all
///   postings of the position concatenated in term order (each span
///   ascending by row id), `offsets[t]..offsets[t+1]` indexes term
///   `t`'s span. Two flat arrays for the whole position — a probe is
///   two sequential loads, and rebuilds are a counting pass, no
///   per-term allocation;
/// * the **tail** holds rows appended since the last rebuild, as small
///   per-term inline/heap lists. Cleared when the head is rebuilt.
///
/// A term's full posting list is `head(t) ++ tail(t)`: both ascending,
/// every head id below every tail id.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct PostingIndex {
    /// `offsets[t]..offsets[t+1]` is term `t`'s span in `data`.
    offsets: Vec<u32>,
    /// All sealed postings of the position, term-major, row-ascending.
    data: Vec<u32>,
    /// First row id NOT covered by the CSR head.
    csr_end: u32,
    /// Per-term spill for rows `>= csr_end`.
    tail: Vec<PostingList>,
}

impl PostingIndex {
    /// Term `t`'s sealed postings (rows `< csr_end`), ascending.
    #[inline]
    fn head(&self, t: usize) -> &[u32] {
        match self.offsets.get(t..t + 2) {
            Some(w) => &self.data[w[0] as usize..w[1] as usize],
            None => &[],
        }
    }

    /// Term `t`'s unsealed postings (rows `>= csr_end`), ascending.
    #[inline]
    fn tail_of(&self, t: usize) -> &[u32] {
        self.tail.get(t).map(PostingList::as_slice).unwrap_or(&[])
    }

    /// Term `t`'s full posting list as its two ascending halves.
    #[inline]
    fn parts(&self, t: usize) -> (&[u32], &[u32]) {
        (self.head(t), self.tail_of(t))
    }

    /// Whether term `t` has no posting at this position.
    #[inline]
    fn is_empty_term(&self, t: usize) -> bool {
        self.head(t).is_empty() && self.tail_of(t).is_empty()
    }

    /// One past the largest term index that may have a posting.
    fn num_terms(&self) -> usize {
        self.offsets.len().saturating_sub(1).max(self.tail.len())
    }

    /// Append a row id (`row >= csr_end`) to term `t`'s tail.
    #[inline]
    fn push(&mut self, term: TermId, row: u32) {
        if self.tail.len() <= term.index() {
            self.tail
                .resize_with(term.index() + 1, PostingList::default);
        }
        self.tail[term.index()].push(row);
    }

    /// Rebuild the CSR head to cover all of `col` (one counting pass:
    /// count, prefix-sum, fill) and clear the tail. `bound` is the
    /// dictionary's exclusive id-index bound.
    fn rebuild(&mut self, col: &[TermId], bound: usize) {
        self.offsets.clear();
        self.offsets.resize(bound + 1, 0);
        for id in col {
            self.offsets[id.index() + 1] += 1;
        }
        for i in 1..self.offsets.len() {
            self.offsets[i] += self.offsets[i - 1];
        }
        self.data.clear();
        self.data.resize(col.len(), 0);
        for (row, id) in col.iter().enumerate() {
            let slot = &mut self.offsets[id.index()];
            self.data[*slot as usize] = row as u32;
            *slot += 1;
        }
        // Each offsets[t] advanced to end(t) == start(t+1); rotate the
        // starts back into place.
        self.offsets.rotate_right(1);
        self.offsets[0] = 0;
        self.csr_end = col.len() as u32;
        self.tail.clear();
    }
}

/// One term's posting list, with small-list inlining: up to
/// [`INLINE_POSTING`] row ids live inside the index entry itself, so
/// probing a selective term (most subjects and objects have a handful
/// of rows) is **one** array access — no second pointer chase, and no
/// per-term heap allocation at ingest. Fat lists (predicates, hot
/// objects) spill to a heap `Vec` once.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum PostingList {
    Inline {
        len: u8,
        rows: [u32; INLINE_POSTING],
    },
    Heap(Vec<u32>),
}

impl Default for PostingList {
    fn default() -> PostingList {
        PostingList::Inline {
            len: 0,
            rows: [0; INLINE_POSTING],
        }
    }
}

impl PostingList {
    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self {
            PostingList::Inline { len, rows } => &rows[..*len as usize],
            PostingList::Heap(v) => v,
        }
    }

    #[inline]
    fn push(&mut self, row: u32) {
        match self {
            PostingList::Inline { len, rows } => {
                if (*len as usize) < INLINE_POSTING {
                    rows[*len as usize] = row;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_POSTING * 4);
                    v.extend_from_slice(&rows[..]);
                    v.push(row);
                    *self = PostingList::Heap(v);
                }
            }
            PostingList::Heap(v) => v.push(row),
        }
    }
}

/// Append a row id to a position's posting tail. When the term is new
/// to the position, the position's lazily-built sorted key index is
/// invalidated (inserting rows over known terms leaves it valid — the
/// index maps *terms*, not rows).
fn index_insert(
    posting: &mut PostingIndex,
    sorted: &mut OnceLock<BTreeMap<Arc<str>, TermId>>,
    term: TermId,
    row: u32,
) {
    if posting.is_empty_term(term.index()) {
        sorted.take();
    }
    posting.push(term, row);
}

/// A borrowed view of one stored triple: the zero-materialization
/// counterpart of [`TripleStore::select_eq`] for callers that only need
/// to look, not own (scans, counting, profile building).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleRef<'a> {
    pub subject: &'a str,
    pub predicate: &'a str,
    pub object: &'a str,
    pub object_is_literal: bool,
}

/// A local triple database with interned terms, (s, p, o) posting
/// indexes and zone-mapped sorted runs (see the module docs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TripleStore {
    dict: TermDict,
    /// The columnar row storage (including tombstone bits).
    cols: Columns,
    /// Sorted-run structure over the row-id space. A derived
    /// accelerator: serde-skipped and rebuilt by sealing as the store
    /// ingests.
    #[serde(skip)]
    runs: RunSet,
    /// Posting lists: term id at a position → row ids. Deleted rows
    /// leave tombstones in the columns to keep row ids stable.
    by_subject: PostingIndex,
    by_predicate: PostingIndex,
    by_object: PostingIndex,
    /// Sorted key index per position: lexical → id, over the terms that
    /// ever appeared in that position. Backs prefix range scans. Built
    /// lazily on first use (bulk-sorted, which is far cheaper than
    /// per-insert tree maintenance) and kept until the position sees a
    /// new term.
    #[serde(skip)]
    sorted_subject: OnceLock<BTreeMap<Arc<str>, TermId>>,
    #[serde(skip)]
    sorted_predicate: OnceLock<BTreeMap<Arc<str>, TermId>>,
    #[serde(skip)]
    sorted_object: OnceLock<BTreeMap<Arc<str>, TermId>>,
    /// Live rows as a set: O(1) idempotence checks on insert regardless
    /// of how many rows share a subject.
    dedup: FxHashSet<Row>,
    live: usize,
}

impl TripleStore {
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Number of live triples.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The term dictionary (diagnostics / size accounting).
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    fn index(&self, pos: Position) -> &PostingIndex {
        match pos {
            Position::Subject => &self.by_subject,
            Position::Predicate => &self.by_predicate,
            Position::Object => &self.by_object,
        }
    }

    /// The position's sorted key index, building it on first use: one
    /// bulk sort of the distinct terms, then a sorted-range bulk load.
    fn sorted(&self, pos: Position) -> &BTreeMap<Arc<str>, TermId> {
        let cell = match pos {
            Position::Subject => &self.sorted_subject,
            Position::Predicate => &self.sorted_predicate,
            Position::Object => &self.sorted_object,
        };
        cell.get_or_init(|| {
            let index = self.index(pos);
            let mut pairs: Vec<(Arc<str>, TermId)> = (0..index.num_terms())
                .filter(|&i| !index.is_empty_term(i))
                .map(|i| (self.dict.shared(TermId(i as u32)), TermId(i as u32)))
                .collect();
            pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            BTreeMap::from_iter(pairs)
        })
    }

    /// Insert a triple; duplicates are ignored (idempotent, like the
    /// overlay store — replica synchronization re-delivers freely).
    /// Returns whether the triple was new.
    pub fn insert(&mut self, t: Triple) -> bool {
        let s = self.dict.intern_shared(t.subject.shared());
        let p = self.dict.intern_shared(t.predicate.shared());
        let o = self.dict.intern_shared(t.object.shared_lexical());
        let row = Row {
            s,
            p,
            o,
            o_lit: t.object.is_literal(),
        };
        if !self.dedup.insert(row) {
            return false;
        }
        let id = self.cols.len() as u32;
        index_insert(&mut self.by_subject, &mut self.sorted_subject, s, id);
        index_insert(&mut self.by_predicate, &mut self.sorted_predicate, p, id);
        index_insert(&mut self.by_object, &mut self.sorted_object, o, id);
        self.cols.push(row);
        self.live += 1;
        self.sync_runs_and_postings();
        true
    }

    /// Seal the append log into a run when it is due, and keep the CSR
    /// posting heads in lockstep with the seal boundary: whenever the
    /// boundary moves, the heads are rebuilt over the whole row space
    /// (one counting pass per position, position-parallel on multicore
    /// hosts) and the tails emptied.
    fn sync_runs_and_postings(&mut self) {
        let before = self.runs.sealed_end();
        self.runs.note_appended(&self.cols, self.dict.id_bound());
        if self.runs.sealed_end() != before {
            self.rebuild_posting_csr();
        }
    }

    /// Rebuild all three CSR posting heads from the columns.
    fn rebuild_posting_csr(&mut self) {
        let bound = self.dict.id_bound();
        let TripleStore {
            cols,
            by_subject,
            by_predicate,
            by_object,
            ..
        } = self;
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 2 && cols.len() >= 16_384 {
            std::thread::scope(|sc| {
                sc.spawn(|| by_subject.rebuild(&cols.s, bound));
                sc.spawn(|| by_predicate.rebuild(&cols.p, bound));
                by_object.rebuild(&cols.o, bound);
            });
        } else {
            by_subject.rebuild(&cols.s, bound);
            by_predicate.rebuild(&cols.p, bound);
            by_object.rebuild(&cols.o, bound);
        }
    }

    /// Bulk insert with the same idempotence semantics as repeated
    /// [`TripleStore::insert`], returning how many triples were new.
    ///
    /// The batch path pre-sizes the dedup set and the columns, interns
    /// the whole batch through the sharded dictionary — one scoped
    /// thread per shard for large batches ([`TermDict::intern_shared_batch`])
    /// — and fills the posting lists position-parallel, eliminating the
    /// per-row growth and reallocation work that dominates one-at-a-time
    /// ingest. Newly appended rows are sealed into sorted runs on the
    /// way out (size-tiered, see `runs.rs`).
    pub fn insert_batch(&mut self, triples: impl IntoIterator<Item = Triple>) -> usize {
        let triples = triples.into_iter();
        let hint = triples.size_hint().0;
        // The dictionary is deliberately NOT pre-reserved: the distinct
        // term count is usually a small fraction of the batch, and an
        // oversized table costs more in probe cache misses than growth
        // rehashes do (geometric growth moves ~1 slot per final entry).
        self.dedup.reserve(hint);
        self.cols.reserve(hint);

        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let first_new = self.cols.len();
        if cores >= 2 && hint >= 16_384 {
            self.encode_batch_parallel(triples.collect());
        } else {
            self.encode_batch_memoized(triples);
        }
        let added = self.cols.len() - first_new;
        self.live += added;

        // Posting lists: when the batch leaves the log under the seal
        // threshold, one tail-fill pass per position (the three
        // positions are independent; large batches fill them on scoped
        // threads). When a seal is due, skip the fill entirely — the
        // CSR rebuild right after sealing indexes the new rows anyway.
        let will_seal = self.cols.len() as u32 - self.runs.sealed_end() >= SEAL_MIN as u32;
        if !will_seal {
            let fill = |index: &mut PostingIndex, ids: &[TermId]| {
                for (offset, tid) in ids.iter().enumerate() {
                    index.push(*tid, (first_new + offset) as u32);
                }
            };
            let (s_col, p_col, o_col) = (
                &self.cols.s[first_new..],
                &self.cols.p[first_new..],
                &self.cols.o[first_new..],
            );
            if cores >= 2 && added >= 16_384 {
                std::thread::scope(|s| {
                    s.spawn(|| fill(&mut self.by_subject, s_col));
                    s.spawn(|| fill(&mut self.by_predicate, p_col));
                    fill(&mut self.by_object, o_col);
                });
            } else {
                fill(&mut self.by_subject, s_col);
                fill(&mut self.by_predicate, p_col);
                fill(&mut self.by_object, o_col);
            }
        }
        // Conservative invalidation: the batch likely introduced new
        // terms somewhere; rebuilding the lazy sorted indexes costs one
        // bulk sort on next use.
        self.sorted_subject.take();
        self.sorted_predicate.take();
        self.sorted_object.take();
        self.sync_runs_and_postings();
        added
    }

    /// Sequential encode+dedup for small batches. Bulk feeds are
    /// typically grouped by subject (an entity's facts travel together),
    /// so a one-entry subject memo and a short rotating predicate memo
    /// turn most interns into cache-hot string compares.
    fn encode_batch_memoized(&mut self, triples: impl Iterator<Item = Triple>) {
        let mut last_subject: Option<(Arc<str>, TermId)> = None;
        let mut pred_memo: Vec<(Arc<str>, TermId)> = Vec::with_capacity(4);
        for t in triples {
            let s = match &last_subject {
                Some((memo, id)) if **memo == *t.subject.as_str() => *id,
                _ => {
                    let id = self.dict.intern_shared(t.subject.shared());
                    last_subject = Some((Arc::clone(t.subject.shared()), id));
                    id
                }
            };
            let p = match pred_memo
                .iter()
                .find(|(memo, _)| **memo == *t.predicate.as_str())
            {
                Some(&(_, id)) => id,
                None => {
                    let id = self.dict.intern_shared(t.predicate.shared());
                    if pred_memo.len() == 4 {
                        pred_memo.remove(0);
                    }
                    pred_memo.push((Arc::clone(t.predicate.shared()), id));
                    id
                }
            };
            let row = Row {
                s,
                p,
                o: self.dict.intern_shared(t.object.shared_lexical()),
                o_lit: t.object.is_literal(),
            };
            if self.dedup.insert(row) {
                self.cols.push(row);
            }
        }
    }

    /// Large-batch encode+dedup: hash every lexical once, intern
    /// shard-parallel, then run the sequential dedup/append pass over
    /// pre-computed ids.
    fn encode_batch_parallel(&mut self, triples: Vec<Triple>) {
        let lexicals: Vec<&Arc<str>> = triples
            .iter()
            .flat_map(|t| {
                [
                    t.subject.shared(),
                    t.predicate.shared(),
                    t.object.shared_lexical(),
                ]
            })
            .collect();
        let ids = self.dict.intern_shared_batch(&lexicals);
        for (i, t) in triples.iter().enumerate() {
            let row = Row {
                s: ids[3 * i],
                p: ids[3 * i + 1],
                o: ids[3 * i + 2],
                o_lit: t.object.is_literal(),
            };
            if self.dedup.insert(row) {
                self.cols.push(row);
            }
        }
    }

    /// Remove a triple; returns whether it was present. The row is
    /// tombstoned in place (row ids stay stable for every index, run
    /// and cursor); [`TripleStore::compact`] reclaims the space.
    pub fn remove(&mut self, t: &Triple) -> bool {
        let Some(row) = self.encode(t) else {
            return false;
        };
        if !self.dedup.remove(&row) {
            return false;
        }
        let id = self.find_row(&row).expect("dedup set and rows agree");
        self.cols.kill(id);
        self.live -= 1;
        true
    }

    pub fn contains(&self, t: &Triple) -> bool {
        self.encode(t)
            .map(|row| self.dedup.contains(&row))
            .unwrap_or(false)
    }

    /// Id-encode a caller triple; `None` if any component was never
    /// interned (then the triple cannot be present).
    fn encode(&self, t: &Triple) -> Option<Row> {
        Some(Row {
            s: self.dict.lookup(t.subject.as_str())?,
            p: self.dict.lookup(t.predicate.as_str())?,
            o: self.dict.lookup(t.object.lexical())?,
            o_lit: t.object.is_literal(),
        })
    }

    fn find_row(&self, row: &Row) -> Option<u32> {
        let (head, tail) = self.by_subject.parts(row.s.index());
        head.iter()
            .chain(tail)
            .copied()
            .find(|&id| !self.cols.is_dead(id) && self.cols.row(id) == *row)
    }

    /// Materialize one stored row: three refcount bumps on the
    /// dictionary's buffers, no string copies.
    fn materialize(&self, row: &Row) -> Triple {
        let object = if row.o_lit {
            Term::literal(self.dict.shared(row.o))
        } else {
            Term::uri(self.dict.shared(row.o))
        };
        Triple::new(self.dict.shared(row.s), self.dict.shared(row.p), object)
    }

    fn materialize_ids(&self, ids: Vec<u32>) -> Vec<Triple> {
        self.gather_triples(&ids)
    }

    /// Materialize a batch of row ids as owned triples through the
    /// batched dictionary gather: per [`GRANULE`]-sized chunk, each id
    /// column is gathered and resolved **position-major** in one run
    /// ([`TermDict::shared_many`]) before the triples are zipped
    /// together — three sequential resolve sweeps instead of three
    /// interleaved pointer chases per row.
    pub(crate) fn gather_triples(&self, ids: &[u32]) -> Vec<Triple> {
        let mut out = Vec::with_capacity(ids.len());
        let mut tids: Vec<TermId> = Vec::with_capacity(GRANULE);
        let mut s_lex: Vec<Arc<str>> = Vec::with_capacity(GRANULE);
        let mut p_lex: Vec<Arc<str>> = Vec::with_capacity(GRANULE);
        let mut o_lex: Vec<Arc<str>> = Vec::with_capacity(GRANULE);
        for chunk in ids.chunks(GRANULE) {
            for (pos, lex) in [
                (Position::Subject, &mut s_lex),
                (Position::Predicate, &mut p_lex),
                (Position::Object, &mut o_lex),
            ] {
                tids.clear();
                tids.extend(chunk.iter().map(|&r| self.cols.id_at(r, pos)));
                self.dict.shared_many(&tids, lex);
            }
            for (((s, p), o), &r) in s_lex
                .drain(..)
                .zip(p_lex.drain(..))
                .zip(o_lex.drain(..))
                .zip(chunk)
            {
                let object = if self.cols.o_lit_at(r) {
                    Term::literal(o)
                } else {
                    Term::uri(o)
                };
                out.push(Triple::new(s, p, object));
            }
        }
        out
    }

    /// Materialize a batch of row ids as borrowed views through the
    /// position-major batched gather (the `&str` twin of
    /// [`TripleStore::gather_triples`]).
    pub(crate) fn gather_refs(&self, ids: &[u32]) -> Vec<TripleRef<'_>> {
        let mut out = Vec::with_capacity(ids.len());
        let mut tids: Vec<TermId> = Vec::with_capacity(GRANULE);
        let mut s_lex: Vec<&str> = Vec::with_capacity(GRANULE);
        let mut p_lex: Vec<&str> = Vec::with_capacity(GRANULE);
        let mut o_lex: Vec<&str> = Vec::with_capacity(GRANULE);
        for chunk in ids.chunks(GRANULE) {
            for (pos, lex) in [
                (Position::Subject, &mut s_lex),
                (Position::Predicate, &mut p_lex),
                (Position::Object, &mut o_lex),
            ] {
                tids.clear();
                tids.extend(chunk.iter().map(|&r| self.cols.id_at(r, pos)));
                self.dict.resolve_many(&tids, lex);
            }
            for (k, &r) in chunk.iter().enumerate() {
                out.push(TripleRef {
                    subject: s_lex[k],
                    predicate: p_lex[k],
                    object: o_lex[k],
                    object_is_literal: self.cols.o_lit_at(r),
                });
            }
        }
        out
    }

    fn row_ref(&self, row: &Row) -> TripleRef<'_> {
        TripleRef {
            subject: self.dict.resolve(row.s),
            predicate: self.dict.resolve(row.p),
            object: self.dict.resolve(row.o),
            object_is_literal: row.o_lit,
        }
    }

    /// Borrowed view of a row id.
    pub(crate) fn ref_of(&self, id: u32) -> TripleRef<'_> {
        self.row_ref(&self.cols.row(id))
    }

    /// The lexical at one position of a stored row id (as handed out by
    /// a [`RowCursor`]): one column load plus one dictionary resolve —
    /// the columnar accessor for scans that touch a single position.
    ///
    /// # Panics
    /// Panics if `row` is not a row id of this store.
    pub fn term_at(&self, row: u32, pos: Position) -> &str {
        self.dict.resolve(self.cols.id_at(row, pos))
    }

    /// Owned triple of a row id.
    pub(crate) fn triple_of(&self, id: u32) -> Triple {
        self.materialize(&self.cols.row(id))
    }

    // -----------------------------------------------------------------
    // Cursors
    // -----------------------------------------------------------------

    /// Cursor over every live row (ascending row id).
    pub fn rows(&self) -> RowCursor<'_> {
        RowCursor::full(self)
    }

    /// σ as a cursor: live rows whose `pos` equals `value`, via the
    /// posting list — one dictionary probe, then lazy iteration with no
    /// allocation and no term materialization until the consumer asks
    /// ([`RowCursor::refs`] / [`RowCursor::triples`]). The point-lookup
    /// twin of [`TripleStore::scan_eq_rows`].
    #[inline]
    pub fn select_eq_rows(&self, pos: Position, value: &str) -> RowCursor<'_> {
        match self.dict.lookup(value) {
            Some(id) => {
                let (head, tail) = self.posting_parts(pos, id);
                RowCursor::posting(self, head, tail)
            }
            None => RowCursor::empty(self),
        }
    }

    /// σ as a columnar scan cursor: live rows whose `pos` equals
    /// `value`, served by the zone-mapped sorted runs (granule pruning
    /// plus in-run equal ranges) and a linear pass over the append log,
    /// with no posting list involved. Same rows, same order as
    /// [`TripleStore::select_eq_rows`]; this is the access path for
    /// scan-analytics consumers and the one the zone maps accelerate.
    pub fn scan_eq_rows(&self, pos: Position, value: &str) -> RowCursor<'_> {
        match self.dict.lookup(value) {
            Some(id) => RowCursor::scan_eq(self, pos, id),
            None => RowCursor::empty(self),
        }
    }

    /// Count live rows whose `pos` term satisfies `pred`, evaluating
    /// the predicate **once per distinct term** instead of once per
    /// row: sealed runs walk their sorted key projections group by
    /// group — a matching group's width is credited in O(1) when the
    /// store has no tombstones — and the append log memoizes the last
    /// id it tested. Equivalent to
    /// `rows().filter(|&r| pred(term_at(r, pos))).count()`, at the cost
    /// of one dictionary resolve per *distinct* run-local term.
    pub fn count_where(&self, pos: Position, mut pred: impl FnMut(&str) -> bool) -> usize {
        let cols = &self.cols;
        let clean = !cols.any_dead();
        let mut n = 0usize;
        for run in self.runs.runs() {
            run.for_each_group(pos, |id, rows| {
                if pred(self.dict.resolve(id)) {
                    n += if clean {
                        rows.len()
                    } else {
                        rows.iter().filter(|&&r| !cols.is_dead(r)).count()
                    };
                }
            });
        }
        let mut memo: Option<(TermId, bool)> = None;
        for r in self.runs.sealed_end()..cols.len() as u32 {
            let id = cols.id_at(r, pos);
            let pass = match memo {
                Some((m, p)) if m == id => p,
                _ => {
                    let p = pred(self.dict.resolve(id));
                    memo = Some((id, p));
                    p
                }
            };
            if pass && !cols.is_dead(r) {
                n += 1;
            }
        }
        n
    }

    /// Iterate over live triples (materialized on the fly).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.rows().triples()
    }

    /// Iterate over live triples as borrowed views (no materialization).
    pub fn iter_refs(&self) -> impl Iterator<Item = TripleRef<'_>> + '_ {
        self.rows().refs()
    }

    /// Live row ids whose `pos` equals the interned `id`.
    fn posting(&self, pos: Position, id: TermId) -> impl Iterator<Item = u32> + '_ {
        let (head, tail) = self.posting_parts(pos, id);
        head.iter()
            .chain(tail)
            .copied()
            .filter(|&id| !self.cols.is_dead(id))
    }

    /// The raw posting list of a term in a position (may contain
    /// tombstoned row ids), as its CSR-head and tail halves — both
    /// ascending, every head id below every tail id.
    #[inline]
    fn posting_parts(&self, pos: Position, id: TermId) -> (&[u32], &[u32]) {
        self.index(pos).parts(id.index())
    }

    /// σ: all triples whose `pos` equals `value` exactly. One dictionary
    /// probe + one posting-list walk, materialized through the batched
    /// position-major gather; a never-seen value costs a single hash and
    /// no allocation.
    pub fn select_eq(&self, pos: Position, value: &str) -> Vec<Triple> {
        self.select_eq_rows(pos, value).triples_vec()
    }

    /// σ as eagerly collected borrowed views. Prefer
    /// [`TripleStore::select_eq_rows`] where the consumer can iterate —
    /// it defers materialization entirely; this remains for callers
    /// that want a ready `Vec`.
    pub fn select_eq_refs(&self, pos: Position, value: &str) -> Vec<TripleRef<'_>> {
        self.select_eq_rows(pos, value).refs_vec()
    }

    /// Live row ids for every term in `pos` whose lexical starts with
    /// `prefix` — a range scan of the sorted key index.
    fn prefix_row_ids(&self, pos: Position, prefix: &str) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .sorted(pos)
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .flat_map(|(_, &tid)| self.posting(pos, tid))
            .collect();
        ids.sort_unstable(); // insertion order, like a scan would yield
        ids
    }

    /// σ with a `%`-wildcard LIKE predicate. Exact patterns use the hash
    /// index; `abc%` prefixes range-scan the sorted key index; suffix /
    /// contains patterns scan the *distinct terms* of the position (not
    /// the rows) and expand matching posting lists.
    pub fn select_like(&self, pos: Position, pattern: &str) -> Vec<Triple> {
        match LikePattern::parse(pattern) {
            LikePattern::Exact(_) => self.select_eq(pos, pattern),
            LikePattern::Prefix(core) => self.materialize_ids(self.prefix_row_ids(pos, core)),
            like => {
                let mut ids: Vec<u32> = self
                    .sorted(pos)
                    .iter()
                    .filter(|(k, _)| like.matches(k))
                    .flat_map(|(_, &tid)| self.posting(pos, tid))
                    .collect();
                ids.sort_unstable();
                self.materialize_ids(ids)
            }
        }
    }

    /// Row ids (ascending, possibly tombstoned) satisfying **all** of
    /// the exact constraints at once: per sealed run, each constraint's
    /// zone-pruned exact match range is read off the run's sorted
    /// permutation and the ranges are intersected across positions; the
    /// append log is covered by intersecting the constraints' posting
    /// tails. Candidate rows are touched only if every per-position
    /// structure admits them — the multi-constant twin of a single
    /// posting probe.
    fn multi_eq_row_ids(&self, constraints: &[(Position, TermId)]) -> Vec<u32> {
        debug_assert!(constraints.len() >= 2);
        /// One constraint's candidate rows as two ascending slices,
        /// every `a` id below every `b` id (a posting's CSR head and
        /// tail halves; run ranges use `a` alone).
        struct IdSet<'a> {
            a: &'a [u32],
            b: &'a [u32],
        }
        impl IdSet<'_> {
            fn len(&self) -> usize {
                self.a.len() + self.b.len()
            }
            fn contains(&self, row: u32) -> bool {
                self.a.binary_search(&row).is_ok() || self.b.binary_search(&row).is_ok()
            }
        }
        fn intersect_into(out: &mut Vec<u32>, sets: &mut [IdSet<'_>]) {
            // Walk the smallest candidate set, membership-test the rest.
            sets.sort_by_key(IdSet::len);
            let (first, rest) = sets.split_first().expect("non-empty");
            'next: for &row in first.a.iter().chain(first.b) {
                for s in rest.iter() {
                    if !s.contains(row) {
                        continue 'next;
                    }
                }
                out.push(row);
            }
        }
        let mut out: Vec<u32> = Vec::new();
        for run in self.runs.runs() {
            let mut sets: Vec<IdSet<'_>> = constraints
                .iter()
                .map(|&(pos, id)| IdSet {
                    a: run.eq_rows(pos, id),
                    b: &[],
                })
                .collect();
            intersect_into(&mut out, &mut sets);
        }
        let sealed = self.runs.sealed_end();
        let mut sets: Vec<IdSet<'_>> = constraints
            .iter()
            .map(|&(pos, id)| {
                // Postings are ascending; the unsealed remainder starts
                // at the first row id past the seal boundary (tails are
                // entirely unsealed except right after a deserialize,
                // when the CSR head covers rows no run does yet).
                let (head, tail) = self.posting_parts(pos, id);
                IdSet {
                    a: &head[head.partition_point(|&r| r < sealed)..],
                    b: &tail[tail.partition_point(|&r| r < sealed)..],
                }
            })
            .collect();
        intersect_into(&mut out, &mut sets);
        out
    }

    /// Streaming σ over a pattern: lazily yield matching live row ids in
    /// insertion order. Picks the most selective access path — the
    /// intersection of every exact constant's zone-pruned run ranges and
    /// posting tails when the pattern carries several, else the single
    /// posting list, else a wildcard prefix range scan, else a full scan
    /// — and applies the residual predicate (remaining constants,
    /// `LIKE`s, repeated variables) per row as the consumer pulls.
    pub fn pattern_matches<'a>(&'a self, pattern: &'a TriplePattern) -> PatternMatches<'a> {
        // Compile the constant slots to id-level checks. A constant the
        // dictionary has never seen cannot match any row.
        let mut exact: Vec<(Position, u64)> = Vec::new();
        let mut likes: Vec<(Position, LikePattern<'a>)> = Vec::new();
        for (pos, term) in pattern.constants() {
            match term {
                Term::Literal(p) if p.contains('%') => {
                    likes.push((pos, LikePattern::parse(p)));
                }
                _ => match self.dict.lookup(term.lexical()) {
                    Some(id) => {
                        let lit = term.is_literal();
                        exact.push((pos, ((id.0 as u64) << 1) | lit as u64));
                    }
                    None => return PatternMatches::empty(self),
                },
            }
        }

        // Access path.
        let src: MatchSource<'a> = if exact.len() >= 2 {
            let constraints: Vec<(Position, TermId)> = exact
                .iter()
                .map(|&(pos, code)| (pos, TermId((code >> 1) as u32)))
                .collect();
            MatchSource::Materialized(self.multi_eq_row_ids(&constraints), 0)
        } else if let Some(&(pos, code)) = exact.first() {
            let (head, tail) = self.posting_parts(pos, TermId((code >> 1) as u32));
            MatchSource::Cursor(RowCursor::posting(self, head, tail))
        } else if let Some((pos, like)) = likes
            .iter()
            .find(|(_, l)| matches!(l, LikePattern::Prefix(c) if !c.is_empty()))
            .copied()
        {
            MatchSource::Materialized(self.prefix_row_ids(pos, like.core()), 0)
        } else {
            MatchSource::Cursor(self.rows())
        };

        // Residual predicate: remaining constants + repeated variables.
        let vars: Vec<(Position, &'a str)> = Position::ALL
            .iter()
            .filter_map(|&pos| match pattern.slot(pos) {
                PatternTerm::Var(v) => Some((pos, v.as_str())),
                PatternTerm::Const(_) => None,
            })
            .collect();
        PatternMatches {
            store: self,
            src,
            exact,
            likes,
            vars,
            buf: Vec::new(),
            bi: 0,
        }
    }

    /// Matching rows as term-code rows over `vars`, streamed lazily (the
    /// hash-join input format of [`crate::join`]): one row is encoded
    /// per pull, so a consumer that stops early — or probes a hash table
    /// as it goes — never materializes the full match set.
    pub fn match_codes_iter<'a>(
        &'a self,
        pattern: &'a TriplePattern,
        vars: &VarTable,
    ) -> impl Iterator<Item = Vec<u64>> + 'a {
        let slots: Vec<(Position, usize)> = Position::ALL
            .iter()
            .filter_map(|&pos| match pattern.slot(pos) {
                PatternTerm::Var(v) => Some((pos, vars.slot(v).expect("pattern var registered"))),
                PatternTerm::Const(_) => None,
            })
            .collect();
        let width = vars.len();
        self.pattern_matches(pattern).map(move |id| {
            let row = self.cols.row(id);
            let mut out = vec![UNBOUND; width];
            for &(pos, slot) in &slots {
                out[slot] = row.code_at(pos);
            }
            out
        })
    }

    /// Matching rows as term-code rows over `vars` (eagerly collected;
    /// see [`TripleStore::match_codes_iter`] for the streaming form).
    pub(crate) fn match_codes(&self, pattern: &TriplePattern, vars: &VarTable) -> Vec<Vec<u64>> {
        self.match_codes_iter(pattern, vars).collect()
    }

    /// Stream matching rows as term-code rows over `vars` through one
    /// reused scratch row — the allocation-free twin of
    /// [`TripleStore::match_codes_iter`] for consumers that probe or
    /// copy per row (e.g. [`crate::ConjunctiveQuery::evaluate`]'s
    /// hash-join probe loop). The slice handed to `f` is valid only for
    /// the duration of the call; slots the pattern does not bind stay
    /// [`UNBOUND`], bound slots are overwritten on every match.
    pub fn for_each_match_row(
        &self,
        pattern: &TriplePattern,
        vars: &VarTable,
        mut f: impl FnMut(&[u64]),
    ) {
        let slots: Vec<(Position, usize)> = Position::ALL
            .iter()
            .filter_map(|&pos| match pattern.slot(pos) {
                PatternTerm::Var(v) => Some((pos, vars.slot(v).expect("pattern var registered"))),
                PatternTerm::Const(_) => None,
            })
            .collect();
        let mut row = vec![UNBOUND; vars.len()];
        for id in self.pattern_matches(pattern) {
            for &(pos, slot) in &slots {
                row[slot] = self.cols.code_at(id, pos);
            }
            f(&row);
        }
    }

    /// Decode a term code produced by this store's rows (zero-copy).
    pub(crate) fn term_of_code(&self, code: u64) -> Term {
        debug_assert_ne!(code, UNBOUND);
        let lex = self.dict.shared(TermId((code >> 1) as u32));
        if code & 1 == 1 {
            Term::literal(lex)
        } else {
            Term::uri(lex)
        }
    }

    pub(crate) fn decode_row(&self, row: &[u64], vars: &VarTable) -> Binding {
        let mut b = Binding::new();
        for (slot, &code) in row.iter().enumerate() {
            if code != UNBOUND {
                b.bind(vars.names()[slot].to_string(), self.term_of_code(code));
            }
        }
        b
    }

    /// Evaluate a triple pattern against the local database, streaming
    /// one [`Binding`] per matching triple: rows come out of
    /// [`TripleStore::pattern_matches`] lazily and each binding's terms
    /// are materialized only when the consumer pulls it — a destination
    /// peer answering a routed subquery pays for exactly the rows it
    /// ships.
    pub fn match_pattern_iter<'a>(
        &'a self,
        pattern: &'a TriplePattern,
    ) -> impl Iterator<Item = Binding> + 'a {
        // Distinct variables only: a repeated variable binds once (the
        // residual predicate already forced its slots to agree).
        let mut vars: Vec<(Position, &str)> = Vec::new();
        for &pos in Position::ALL.iter() {
            if let PatternTerm::Var(v) = pattern.slot(pos) {
                if !vars.iter().any(|&(_, n)| n == v.as_str()) {
                    vars.push((pos, v.as_str()));
                }
            }
        }
        self.pattern_matches(pattern).map(move |id| {
            let row = self.cols.row(id);
            let mut b = Binding::new();
            for &(pos, name) in &vars {
                b.bind(name.to_string(), self.term_of_code(row.code_at(pos)));
            }
            b
        })
    }

    /// Evaluate a triple pattern against the local database, returning
    /// one binding per matching triple (the eager twin of
    /// [`TripleStore::match_pattern_iter`], same rows, same order).
    /// Eager lets it gather terms granule-at-a-time: matching row ids
    /// are collected first, then each bound position is resolved through
    /// one batched dictionary pass per [`GRANULE`] chunk instead of one
    /// shard hop per binding slot.
    pub fn match_pattern(&self, pattern: &TriplePattern) -> Vec<Binding> {
        let mut vars: Vec<(Position, &str)> = Vec::new();
        for &pos in Position::ALL.iter() {
            if let PatternTerm::Var(v) = pattern.slot(pos) {
                if !vars.iter().any(|&(_, n)| n == v.as_str()) {
                    vars.push((pos, v.as_str()));
                }
            }
        }
        let ids: Vec<u32> = self.pattern_matches(pattern).collect();
        let mut out: Vec<Binding> = Vec::with_capacity(ids.len());
        out.resize_with(ids.len(), Binding::new);
        let mut tids: Vec<TermId> = Vec::with_capacity(GRANULE);
        let mut lex: Vec<Arc<str>> = Vec::with_capacity(GRANULE);
        for (c, chunk) in ids.chunks(GRANULE).enumerate() {
            let base = c * GRANULE;
            for &(pos, name) in &vars {
                tids.clear();
                tids.extend(chunk.iter().map(|&r| self.cols.id_at(r, pos)));
                self.dict.shared_many(&tids, &mut lex);
                for (k, &r) in chunk.iter().enumerate() {
                    let term = if pos == Position::Object && self.cols.o_lit_at(r) {
                        Term::literal(lex[k].clone())
                    } else {
                        Term::uri(lex[k].clone())
                    };
                    out[base + k].bind(name.to_string(), term);
                }
            }
        }
        out
    }

    /// The destination-peer resolution of §2.3:
    /// `Results = π_pos(x) σ_pos(const)=const (DB_dest)`.
    /// Returns the terms bound to `var`, sorted and deduplicated.
    pub fn resolve(&self, pattern: &TriplePattern, var: &str) -> Vec<Term> {
        let vars = VarTable::from_patterns([pattern]);
        let Some(slot) = vars.slot(var) else {
            return Vec::new();
        };
        let mut codes: Vec<u64> = self
            .match_codes(pattern, &vars)
            .iter()
            .map(|row| row[slot])
            .filter(|&c| c != UNBOUND)
            .collect();
        codes.sort_unstable();
        codes.dedup();
        let mut out: Vec<Term> = codes.into_iter().map(|c| self.term_of_code(c)).collect();
        out.sort();
        out
    }

    /// Self-join ⋈: evaluate two patterns and hash-join their binding
    /// sets on the shared variables. This is the building block for
    /// conjunctive queries (§2.3: "iteratively resolving each triple
    /// pattern … and aggregating").
    pub fn join(&self, left: &TriplePattern, right: &TriplePattern) -> Vec<Binding> {
        let vars = VarTable::from_patterns([left, right]);
        self.join_codes(left, right)
            .iter()
            .map(|row| self.decode_row(row, &vars))
            .collect()
    }

    /// Hash ⋈ of two patterns at the term-code level: the rows of
    /// [`TripleStore::join`] before binding decode (and the baseline
    /// the sort-merge path is measured against).
    pub fn join_codes(&self, left: &TriplePattern, right: &TriplePattern) -> Vec<Vec<u64>> {
        let vars = VarTable::from_patterns([left, right]);
        let l = self.match_codes(left, &vars);
        let r = self.match_codes(right, &vars);
        hash_join_rows(&l, &r)
    }

    /// Sort-merge ⋈ of two patterns on their single shared variable,
    /// with no hash table built on either side: each match set streams
    /// off its access path already row-id ascending, gets one stable
    /// by-key sort, and the two key-ordered sets merge linearly —
    /// equal-key blocks pair up left-major. Yields exactly the rows of
    /// [`TripleStore::join_codes`], reordered by (key code, left row,
    /// right row). Patterns sharing zero or several variables fall
    /// back to the hash path unchanged.
    pub fn merge_join_codes(&self, left: &TriplePattern, right: &TriplePattern) -> Vec<Vec<u64>> {
        let vars = VarTable::from_patterns([left, right]);
        let shared = shared_variables(left, right);
        let [key] = shared.as_slice() else {
            return self.join_codes(left, right);
        };
        let k = vars.slot(key).expect("shared var registered");
        let l = self.match_codes(left, &vars);
        let r = self.match_codes(right, &vars);
        // Argsort over packed (key, match index) pairs: a flat 12-byte
        // comparison sort instead of shuffling the row vectors
        // themselves, and the index tiebreak makes the unstable sort
        // stable by key (matches stream out row-ascending).
        let keyed = |rows: &[Vec<u64>]| -> Vec<(u64, u32)> {
            let mut v: Vec<(u64, u32)> = rows
                .iter()
                .enumerate()
                .map(|(i, row)| (row[k], i as u32))
                .collect();
            v.sort_unstable();
            v
        };
        let lk = keyed(&l);
        let rk = keyed(&r);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < lk.len() && j < rk.len() {
            let (a, b) = (lk[i].0, rk[j].0);
            if a < b {
                i += 1;
            } else if a > b {
                j += 1;
            } else {
                let ie = i + lk[i..].iter().take_while(|&&(key, _)| key == a).count();
                let je = j + rk[j..].iter().take_while(|&&(key, _)| key == a).count();
                for &(_, li) in &lk[i..ie] {
                    for &(_, ri) in &rk[j..je] {
                        out.push(merge_rows(&l[li as usize], &r[ri as usize]));
                    }
                }
                i = ie;
                j = je;
            }
        }
        out
    }

    /// Self-join ⋈ via the sort-merge path (see
    /// [`TripleStore::merge_join_codes`]): the same binding multiset as
    /// [`TripleStore::join`], ordered by (key code, left row, right
    /// row) instead of left-major probe order.
    pub fn merge_join(&self, left: &TriplePattern, right: &TriplePattern) -> Vec<Binding> {
        let vars = VarTable::from_patterns([left, right]);
        self.merge_join_codes(left, right)
            .iter()
            .map(|row| self.decode_row(row, &vars))
            .collect()
    }

    /// Distinct predicate values present, lexically sorted (used by
    /// schema inference and the instance-based matcher).
    ///
    /// Served from run metadata: each sorted run records its distinct
    /// predicate ids, so this walks runs + the append log — not the
    /// dictionary-sized posting index. With tombstones present, each
    /// candidate id is additionally checked for a live row.
    pub fn predicates(&self) -> Vec<&str> {
        let mut ids: Vec<TermId> = Vec::new();
        for run in self.runs.runs() {
            ids.extend_from_slice(run.distinct_predicates());
        }
        let log_start = self.runs.sealed_end() as usize;
        ids.extend_from_slice(&self.cols.p[log_start..]);
        ids.sort_unstable();
        ids.dedup();
        let any_dead = self.cols.any_dead();
        let mut v: Vec<&str> = ids
            .into_iter()
            .filter(|&id| !any_dead || self.posting(Position::Predicate, id).next().is_some())
            .map(|id| self.dict.resolve(id))
            .collect();
        v.sort_unstable();
        v
    }

    /// Compact the store: drop tombstoned rows (rebuilding columns,
    /// dictionary, dedup set and posting lists in one pass over the
    /// live rows — no materialization, no re-hash through the dedup
    /// path), then fold the entire row space, append log included, into
    /// a single sorted run with fresh zone maps.
    pub fn compact(&mut self) {
        if self.cols.any_dead() {
            let mut dict = TermDict::new();
            let mut cols = Columns::default();
            let mut by_subject = PostingIndex::default();
            let mut by_predicate = PostingIndex::default();
            let mut by_object = PostingIndex::default();

            for old_id in 0..self.cols.len() as u32 {
                if self.cols.is_dead(old_id) {
                    continue;
                }
                let old = self.cols.row(old_id);
                // Re-intern via the old dictionary's buffers (Arc clones
                // and id-map probes; no string copies for retained
                // terms).
                let row = Row {
                    s: dict.intern_shared(&self.dict.shared(old.s)),
                    p: dict.intern_shared(&self.dict.shared(old.p)),
                    o: dict.intern_shared(&self.dict.shared(old.o)),
                    o_lit: old.o_lit,
                };
                let id = cols.len() as u32;
                by_subject.push(row.s, id);
                by_predicate.push(row.p, id);
                by_object.push(row.o, id);
                cols.push(row);
            }

            self.live = cols.len();
            self.dedup = (0..cols.len() as u32).map(|id| cols.row(id)).collect();
            self.dict = dict;
            self.cols = cols;
            self.by_subject = by_subject;
            self.by_predicate = by_predicate;
            self.by_object = by_object;
            self.sorted_subject = OnceLock::new();
            self.sorted_predicate = OnceLock::new();
            self.sorted_object = OnceLock::new();
            self.runs.clear();
        }
        self.runs.seal_all(&self.cols, self.dict.id_bound());
        self.rebuild_posting_csr();
    }

    /// Test hook: seal the current append log into a run regardless of
    /// its size, so small stores exercise the run/zone-map machinery
    /// (and the CSR rebuild that rides every seal).
    #[cfg(test)]
    pub(crate) fn seal_log_for_test(&mut self) {
        self.runs.seal_log(&self.cols, self.dict.id_bound());
        self.rebuild_posting_csr();
    }

    /// Number of sealed runs (merge-schedule observability).
    #[cfg(test)]
    pub(crate) fn run_count(&self) -> usize {
        self.runs.runs().len()
    }
}

/// Distinct variable names appearing in both patterns, in left's slot
/// order (the merge-join key discovery).
fn shared_variables<'p>(left: &'p TriplePattern, right: &TriplePattern) -> Vec<&'p str> {
    let rvars = right.variables();
    let mut out: Vec<&str> = Vec::new();
    for v in left.variables() {
        if rvars.contains(&v) && !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Row-id source behind a [`PatternMatches`] stream: a lazy cursor
/// (posting list or full scan) or an already-intersected /
/// range-collected id list (with a drain offset).
enum MatchSource<'a> {
    Cursor(RowCursor<'a>),
    Materialized(Vec<u32>, usize),
}

/// A lazily evaluated pattern scan (see
/// [`TripleStore::pattern_matches`]): yields live row ids matching the
/// pattern, in insertion order, evaluated a granule at a time — the
/// source refills a [`GRANULE`]-row batch and the residual predicate
/// (remaining constants, `LIKE`s, repeated variables) runs as columnar
/// `retain` sweeps over the batch, one constraint at a time, instead of
/// re-dispatching the whole predicate chain per row.
pub struct PatternMatches<'a> {
    store: &'a TripleStore,
    src: MatchSource<'a>,
    /// Remaining exact constraints as kind-tagged codes (also re-checks
    /// the access-path constant: the index is kind-insensitive).
    exact: Vec<(Position, u64)>,
    likes: Vec<(Position, LikePattern<'a>)>,
    vars: Vec<(Position, &'a str)>,
    /// Current granule of admitted row ids, drained front-to-back.
    buf: Vec<u32>,
    bi: usize,
}

impl<'a> PatternMatches<'a> {
    fn empty(store: &'a TripleStore) -> PatternMatches<'a> {
        PatternMatches {
            store,
            src: MatchSource::Materialized(Vec::new(), 0),
            exact: Vec::new(),
            likes: Vec::new(),
            vars: Vec::new(),
            buf: Vec::new(),
            bi: 0,
        }
    }

    /// Pull the next granule of candidates from the source and run the
    /// residual sweeps over it; `false` once the source is dry.
    fn refill(&mut self) -> bool {
        loop {
            self.bi = 0;
            let got = match &mut self.src {
                MatchSource::Cursor(c) => c.next_block(&mut self.buf),
                MatchSource::Materialized(ids, next) => {
                    let chunk = &ids[*next..(*next + GRANULE).min(ids.len())];
                    self.buf.clear();
                    self.buf.extend_from_slice(chunk);
                    *next += chunk.len();
                    !self.buf.is_empty()
                }
            };
            if !got {
                return false;
            }
            self.admit_block();
            if !self.buf.is_empty() {
                return true;
            }
        }
    }

    /// Columnar residual predicate over the current granule: one
    /// `retain` sweep per constraint, each touching only its column.
    fn admit_block(&mut self) {
        let store = self.store;
        let buf = &mut self.buf;
        // Cursor sources already skip tombstones; materialized id lists
        // (multi-constant intersections, prefix range scans) have not.
        if matches!(self.src, MatchSource::Materialized(..)) && store.cols.any_dead() {
            buf.retain(|&id| !store.cols.is_dead(id));
        }
        for &(pos, code) in &self.exact {
            buf.retain(|&id| store.cols.code_at(id, pos) == code);
        }
        for (pos, like) in &self.likes {
            buf.retain(|&id| like.matches(store.dict.resolve(store.cols.id_at(id, *pos))));
        }
        // Repeated variables must bind equal codes.
        for (k, &(pos, name)) in self.vars.iter().enumerate() {
            for &(p2, n2) in &self.vars[k + 1..] {
                if n2 == name {
                    buf.retain(|&id| store.cols.code_at(id, pos) == store.cols.code_at(id, p2));
                }
            }
        }
    }
}

impl Iterator for PatternMatches<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.bi < self.buf.len() {
                let id = self.buf[self.bi];
                self.bi += 1;
                return Some(id);
            }
            if !self.refill() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::PatternTerm;

    fn sample() -> TripleStore {
        let mut db = TripleStore::new();
        db.insert(Triple::new(
            "embl:A78712",
            "EMBL#Organism",
            Term::literal("Aspergillus niger"),
        ));
        db.insert(Triple::new(
            "embl:A78767",
            "EMBL#Organism",
            Term::literal("Aspergillus nidulans"),
        ));
        db.insert(Triple::new(
            "embl:X00001",
            "EMBL#Organism",
            Term::literal("Penicillium chrysogenum"),
        ));
        db.insert(Triple::new(
            "embl:A78712",
            "EMBL#SequenceLength",
            Term::literal("1042"),
        ));
        db
    }

    #[test]
    fn insert_is_idempotent() {
        let mut db = TripleStore::new();
        let t = Triple::new("s", "p", Term::literal("o"));
        assert!(db.insert(t.clone()));
        assert!(!db.insert(t));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        let triples: Vec<Triple> = (0..40)
            .map(|i| {
                Triple::new(
                    format!("s{}", i % 7),
                    format!("p{}", i % 3),
                    Term::literal(format!("o{}", i % 5)),
                )
            })
            .collect();
        let mut one_by_one = TripleStore::new();
        let mut inserted = 0;
        for t in &triples {
            inserted += one_by_one.insert(t.clone()) as usize;
        }
        let mut batched = TripleStore::new();
        assert_eq!(batched.insert_batch(triples.iter().cloned()), inserted);
        assert_eq!(batched.len(), one_by_one.len());
        let collect = |db: &TripleStore| {
            let mut v: Vec<Triple> = db.iter().collect();
            v.sort();
            v
        };
        assert_eq!(collect(&batched), collect(&one_by_one));
        for pos in Position::ALL {
            assert_eq!(
                batched.select_eq(pos, "s1").len(),
                one_by_one.select_eq(pos, "s1").len()
            );
        }
        // A second batch over the same data inserts nothing.
        assert_eq!(batched.insert_batch(triples), 0);
        // Batches interleave correctly with point inserts and removals.
        assert!(batched.remove(&Triple::new("s1", "p1", Term::literal("o1"))));
        assert_eq!(
            batched.insert_batch([Triple::new("s1", "p1", Term::literal("o1"))]),
            1
        );
        assert!(batched.contains(&Triple::new("s1", "p1", Term::literal("o1"))));
    }

    #[test]
    fn large_batch_takes_the_parallel_interning_path() {
        // Past the parallel cutoff and the seal threshold: the sharded
        // batch-interning path (on multicore hosts) and the sealing
        // schedule must agree with the memoized path.
        let triples: Vec<Triple> = (0..40_000)
            .map(|i| {
                Triple::new(
                    format!("seq:S{:05}", i / 3),
                    format!("schema#p{}", i % 3),
                    Term::literal(format!("value {}", i % 997)),
                )
            })
            .collect();
        let mut db = TripleStore::new();
        assert_eq!(db.insert_batch(triples.iter().cloned()), 40_000);
        assert_eq!(db.len(), 40_000);
        assert!(db.run_count() >= 1, "batch must have sealed runs");
        // Spot-check all three access paths against each other.
        for value in ["seq:S00000", "schema#p1", "value 42"] {
            for pos in Position::ALL {
                let via_posting: Vec<u32> = db.select_eq_rows(pos, value).collect();
                let via_scan: Vec<u32> = db.scan_eq_rows(pos, value).collect();
                assert_eq!(via_posting, via_scan, "{pos:?} {value}");
                assert_eq!(via_posting.len(), db.select_eq(pos, value).len());
            }
        }
    }

    #[test]
    fn equal_lexical_different_kind_are_distinct_triples() {
        let mut db = TripleStore::new();
        assert!(db.insert(Triple::new("s", "p", Term::literal("x"))));
        assert!(db.insert(Triple::new("s", "p", Term::uri("x"))));
        assert_eq!(db.len(), 2);
        // Lexical selection finds both kinds, like the seed's
        // lexically-keyed object index did.
        assert_eq!(db.select_eq(Position::Object, "x").len(), 2);
        assert!(db.remove(&Triple::new("s", "p", Term::uri("x"))));
        assert!(db.contains(&Triple::new("s", "p", Term::literal("x"))));
        assert_eq!(db.select_eq(Position::Object, "x").len(), 1);
    }

    #[test]
    fn remove_and_contains() {
        let mut db = sample();
        let t = Triple::new(
            "embl:A78712",
            "EMBL#Organism",
            Term::literal("Aspergillus niger"),
        );
        assert!(db.contains(&t));
        assert!(db.remove(&t));
        assert!(!db.contains(&t));
        assert!(!db.remove(&t));
        assert_eq!(db.len(), 3);
        // Index lookups must not resurface the tombstone.
        assert_eq!(db.select_eq(Position::Subject, "embl:A78712").len(), 1);
    }

    #[test]
    fn select_eq_uses_each_position() {
        let db = sample();
        assert_eq!(db.select_eq(Position::Predicate, "EMBL#Organism").len(), 3);
        assert_eq!(db.select_eq(Position::Subject, "embl:A78712").len(), 2);
        assert_eq!(db.select_eq(Position::Object, "1042").len(), 1);
        assert!(db.select_eq(Position::Subject, "nope").is_empty());
    }

    #[test]
    fn cursor_selects_agree_with_eager_select() {
        let mut db = sample();
        db.seal_log_for_test();
        db.insert(Triple::new(
            "embl:A78767",
            "EMBL#SequenceLength",
            Term::literal("2210"),
        ));
        for (pos, value) in [
            (Position::Predicate, "EMBL#Organism"),
            (Position::Predicate, "EMBL#SequenceLength"),
            (Position::Subject, "embl:A78712"),
            (Position::Object, "1042"),
            (Position::Object, "never seen"),
        ] {
            let eager = db.select_eq(pos, value);
            let via_cursor: Vec<Triple> = db.select_eq_rows(pos, value).triples().collect();
            let via_scan: Vec<Triple> = db.scan_eq_rows(pos, value).triples().collect();
            assert_eq!(eager, via_cursor, "{pos:?} {value}");
            assert_eq!(eager, via_scan, "{pos:?} {value}");
            let refs: Vec<TripleRef<'_>> = db.select_eq_rows(pos, value).refs().collect();
            assert_eq!(refs.len(), eager.len());
        }
    }

    #[test]
    fn cursor_full_scan_lists_live_rows() {
        let mut db = sample();
        db.seal_log_for_test();
        db.remove(&Triple::new(
            "embl:X00001",
            "EMBL#Organism",
            Term::literal("Penicillium chrysogenum"),
        ));
        assert_eq!(db.rows().count(), 3);
        assert_eq!(db.iter_refs().count(), 3);
        assert_eq!(db.iter().count(), 3);
    }

    #[test]
    fn zone_maps_prune_but_never_drop() {
        // ~1k rows, multiple granules after sealing: every probed id
        // must come back exactly as a brute-force column scan says,
        // and selective probes must actually prune granules.
        let mut db = TripleStore::new();
        let n = 1100;
        let triples: Vec<Triple> = (0..n)
            .map(|i| {
                Triple::new(
                    format!("s{:04}", i),
                    format!("p{}", i % 5),
                    Term::literal(format!("o{}", i % 311)),
                )
            })
            .collect();
        db.insert_batch(triples.iter().cloned());
        db.seal_log_for_test();
        assert_eq!(db.run_count(), 1);
        for value in ["s0000", "s1099", "p3", "o42", "o310"] {
            for pos in Position::ALL {
                let brute: Vec<u32> = (0..n as u32)
                    .filter(|&id| {
                        db.dict.lookup(value) == Some(db.cols.id_at(id, pos))
                            && !db.cols.is_dead(id)
                    })
                    .collect();
                let scanned: Vec<u32> = db.scan_eq_rows(pos, value).collect();
                assert_eq!(scanned, brute, "{pos:?} {value}");
            }
        }
        // Pruning bites: a unique subject survives in at most one
        // granule of the subject permutation.
        let sid = db.dict.lookup("s0500").unwrap();
        let run = &db.runs.runs()[0];
        let granules = run.pruned_granules(Position::Subject, sid);
        assert!(
            granules.end - granules.start <= 2,
            "unique key hit {} granules",
            granules.end - granules.start
        );
    }

    #[test]
    fn size_tiered_merge_bounds_run_count() {
        let mut db = TripleStore::new();
        // Seal many similarly sized runs; the tiered schedule must keep
        // folding them instead of accumulating one run per seal.
        for batch in 0..12 {
            for i in 0..50 {
                db.insert(Triple::new(
                    format!("s{batch}-{i}"),
                    "p",
                    Term::literal(format!("o{batch}-{i}")),
                ));
            }
            db.seal_log_for_test();
        }
        assert_eq!(db.len(), 600);
        assert!(
            db.run_count() <= 4,
            "tiered merge left {} runs",
            db.run_count()
        );
        // Scans still see everything once, in insertion order.
        let ids: Vec<u32> = db.scan_eq_rows(Position::Predicate, "p").collect();
        assert_eq!(ids.len(), 600);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn select_like_wildcards() {
        let db = sample();
        let hits = db.select_like(Position::Object, "%Aspergillus%");
        assert_eq!(hits.len(), 2);
        let exact = db.select_like(Position::Object, "1042");
        assert_eq!(exact.len(), 1);
    }

    #[test]
    fn select_like_prefix_range_scans() {
        let db = sample();
        let hits = db.select_like(Position::Object, "Aspergillus%");
        assert_eq!(hits.len(), 2);
        let subj = db.select_like(Position::Subject, "embl:A78%");
        assert_eq!(subj.len(), 3);
        let none = db.select_like(Position::Subject, "zzz%");
        assert!(none.is_empty());
        let suffix = db.select_like(Position::Object, "%nidulans");
        assert_eq!(suffix.len(), 1);
    }

    #[test]
    fn paper_query_resolution() {
        // π_subject σ_predicate=EMBL#Organism ∧ object=%Aspergillus% (DB)
        let db = sample();
        let pattern = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        );
        let results = db.resolve(&pattern, "x");
        assert_eq!(
            results,
            vec![Term::uri("embl:A78712"), Term::uri("embl:A78767")]
        );
    }

    #[test]
    fn match_pattern_all_variables_returns_everything() {
        let db = sample();
        let pattern = TriplePattern::new(
            PatternTerm::var("s"),
            PatternTerm::var("p"),
            PatternTerm::var("o"),
        );
        assert_eq!(db.match_pattern(&pattern).len(), 4);
    }

    #[test]
    fn match_pattern_repeated_variable_compares_codes() {
        let mut db = TripleStore::new();
        db.insert(Triple::new("a", "p", Term::uri("a")));
        db.insert(Triple::new("a", "p", Term::literal("a")));
        db.insert(Triple::new("a", "p", Term::uri("b")));
        let pattern = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("p")),
            PatternTerm::var("x"),
        );
        // Only the uri-object row matches: the literal "a" differs in
        // kind from the uri subject <a> despite the equal lexical.
        let matches = db.match_pattern(&pattern);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].get("x"), Some(&Term::uri("a")));
    }

    #[test]
    fn multi_constant_pattern_intersects_runs_and_log() {
        // Two exact constants: the match must be served by intersecting
        // the per-position candidate sets — across sealed runs AND the
        // append log — and agree with a naive scan.
        let mut db = TripleStore::new();
        for i in 0..600 {
            db.insert(Triple::new(
                format!("s{}", i % 40),
                format!("p{}", i % 7),
                Term::literal(format!("o{}", i % 11)),
            ));
        }
        db.seal_log_for_test();
        for i in 600..800 {
            db.insert(Triple::new(
                format!("s{}", i % 40),
                format!("p{}", i % 7),
                Term::literal(format!("o{}", i % 11)),
            ));
        }
        // Tombstones must not resurface through the intersection.
        db.remove(&Triple::new("s3", "p3", Term::literal("o3")));
        for (s, p) in [("s3", "p3"), ("s0", "p0"), ("s12", "p5"), ("s39", "p6")] {
            let pattern = TriplePattern::new(
                PatternTerm::constant(Term::uri(s)),
                PatternTerm::constant(Term::uri(p)),
                PatternTerm::var("o"),
            );
            let fast: Vec<u32> = db.pattern_matches(&pattern).collect();
            let naive: Vec<u32> = db
                .rows()
                .filter(|&id| {
                    db.term_at(id, Position::Subject) == s
                        && db.term_at(id, Position::Predicate) == p
                })
                .collect();
            assert_eq!(fast, naive, "({s}, {p}, ?o)");
        }
        // Three constants, including the object's literal kind check.
        let pattern = TriplePattern::new(
            PatternTerm::constant(Term::uri("s5")),
            PatternTerm::constant(Term::uri("p5")),
            PatternTerm::constant(Term::literal("o5")),
        );
        let hits: Vec<u32> = db.pattern_matches(&pattern).collect();
        assert!(!hits.is_empty());
        assert!(db
            .match_pattern(&TriplePattern::new(
                PatternTerm::constant(Term::uri("s5")),
                PatternTerm::constant(Term::uri("p5")),
                PatternTerm::constant(Term::uri("o5")), // uri ≠ stored literal
            ))
            .is_empty());
    }

    #[test]
    fn self_join_connects_attributes() {
        // Sequences with an Organism AND a SequenceLength.
        let db = sample();
        let left = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::var("org"),
        );
        let right = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
            PatternTerm::var("len"),
        );
        let joined = db.join(&left, &right);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].get("x"), Some(&Term::uri("embl:A78712")));
        assert_eq!(joined[0].get("len"), Some(&Term::literal("1042")));
    }

    #[test]
    fn predicates_lists_distinct_live() {
        let mut db = sample();
        assert_eq!(
            db.predicates(),
            vec!["EMBL#Organism", "EMBL#SequenceLength"]
        );
        db.remove(&Triple::new(
            "embl:A78712",
            "EMBL#SequenceLength",
            Term::literal("1042"),
        ));
        assert_eq!(db.predicates(), vec!["EMBL#Organism"]);
        // Sealed-run metadata serves the same answer.
        db.seal_log_for_test();
        assert_eq!(db.predicates(), vec!["EMBL#Organism"]);
    }

    #[test]
    fn compact_preserves_content() {
        let mut db = sample();
        db.remove(&Triple::new(
            "embl:X00001",
            "EMBL#Organism",
            Term::literal("Penicillium chrysogenum"),
        ));
        let before: Vec<Triple> = {
            let mut v: Vec<Triple> = db.iter().collect();
            v.sort();
            v
        };
        db.compact();
        let mut after: Vec<Triple> = db.iter().collect();
        after.sort();
        assert_eq!(before, after);
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn compact_folds_log_into_one_sorted_run() {
        let mut db = sample();
        db.seal_log_for_test();
        db.insert(Triple::new("s", "p", Term::literal("late")));
        db.remove(&Triple::new(
            "embl:X00001",
            "EMBL#Organism",
            Term::literal("Penicillium chrysogenum"),
        ));
        db.compact();
        assert_eq!(db.run_count(), 1, "compaction folds everything");
        assert_eq!(db.len(), 4);
        // The tombstoned row is physically gone (row ids are dense).
        assert_eq!(db.rows().count(), 4);
        assert_eq!(db.rows().last(), Some(3));
        // Post-compaction scans agree across paths.
        let a: Vec<u32> = db
            .select_eq_rows(Position::Predicate, "EMBL#Organism")
            .collect();
        let b: Vec<u32> = db
            .scan_eq_rows(Position::Predicate, "EMBL#Organism")
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn compact_drops_dead_dictionary_entries_and_keeps_queries_working() {
        let mut db = sample();
        let dict_before = db.dict().len();
        db.remove(&Triple::new(
            "embl:X00001",
            "EMBL#Organism",
            Term::literal("Penicillium chrysogenum"),
        ));
        db.compact();
        assert!(
            db.dict().len() < dict_before,
            "terms only the removed triple used must be garbage-collected"
        );
        // Post-compaction queries across all access paths still work.
        assert_eq!(db.select_eq(Position::Predicate, "EMBL#Organism").len(), 2);
        assert!(db.select_eq(Position::Subject, "embl:X00001").is_empty());
        assert_eq!(db.select_like(Position::Object, "Aspergillus%").len(), 2);
        assert!(db.insert(Triple::new("s", "p", Term::literal("new"))));
        assert_eq!(db.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::triple::PatternTerm;
    use proptest::prelude::*;

    fn arb_triple() -> impl Strategy<Value = Triple> {
        ("[a-c]{1,2}", "[p-r]{1,2}", "[x-z]{1,2}")
            .prop_map(|(s, p, o)| Triple::new(s.as_str(), p.as_str(), Term::literal(o)))
    }

    /// Drain a cursor granule-at-a-time and concatenate the batches.
    fn drain_blocks(mut c: RowCursor<'_>) -> Vec<u32> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while c.next_block(&mut buf) {
            out.extend_from_slice(&buf);
        }
        out
    }

    proptest! {
        /// The three indexes agree with a full scan, for every position.
        #[test]
        fn indexes_agree_with_scan(triples in proptest::collection::vec(arb_triple(), 0..40),
                                   removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..10)) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &triples {
                if db.insert(t.clone()) {
                    reference.push(t.clone());
                }
            }
            for idx in &removals {
                if reference.is_empty() { break; }
                let i = idx.index(reference.len());
                let t = reference.remove(i);
                prop_assert!(db.remove(&t));
            }
            prop_assert_eq!(db.len(), reference.len());
            for pos in Position::ALL {
                for t in &reference {
                    let value = t.get(pos);
                    let via_index = db.select_eq(pos, value.lexical());
                    let via_scan: Vec<&Triple> = reference
                        .iter()
                        .filter(|r| r.get(pos).lexical() == value.lexical())
                        .collect();
                    prop_assert_eq!(via_index.len(), via_scan.len());
                }
            }
        }

        /// The columnar zone-mapped cursor scan and the posting-list
        /// cursor agree with eager `select_eq` on random stores with
        /// interleaved inserts, removals, sealing and re-inserts — same
        /// rows, same (insertion) order, for every position and value.
        #[test]
        fn cursor_scan_matches_select_eq(first in proptest::collection::vec(arb_triple(), 0..40),
                                         removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..12),
                                         second in proptest::collection::vec(arb_triple(), 0..20),
                                         seal_points in 0u8..4) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &first {
                if db.insert(t.clone()) {
                    reference.push(t.clone());
                }
            }
            if seal_points & 1 != 0 {
                db.seal_log_for_test(); // run + empty log
            }
            for idx in &removals {
                if reference.is_empty() { break; }
                let t = reference.remove(idx.index(reference.len()));
                prop_assert!(db.remove(&t));
            }
            for t in &second {
                if db.insert(t.clone()) {
                    reference.push(t.clone());
                }
            }
            if seal_points & 2 != 0 {
                db.seal_log_for_test(); // second run, tiered merge
            }
            // Every value that ever entered the store, every position.
            for t in first.iter().chain(&second) {
                for pos in Position::ALL {
                    let value = t.get(pos);
                    let eager: Vec<Triple> = db.select_eq(pos, value.lexical());
                    let posting: Vec<Triple> =
                        db.select_eq_rows(pos, value.lexical()).triples().collect();
                    let scan: Vec<Triple> =
                        db.scan_eq_rows(pos, value.lexical()).triples().collect();
                    prop_assert_eq!(&posting, &eager, "posting cursor at {:?}", pos);
                    prop_assert_eq!(&scan, &eager, "zone scan at {:?}", pos);
                }
            }
            prop_assert_eq!(db.rows().count(), reference.len());
        }

        /// Zone-map pruning never drops a matching row: the pruned
        /// granule range of every sealed run covers every occurrence of
        /// every probed id (checked against a brute-force column scan
        /// of the whole store).
        #[test]
        fn zone_pruning_never_drops(triples in proptest::collection::vec(arb_triple(), 1..60),
                                    split in any::<prop::sample::Index>()) {
            let mut db = TripleStore::new();
            let cut = split.index(triples.len());
            for t in &triples[..cut] {
                db.insert(t.clone());
            }
            db.seal_log_for_test();
            for t in &triples[cut..] {
                db.insert(t.clone());
            }
            db.seal_log_for_test();
            for t in &triples {
                for pos in Position::ALL {
                    let value = t.get(pos);
                    let Some(id) = db.dict.lookup(value.lexical()) else { continue };
                    let brute: Vec<u32> = (0..db.cols.len() as u32)
                        .filter(|&r| db.cols.id_at(r, pos) == id && !db.cols.is_dead(r))
                        .collect();
                    let scanned: Vec<u32> = db.scan_eq_rows(pos, value.lexical()).collect();
                    prop_assert_eq!(scanned, brute, "{:?} {:?}", pos, value);
                }
            }
        }

        /// Multi-constant patterns — the zone-pruned run/posting-tail
        /// intersection path — agree with the naive filter under
        /// interleaved inserts, removals and sealing.
        #[test]
        fn multi_constant_intersection_agrees_with_naive(
            first in proptest::collection::vec(arb_triple(), 0..40),
            removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
            second in proptest::collection::vec(arb_triple(), 0..20),
            subj in "[a-c]{1,2}",
            pred in "[p-r]{1,2}",
            seal in any::<bool>(),
        ) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &first {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            if seal { db.seal_log_for_test(); }
            for idx in &removals {
                if reference.is_empty() { break; }
                let t = reference.remove(idx.index(reference.len()));
                prop_assert!(db.remove(&t));
            }
            for t in &second {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            let pattern = TriplePattern::new(
                PatternTerm::constant(Term::uri(subj.clone())),
                PatternTerm::constant(Term::uri(pred.clone())),
                PatternTerm::var("o"),
            );
            let fast = db.match_pattern(&pattern).len();
            let naive = reference
                .iter()
                .filter(|t| *t.subject.as_str() == subj && *t.predicate.as_str() == pred)
                .count();
            prop_assert_eq!(fast, naive);
        }

        /// match_pattern with a constant agrees with the naive filter.
        #[test]
        fn match_pattern_agrees_with_naive(triples in proptest::collection::vec(arb_triple(), 0..30),
                                           pred in "[p-r]{1,2}") {
            let mut db = TripleStore::new();
            for t in &triples { db.insert(t.clone()); }
            let pattern = TriplePattern::new(
                PatternTerm::var("s"),
                PatternTerm::constant(Term::uri(pred.clone())),
                PatternTerm::var("o"),
            );
            let fast = db.match_pattern(&pattern).len();
            let naive = db.iter().filter(|t| t.predicate.as_str() == pred).count();
            prop_assert_eq!(fast, naive);
        }

        /// select_like agrees with a naive scan for every pattern shape
        /// (exact, prefix range scan, suffix, contains).
        #[test]
        fn select_like_agrees_with_scan(triples in proptest::collection::vec(arb_triple(), 0..30),
                                        core in "[x-z]{0,2}",
                                        shape in 0usize..4) {
            let mut db = TripleStore::new();
            for t in &triples { db.insert(t.clone()); }
            let pattern = match shape {
                0 => core.clone(),
                1 => format!("{core}%"),
                2 => format!("%{core}"),
                _ => format!("%{core}%"),
            };
            let fast = db.select_like(Position::Object, &pattern).len();
            let naive = db
                .iter()
                .filter(|t| t.get(Position::Object).matches_like(&pattern))
                .count();
            prop_assert_eq!(fast, naive, "pattern {:?}", pattern);
        }

        /// The hash self-join agrees with the naive nested loop over
        /// `Binding::join` on random stores.
        #[test]
        fn join_agrees_with_nested_loop(triples in proptest::collection::vec(arb_triple(), 0..30),
                                        p1 in "[p-r]{1,2}",
                                        p2 in "[p-r]{1,2}") {
            let mut db = TripleStore::new();
            for t in &triples { db.insert(t.clone()); }
            let left = TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(p1)),
                PatternTerm::var("a"),
            );
            let right = TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri(p2)),
                PatternTerm::var("b"),
            );
            let naive: Vec<Binding> = {
                let lhs = db.match_pattern(&left);
                let rhs = db.match_pattern(&right);
                let mut out = Vec::new();
                for l in &lhs {
                    for r in &rhs {
                        if let Some(j) = l.join(r) {
                            out.push(j);
                        }
                    }
                }
                out
            };
            prop_assert_eq!(db.join(&left, &right), naive);
        }

        /// compact preserves contents and queries under random removals.
        #[test]
        fn compact_preserves_under_removals(triples in proptest::collection::vec(arb_triple(), 0..30),
                                            removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..10)) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &triples {
                if db.insert(t.clone()) {
                    reference.push(t.clone());
                }
            }
            for idx in &removals {
                if reference.is_empty() { break; }
                let t = reference.remove(idx.index(reference.len()));
                db.remove(&t);
            }
            db.compact();
            let mut got: Vec<Triple> = db.iter().collect();
            got.sort();
            reference.sort();
            prop_assert_eq!(got, reference);
        }

        /// The CSR posting head plus the tail agree with a brute-force
        /// per-term row list under interleaved insert/remove/seal/compact,
        /// and honor the layout invariants: both halves strictly
        /// ascending, every head row below `csr_end`, every tail row at
        /// or above it.
        #[test]
        fn csr_postings_agree_with_reference(
            first in proptest::collection::vec(arb_triple(), 0..40),
            removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
            second in proptest::collection::vec(arb_triple(), 0..20),
            ops in 0u8..8,
        ) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &first {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            if ops & 1 != 0 { db.seal_log_for_test(); }
            for idx in &removals {
                if reference.is_empty() { break; }
                let t = reference.remove(idx.index(reference.len()));
                prop_assert!(db.remove(&t));
            }
            for t in &second {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            if ops & 2 != 0 { db.seal_log_for_test(); }
            if ops & 4 != 0 { db.compact(); }
            for pos in Position::ALL {
                let index = db.index(pos);
                for t in first.iter().chain(&second) {
                    let Some(id) = db.dict.lookup(t.get(pos).lexical()) else { continue };
                    let (head, tail) = index.parts(id.index());
                    // Postings cover every row of the term, tombstoned
                    // included (liveness is the cursors' job).
                    let brute: Vec<u32> = (0..db.cols.len() as u32)
                        .filter(|&r| db.cols.id_at(r, pos) == id)
                        .collect();
                    let merged: Vec<u32> = head.iter().chain(tail).copied().collect();
                    prop_assert_eq!(&merged, &brute, "{:?} {:?}", pos, t.get(pos));
                    prop_assert!(head.windows(2).all(|w| w[0] < w[1]), "head ascends");
                    prop_assert!(tail.windows(2).all(|w| w[0] < w[1]), "tail ascends");
                    prop_assert!(head.iter().all(|&r| r < index.csr_end), "head under csr_end");
                    prop_assert!(tail.iter().all(|&r| r >= index.csr_end), "tail over csr_end");
                }
            }
        }

        /// Run-local key projections mirror the base columns: for every
        /// sealed run and position, `keys[i]` is the term id of row
        /// `perm[i]`, and the group walk covers the whole permutation in
        /// strictly ascending key order.
        #[test]
        fn run_projection_matches_permutation(
            triples in proptest::collection::vec(arb_triple(), 1..60),
            split in any::<prop::sample::Index>(),
        ) {
            let mut db = TripleStore::new();
            let cut = split.index(triples.len());
            for t in &triples[..cut] { db.insert(t.clone()); }
            db.seal_log_for_test();
            for t in &triples[cut..] { db.insert(t.clone()); }
            db.seal_log_for_test();
            for run in db.runs.runs() {
                for pos in Position::ALL {
                    let perm = run.perm(pos);
                    let keys = run.keys(pos);
                    prop_assert_eq!(perm.len(), keys.len());
                    for (&r, &k) in perm.iter().zip(keys) {
                        prop_assert_eq!(db.cols.id_at(r, pos).index() as u32, k, "{:?}", pos);
                    }
                    let mut group_keys: Vec<u32> = Vec::new();
                    let mut walked: Vec<u32> = Vec::new();
                    run.for_each_group(pos, |tid, rows| {
                        group_keys.push(tid.index() as u32);
                        walked.extend_from_slice(rows);
                    });
                    prop_assert!(group_keys.windows(2).all(|w| w[0] < w[1]), "groups ascend");
                    prop_assert_eq!(&walked[..], perm, "group walk covers the permutation");
                }
            }
        }

        /// `count_where` (the projection-driven full scan) agrees with a
        /// naive filter over the live triples, at every position, sealed
        /// or not.
        #[test]
        fn count_where_agrees_with_naive(
            first in proptest::collection::vec(arb_triple(), 0..40),
            removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
            second in proptest::collection::vec(arb_triple(), 0..20),
            needle in "[a-z]",
            seal in any::<bool>(),
        ) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &first {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            if seal { db.seal_log_for_test(); }
            for idx in &removals {
                if reference.is_empty() { break; }
                let t = reference.remove(idx.index(reference.len()));
                prop_assert!(db.remove(&t));
            }
            for t in &second {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            for pos in Position::ALL {
                let fast = db.count_where(pos, |lex| lex.starts_with(needle.as_str()));
                let naive = reference
                    .iter()
                    .filter(|t| t.get(pos).lexical().starts_with(needle.as_str()))
                    .count();
                prop_assert_eq!(fast, naive, "{:?} {:?}", pos, needle);
            }
        }

        /// Granule batches concatenate to exactly the row-at-a-time
        /// cursor stream — same rows, same order — for every cursor
        /// source (posting, zone scan, full scan) under interleaved
        /// mutation and sealing.
        #[test]
        fn next_block_concatenates_to_iteration(
            first in proptest::collection::vec(arb_triple(), 0..40),
            removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..12),
            second in proptest::collection::vec(arb_triple(), 0..20),
            seal_points in 0u8..4,
        ) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &first {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            if seal_points & 1 != 0 { db.seal_log_for_test(); }
            for idx in &removals {
                if reference.is_empty() { break; }
                let t = reference.remove(idx.index(reference.len()));
                prop_assert!(db.remove(&t));
            }
            for t in &second {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            if seal_points & 2 != 0 { db.seal_log_for_test(); }
            for pos in Position::ALL {
                for t in first.iter().chain(&second) {
                    let term = t.get(pos);
                    let v = term.lexical();
                    let via_posting: Vec<u32> = db.select_eq_rows(pos, v).collect();
                    prop_assert_eq!(drain_blocks(db.select_eq_rows(pos, v)), via_posting, "posting {:?}", pos);
                    let via_scan: Vec<u32> = db.scan_eq_rows(pos, v).collect();
                    prop_assert_eq!(drain_blocks(db.scan_eq_rows(pos, v)), via_scan, "scan {:?}", pos);
                }
            }
            let full: Vec<u32> = db.rows().collect();
            prop_assert_eq!(full.len(), reference.len());
            prop_assert_eq!(drain_blocks(db.rows()), full, "full scan");
        }

        /// `merge_join` returns exactly the hash join's bindings as
        /// multisets (the merge emits (key, left row, right row) order,
        /// the hash join emits probe order), for the single-shared-var
        /// merge path and both fallbacks (two shared vars, none).
        #[test]
        fn merge_join_agrees_with_hash_join(
            triples in proptest::collection::vec(arb_triple(), 0..40),
            p1 in "[p-r]{1,2}",
            p2 in "[p-r]{1,2}",
            seal in any::<bool>(),
            shape in 0usize..3,
        ) {
            let mut db = TripleStore::new();
            for t in &triples { db.insert(t.clone()); }
            if seal { db.seal_log_for_test(); }
            let (left, right) = match shape {
                // One shared variable: the linear merge path.
                0 => (
                    TriplePattern::new(
                        PatternTerm::var("x"),
                        PatternTerm::constant(Term::uri(p1)),
                        PatternTerm::var("a"),
                    ),
                    TriplePattern::new(
                        PatternTerm::var("x"),
                        PatternTerm::constant(Term::uri(p2)),
                        PatternTerm::var("b"),
                    ),
                ),
                // Two shared variables: falls back to the hash join.
                1 => (
                    TriplePattern::new(
                        PatternTerm::var("x"),
                        PatternTerm::constant(Term::uri(p1)),
                        PatternTerm::var("a"),
                    ),
                    TriplePattern::new(
                        PatternTerm::var("x"),
                        PatternTerm::var("q"),
                        PatternTerm::var("a"),
                    ),
                ),
                // No shared variable: cartesian fallback.
                _ => (
                    TriplePattern::new(
                        PatternTerm::var("x"),
                        PatternTerm::constant(Term::uri(p1)),
                        PatternTerm::var("a"),
                    ),
                    TriplePattern::new(
                        PatternTerm::var("y"),
                        PatternTerm::constant(Term::uri(p2)),
                        PatternTerm::var("b"),
                    ),
                ),
            };
            let sort_key = |b: &Binding| format!("{b}");
            let mut merged = db.merge_join(&left, &right);
            let mut hashed = db.join(&left, &right);
            merged.sort_by_key(sort_key);
            hashed.sort_by_key(sort_key);
            prop_assert_eq!(merged, hashed, "shape {}", shape);
            // Code-level rows agree too (count is enough: decoded
            // bindings above pin the contents).
            prop_assert_eq!(
                db.merge_join_codes(&left, &right).len(),
                db.join_codes(&left, &right).len()
            );
        }

        /// Repeated-variable and LIKE-constant patterns run through the
        /// granule-batched residual filter; they agree with the naive
        /// filter under sealing and compaction.
        #[test]
        fn granule_residuals_agree_with_naive(
            triples in proptest::collection::vec(arb_triple(), 0..50),
            removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..10),
            core in "[x-z]{0,1}",
            ops in 0u8..4,
        ) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &triples {
                if db.insert(t.clone()) { reference.push(t.clone()); }
            }
            for idx in &removals {
                if reference.is_empty() { break; }
                let t = reference.remove(idx.index(reference.len()));
                prop_assert!(db.remove(&t));
            }
            if ops & 1 != 0 { db.seal_log_for_test(); }
            if ops & 2 != 0 { db.compact(); }
            // Repeated variable: subject must equal predicate.
            let rep = TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("x"),
                PatternTerm::var("o"),
            );
            let naive_rep = reference
                .iter()
                .filter(|t| t.subject.as_str() == t.predicate.as_str())
                .count();
            prop_assert_eq!(db.match_pattern(&rep).len(), naive_rep);
            // LIKE constant: residual `%core%` filter on the object.
            let like = format!("%{core}%");
            let lp = TriplePattern::new(
                PatternTerm::var("s"),
                PatternTerm::var("p"),
                PatternTerm::constant(Term::literal(like.clone())),
            );
            let naive_like = reference
                .iter()
                .filter(|t| t.get(Position::Object).matches_like(&like))
                .count();
            prop_assert_eq!(db.match_pattern(&lp).len(), naive_like, "like {:?}", like);
        }
    }
}
