//! A fast, non-cryptographic hasher for the store's internal maps.
//!
//! The id-keyed posting lists, the dictionary's string map and the join
//! tables all sit on hot paths where SipHash's per-op latency dominates
//! the actual work (a `u32` key hash costs more than the posting-list
//! walk it guards). This is the classic Fx multiply-rotate hash used by
//! rustc: a few cycles per word, quality more than adequate for
//! in-process hash maps keyed by ids or interned strings. Not DoS
//! resistant — do not expose to untrusted keys across a trust boundary.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply-rotate hasher (rustc's `FxHasher`).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Mix the length in so "a" and "a\0" differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(1u32), hash_of(2u32));
        assert_ne!(hash_of("a"), hash_of("b"));
        assert_ne!(hash_of("a"), hash_of("a\0"));
        assert_eq!(hash_of("same"), hash_of("same"));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(format!("key-{i}"), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
    }
}
