//! # gridvine-rdf
//!
//! The data model of GridVine's semantic mediation layer (§2.2–2.3 of
//! the paper): RDF-style triples, the per-peer local triple database
//! `DB_p` with the three relational operators (selection σ, projection
//! π, self-join ⋈), triple patterns and conjunctive queries, an
//! RDQL-subset parser, and the peer-scoped GUID scheme.
//!
//! This crate is deliberately free of any networking or overlay
//! dependency: it is the "what" of GridVine's data, while
//! `gridvine-pgrid` is the "where" and `gridvine-core` the "how".
//!
//! ```
//! use gridvine_rdf::prelude::*;
//!
//! let mut db = TripleStore::new();
//! db.insert(Triple::new(
//!     "embl:A78712",
//!     "EMBL#Organism",
//!     Term::literal("Aspergillus niger"),
//! ));
//! let q = parse_single(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#).unwrap();
//! assert_eq!(q.evaluate(&db), vec![Term::uri("embl:A78712")]);
//! ```

pub mod guid;
pub mod parser;
pub mod query;
pub mod store;
pub mod term;
pub mod triple;

/// Glob-import surface.
pub mod prelude {
    pub use crate::guid::Guid;
    pub use crate::parser::{parse_query, parse_single, ParseError};
    pub use crate::query::{ConjunctiveQuery, QueryError, TriplePatternQuery};
    pub use crate::store::TripleStore;
    pub use crate::term::{like_match, Term, Uri};
    pub use crate::triple::{Binding, PatternTerm, Position, Triple, TriplePattern};
}

pub use guid::Guid;
pub use parser::{parse_query, parse_single, ParseError};
pub use query::{ConjunctiveQuery, QueryError, TriplePatternQuery};
pub use store::TripleStore;
pub use term::{like_match, Term, Uri};
pub use triple::{Binding, PatternTerm, Position, Triple, TriplePattern};
