//! # gridvine-rdf
//!
//! The data model of GridVine's semantic mediation layer (§2.2–2.3 of
//! the paper): RDF-style triples, the per-peer local triple database
//! `DB_p` with the three relational operators (selection σ, projection
//! π, self-join ⋈), triple patterns and conjunctive queries, an
//! RDQL-subset parser, and the peer-scoped GUID scheme.
//!
//! This crate is deliberately free of any networking or overlay
//! dependency: it is the "what" of GridVine's data, while
//! `gridvine-pgrid` is the "where" and `gridvine-core` the "how".
//!
//! ## Architecture: interned terms, id indexes, hash joins
//!
//! The storage and query layer is organized around a term dictionary
//! ([`dict`]): every distinct lexical value entering a [`TripleStore`]
//! is interned to a dense [`TermId`], and a stored triple is one row of
//! three ids (plus the object's uri/literal kind). On top of that:
//!
//! * **selection** — the three per-position indexes are posting lists
//!   keyed by id (`HashMap<TermId, Vec<u32>>`); probing a value the
//!   store has never seen is one hash, no allocation. Each position
//!   additionally keeps a sorted key index (`BTreeMap<Arc<str>,
//!   TermId>`, sharing the dictionary's buffers), so `select_like`
//!   prefix patterns (`abc%`) run as range scans, and suffix/contains
//!   patterns scan the *distinct terms* of a position rather than its
//!   rows;
//! * **join** — conjunctive evaluation runs in the hash-join binding
//!   engine ([`join`]): solution rows are `Vec<u64>` term codes over the
//!   query's variable slots ([`join::VarTable`]), merged by hashing the
//!   shared variables ([`join::hash_join_rows`]) instead of the old
//!   O(n·m) nested loop over string-keyed maps. The distributed engine
//!   in `gridvine-core` reuses the same kernel with a query-scoped
//!   [`join::TermInterner`], since rows arriving from remote peers are
//!   coded against the origin's interner rather than any one store's
//!   dictionary;
//! * **result boundary** — strings are materialized back into [`Term`]s
//!   and [`Binding`]s only for rows that survive selection, join and
//!   projection.
//!
//! ```
//! use gridvine_rdf::prelude::*;
//!
//! let mut db = TripleStore::new();
//! db.insert(Triple::new(
//!     "embl:A78712",
//!     "EMBL#Organism",
//!     Term::literal("Aspergillus niger"),
//! ));
//! let q = parse_single(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#).unwrap();
//! assert_eq!(q.evaluate(&db), vec![Term::uri("embl:A78712")]);
//! ```

pub mod dict;
pub mod fasthash;
pub mod guid;
pub mod join;
pub mod parser;
pub mod query;
pub mod store;
pub mod term;
pub mod triple;

/// Glob-import surface.
pub mod prelude {
    pub use crate::dict::{SharedTermDict, TermDict, TermId};
    pub use crate::guid::Guid;
    pub use crate::parser::{parse_query, parse_single, ParseError};
    pub use crate::query::{ConjunctiveQuery, QueryError, TriplePatternQuery};
    pub use crate::store::{PatternMatches, RowCursor, TripleRef, TripleStore};
    pub use crate::term::{like_match, LikePattern, Term, Uri};
    pub use crate::triple::{Binding, PatternTerm, Position, Triple, TriplePattern};
}

pub use dict::{SharedTermDict, TermDict, TermId};
pub use guid::Guid;
pub use parser::{parse_query, parse_single, ParseError};
pub use query::{ConjunctiveQuery, QueryError, TriplePatternQuery};
pub use store::{PatternMatches, RowCursor, TripleRef, TripleStore};
pub use term::{like_match, LikePattern, Term, Uri};
pub use triple::{Binding, PatternTerm, Position, Triple, TriplePattern};
