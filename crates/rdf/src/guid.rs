//! Globally unique identifiers for local resources and schemas.
//!
//! "Whenever necessary, globally unique identifiers are created for local
//! resources and schemas by concatenating the logical address π(p) of the
//! peer p posting the item with a hash of the local identifier or schema
//! name" (§2.2).

use crate::term::Uri;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A GridVine GUID: `gv://<peer-path>/<local-hash>#<local-name>`.
///
/// The human-readable local name is kept as a fragment so reformulated
/// queries and demo output stay legible; equality and hashing use the
/// full identifier.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Guid {
    peer_path: String,
    local_hash: u64,
    local_name: String,
}

impl Guid {
    /// Mint a GUID at the peer with logical address `peer_path`
    /// (a `"0101"`-style binary string) for `local_name`.
    pub fn mint(peer_path: &str, local_name: &str) -> Guid {
        debug_assert!(
            peer_path.chars().all(|c| c == '0' || c == '1'),
            "peer path must be binary"
        );
        Guid {
            peer_path: peer_path.to_string(),
            local_hash: fnv64(local_name),
            local_name: local_name.to_string(),
        }
    }

    pub fn peer_path(&self) -> &str {
        &self.peer_path
    }

    pub fn local_name(&self) -> &str {
        &self.local_name
    }

    /// Render as a URI for use in triples.
    pub fn to_uri(&self) -> Uri {
        Uri::new(format!(
            "gv://{}/{:016x}#{}",
            self.peer_path, self.local_hash, self.local_name
        ))
    }

    /// Parse back from the URI form produced by [`Guid::to_uri`].
    pub fn parse(uri: &Uri) -> Option<Guid> {
        let s = uri.as_str().strip_prefix("gv://")?;
        let (path, rest) = s.split_once('/')?;
        let (hash_hex, name) = rest.split_once('#')?;
        let local_hash = u64::from_str_radix(hash_hex, 16).ok()?;
        Some(Guid {
            peer_path: path.to_string(),
            local_hash,
            local_name: name.to_string(),
        })
    }
}

impl fmt::Display for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_uri().as_str())
    }
}

impl fmt::Debug for Guid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_different_peer_differs() {
        let a = Guid::mint("0101", "MySchema");
        let b = Guid::mint("0110", "MySchema");
        assert_ne!(a, b);
        assert_ne!(a.to_uri(), b.to_uri());
    }

    #[test]
    fn same_peer_different_name_differs() {
        let a = Guid::mint("0101", "SchemaA");
        let b = Guid::mint("0101", "SchemaB");
        assert_ne!(a, b);
    }

    #[test]
    fn uri_round_trip() {
        let g = Guid::mint("001101", "EMBL-Schema_v2");
        let parsed = Guid::parse(&g.to_uri()).expect("round trip");
        assert_eq!(g, parsed);
        assert_eq!(parsed.peer_path(), "001101");
        assert_eq!(parsed.local_name(), "EMBL-Schema_v2");
    }

    #[test]
    fn parse_rejects_foreign_uris() {
        assert!(Guid::parse(&Uri::new("EMBL#Organism")).is_none());
        assert!(Guid::parse(&Uri::new("gv://missing-parts")).is_none());
        assert!(Guid::parse(&Uri::new("gv://01/nothex#x")).is_none());
    }

    #[test]
    fn mint_is_deterministic() {
        assert_eq!(Guid::mint("01", "x"), Guid::mint("01", "x"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// GUID URIs always round-trip.
        #[test]
        fn guid_round_trip(path in "[01]{0,12}", name in "[A-Za-z0-9_-]{1,20}") {
            let g = Guid::mint(&path, &name);
            prop_assert_eq!(Guid::parse(&g.to_uri()), Some(g));
        }

        /// Distinct (path, name) pairs give distinct URIs.
        #[test]
        fn guid_injective(p1 in "[01]{1,8}", p2 in "[01]{1,8}",
                          n1 in "[a-z]{1,8}", n2 in "[a-z]{1,8}") {
            prop_assume!((p1.clone(), n1.clone()) != (p2.clone(), n2.clone()));
            let a = Guid::mint(&p1, &n1);
            let b = Guid::mint(&p2, &n2);
            prop_assert_ne!(a.to_uri(), b.to_uri());
        }
    }
}
