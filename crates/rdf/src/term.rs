//! RDF terms: URIs and literals.
//!
//! GridVine "stores data as ternary relations called triples. Triples are
//! a natural way to encode RDF information" (§2.2). A term is either a
//! resource URI or a literal value; subjects and predicates are always
//! URIs, objects may be either.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A resource identifier, e.g. `EMBL#Organism` or `embl:A78712`.
///
/// Backed by a reference-counted `Arc<str>`: cloning a term — and, more
/// importantly, materializing one out of a store's interned dictionary —
/// is a refcount bump, not a string copy.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Uri(Arc<str>);

impl Uri {
    pub fn new(s: impl Into<Arc<str>>) -> Uri {
        Uri(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared backing buffer (zero-copy interning path).
    pub(crate) fn shared(&self) -> &Arc<str> {
        &self.0
    }

    /// The namespace part (everything up to and including the last `#`
    /// or `:`), or the empty string.
    pub fn namespace(&self) -> &str {
        match self.0.rfind(['#', ':']) {
            Some(i) => &self.0[..=i],
            None => "",
        }
    }

    /// The local name after the namespace separator.
    pub fn local_name(&self) -> &str {
        match self.0.rfind(['#', ':']) {
            Some(i) => &self.0[i + 1..],
            None => &self.0,
        }
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl fmt::Debug for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Uri {
    fn from(s: &str) -> Uri {
        Uri::new(s)
    }
}

impl From<String> for Uri {
    fn from(s: String) -> Uri {
        Uri(Arc::from(s))
    }
}

impl From<Arc<str>> for Uri {
    fn from(s: Arc<str>) -> Uri {
        Uri(s)
    }
}

/// A subject/predicate/object value: resource or literal.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    Uri(Uri),
    Literal(Arc<str>),
}

impl Term {
    pub fn uri(s: impl Into<Arc<str>>) -> Term {
        Term::Uri(Uri::new(s))
    }

    pub fn literal(s: impl Into<Arc<str>>) -> Term {
        Term::Literal(s.into())
    }

    pub fn as_uri(&self) -> Option<&Uri> {
        match self {
            Term::Uri(u) => Some(u),
            Term::Literal(_) => None,
        }
    }

    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The raw text of the term — URI string or literal content. This is
    /// what the overlay-layer `Hash()` is applied to.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Uri(u) => u.as_str(),
            Term::Literal(s) => s,
        }
    }

    /// The shared backing buffer (zero-copy interning path).
    pub(crate) fn shared_lexical(&self) -> &Arc<str> {
        match self {
            Term::Uri(u) => u.shared(),
            Term::Literal(s) => s,
        }
    }

    /// SQL-`LIKE`-style match with `%` wildcards at either end, as used
    /// by the paper's `%Aspergillus%` example. Plain patterns compare
    /// exactly.
    pub fn matches_like(&self, pattern: &str) -> bool {
        like_match(self.lexical(), pattern)
    }
}

/// A `%`-wildcard pattern parsed once, so scans matching many values
/// classify the pattern a single time instead of per candidate — and so
/// the store can pick an access path from the shape (`Exact` hits the
/// hash index, `Prefix` becomes a sorted-index range scan).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LikePattern<'a> {
    /// `x` — exact equality.
    Exact(&'a str),
    /// `x%` — starts-with.
    Prefix(&'a str),
    /// `%x` — ends-with.
    Suffix(&'a str),
    /// `%x%` — contains.
    Contains(&'a str),
}

impl<'a> LikePattern<'a> {
    pub fn parse(pattern: &'a str) -> LikePattern<'a> {
        let starts = pattern.starts_with('%');
        let ends = pattern.len() > starts as usize && pattern.ends_with('%');
        let core = &pattern[starts as usize..pattern.len() - ends as usize];
        match (starts, ends) {
            (false, false) => LikePattern::Exact(core),
            (false, true) => LikePattern::Prefix(core),
            (true, false) => LikePattern::Suffix(core),
            (true, true) => LikePattern::Contains(core),
        }
    }

    /// The fixed text between the wildcards.
    pub fn core(&self) -> &'a str {
        match self {
            LikePattern::Exact(c)
            | LikePattern::Prefix(c)
            | LikePattern::Suffix(c)
            | LikePattern::Contains(c) => c,
        }
    }

    pub fn matches(&self, text: &str) -> bool {
        match self {
            LikePattern::Exact(c) => text == *c,
            LikePattern::Prefix(c) => text.starts_with(c),
            LikePattern::Suffix(c) => text.ends_with(c),
            LikePattern::Contains(c) => text.contains(c),
        }
    }
}

/// `%`-wildcard matching: `%x%` = contains, `%x` = ends-with,
/// `x%` = starts-with, `x` = equals.
pub fn like_match(text: &str, pattern: &str) -> bool {
    LikePattern::parse(pattern).matches(text)
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Uri(u) => write!(f, "{u}"),
            Term::Literal(s) => write!(f, "\"{s}\""),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Uri> for Term {
    fn from(u: Uri) -> Term {
        Term::Uri(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uri_namespace_split() {
        let u = Uri::new("EMBL#Organism");
        assert_eq!(u.namespace(), "EMBL#");
        assert_eq!(u.local_name(), "Organism");

        let c = Uri::new("embl:A78712");
        assert_eq!(c.namespace(), "embl:");
        assert_eq!(c.local_name(), "A78712");

        let bare = Uri::new("plain");
        assert_eq!(bare.namespace(), "");
        assert_eq!(bare.local_name(), "plain");
    }

    #[test]
    fn uri_picks_last_separator() {
        let u = Uri::new("http://ebi.ac.uk/embl#Organism");
        assert_eq!(u.local_name(), "Organism");
    }

    #[test]
    fn term_lexical() {
        assert_eq!(Term::uri("a#b").lexical(), "a#b");
        assert_eq!(Term::literal("x").lexical(), "x");
    }

    #[test]
    fn like_match_modes() {
        assert!(like_match("Aspergillus niger", "%Aspergillus%"));
        assert!(like_match("Aspergillus", "%Aspergillus%"));
        assert!(like_match("Aspergillus", "Aspergillus"));
        assert!(!like_match("Penicillium", "%Aspergillus%"));
        assert!(like_match("Aspergillus niger", "Aspergillus%"));
        assert!(!like_match("The Aspergillus", "Aspergillus%"));
        assert!(like_match("x/Aspergillus", "%Aspergillus"));
        assert!(!like_match("Aspergillus x", "%Aspergillus"));
    }

    #[test]
    fn like_match_edge_cases() {
        assert!(like_match("anything", "%%"));
        assert!(like_match("", ""));
        assert!(!like_match("a", ""));
        assert!(like_match("a", "%"));
    }

    #[test]
    fn term_matches_like() {
        let t = Term::literal("Aspergillus nidulans");
        assert!(t.matches_like("%Aspergillus%"));
        assert!(t.matches_like("%nidulans"));
        assert!(!t.matches_like("Aspergillus"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::uri("a#b").to_string(), "<a#b>");
        assert_eq!(Term::literal("x").to_string(), "\"x\"");
    }

    #[test]
    fn ordering_is_stable() {
        // Uri sorts before Literal per enum declaration order; within a
        // variant, lexicographic.
        let mut v = vec![
            Term::literal("b"),
            Term::uri("z"),
            Term::literal("a"),
            Term::uri("a"),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Term::uri("a"),
                Term::uri("z"),
                Term::literal("a"),
                Term::literal("b"),
            ]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Exact patterns match exactly themselves.
        #[test]
        fn exact_like_is_equality(a in "[a-zA-Z0-9 ]{0,20}", b in "[a-zA-Z0-9 ]{0,20}") {
            prop_assert_eq!(like_match(&a, &b), a == b);
        }

        /// `%s%` matches any string containing s.
        #[test]
        fn contains_like(pre in "[a-z]{0,8}", core in "[a-z]{1,8}", post in "[a-z]{0,8}") {
            let text = format!("{pre}{core}{post}");
            let pattern = format!("%{core}%");
            prop_assert!(like_match(&text, &pattern));
        }

        /// namespace + local_name reassemble the URI.
        #[test]
        fn uri_split_reassembles(ns in "[a-z]{1,8}[#:]", local in "[a-zA-Z0-9_]{1,12}") {
            let u = Uri::new(format!("{ns}{local}"));
            prop_assert_eq!(format!("{}{}", u.namespace(), u.local_name()), u.as_str());
        }
    }
}
