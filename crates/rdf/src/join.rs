//! The hash-join binding engine.
//!
//! Conjunctive evaluation — local ([`crate::ConjunctiveQuery::evaluate`],
//! [`crate::TripleStore::join`]) and distributed (`gridvine-core`'s
//! `search_conjunctive`) — used to merge binding sets with a nested loop
//! over [`crate::Binding::join`]: O(n·m) string-keyed map merges per
//! pattern. This module replaces that with a columnar representation and
//! a hash join:
//!
//! * a solution row is a `Vec<u64>` of *term codes*, one slot per query
//!   variable (see [`VarTable`]), [`UNBOUND`] where the variable is not
//!   yet bound;
//! * codes come from the store's term dictionary (local evaluation) or a
//!   query-scoped [`TermInterner`] (distributed evaluation, where every
//!   peer materializes terms into the wire format);
//! * [`hash_join_rows`] joins two row sets on their shared bound slots
//!   by hashing the smaller-keyed side, so a k-row ∧ m-row join costs
//!   O(k + m + output) `u64` comparisons instead of O(k·m) map merges.
//!
//! Strings are only touched again when the surviving rows are
//! materialized back into [`crate::Binding`]s at the result boundary.

use crate::fasthash::FxHashMap;
use crate::term::Term;
use crate::triple::{Binding, TriplePattern};

/// Code marking a variable slot not yet bound in a row.
pub const UNBOUND: u64 = u64::MAX;

/// The variable layout of a query: each distinct variable name is
/// assigned a dense slot, in order of first appearance.
///
/// Names are owned so a `VarTable` can outlive the query text it was
/// built from — session state (which owns its plan) stores one directly.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Build from the patterns of a conjunctive query.
    pub fn from_patterns<'p>(patterns: impl IntoIterator<Item = &'p TriplePattern>) -> VarTable {
        let mut t = VarTable::new();
        for p in patterns {
            for v in p.variables() {
                t.slot_of(v);
            }
        }
        t
    }

    /// Slot of a variable, assigning the next free one on first sight.
    pub fn slot_of(&mut self, name: &str) -> usize {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.names.push(name.to_string());
                self.names.len() - 1
            }
        }
    }

    /// Slot of an already-registered variable.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// A fresh row with every slot unbound.
    pub fn empty_row(&self) -> Vec<u64> {
        vec![UNBOUND; self.names.len()]
    }
}

/// Query-scoped interner mapping full [`Term`]s (kind + lexical) to
/// codes. Used where rows arrive as materialized terms from many peers,
/// each with its own store dictionary, so a shared coding space is
/// needed for the join.
#[derive(Debug, Clone, Default)]
pub struct TermInterner {
    codes: FxHashMap<Term, u64>,
    terms: Vec<Term>,
}

impl TermInterner {
    pub fn new() -> TermInterner {
        TermInterner::default()
    }

    pub fn code_of(&mut self, term: &Term) -> u64 {
        if let Some(&c) = self.codes.get(term) {
            return c;
        }
        let c = self.terms.len() as u64;
        assert!(c < UNBOUND, "term interner overflow");
        self.terms.push(term.clone());
        self.codes.insert(term.clone(), c);
        c
    }

    /// The term behind a code.
    ///
    /// # Panics
    /// Panics on codes not produced by this interner (incl. [`UNBOUND`]).
    pub fn term(&self, code: u64) -> &Term {
        &self.terms[code as usize]
    }

    /// Encode a [`Binding`] into a row over `vars`.
    pub fn encode(&mut self, binding: &Binding, vars: &VarTable) -> Vec<u64> {
        let mut row = vars.empty_row();
        for (name, term) in binding.iter() {
            if let Some(slot) = vars.slot(name) {
                row[slot] = self.code_of(term);
            }
        }
        row
    }

    /// Materialize a row back into a [`Binding`] (unbound slots skipped).
    pub fn decode(&self, row: &[u64], vars: &VarTable) -> Binding {
        let mut b = Binding::new();
        for (slot, &code) in row.iter().enumerate() {
            if code != UNBOUND {
                b.bind(vars.names()[slot].clone(), self.term(code).clone());
            }
        }
        b
    }
}

/// Slots bound in a row set (all rows of one set share a bound-slot
/// layout: every match of a pattern binds exactly the pattern's
/// variables, and accumulated solutions bind the union of the processed
/// patterns' variables).
fn bound_slots(rows: &[Vec<u64>]) -> Vec<usize> {
    rows.first()
        .map(|r| {
            r.iter()
                .enumerate()
                .filter(|(_, &c)| c != UNBOUND)
                .map(|(i, _)| i)
                .collect()
        })
        .unwrap_or_default()
}

/// Merge two rows slot-wise, left winning on doubly-bound slots (the
/// join key slots, where both sides carry the same code).
pub(crate) fn merge_rows(left: &[u64], right: &[u64]) -> Vec<u64> {
    left.iter()
        .zip(right)
        .map(|(&l, &r)| if l != UNBOUND { l } else { r })
        .collect()
}

/// Hash table of a built join side, specialized by shared-slot count:
/// the overwhelmingly common one-shared-variable join keys the map on
/// the bare `u64` code — no key `Vec` is ever allocated, at build or
/// probe — while multi-variable joins fall back to composite keys.
enum Table {
    /// No shared slots: every probe merges with every inner row.
    Cartesian,
    /// One shared slot: bare-code keys.
    One(usize, FxHashMap<u64, Vec<usize>>),
    /// Several shared slots: composite keys.
    Many(Vec<usize>, FxHashMap<Vec<u64>, Vec<usize>>),
}

/// A built (inner) side of a hash join, ready to be probed with rows
/// streamed one at a time — e.g. straight off a
/// [`crate::TripleStore::match_codes_iter`] cursor — without ever
/// collecting the probe side.
///
/// The inner rows are hashed once on the slots they share with the
/// probe side's bound-slot layout; [`HashJoiner::probe`] then emits the
/// merged rows a single probe row joins with, in inner insertion order.
/// With no shared slots every probe row merges with every inner row
/// (the cartesian product binding merge semantics require).
pub struct HashJoiner<'r> {
    inner: &'r [Vec<u64>],
    table: Table,
}

impl<'r> HashJoiner<'r> {
    /// Hash `inner` on the slots it shares with a probe side whose
    /// bound slots are `probe_bound`.
    pub fn new(inner: &'r [Vec<u64>], probe_bound: &[usize]) -> HashJoiner<'r> {
        let shared: Vec<usize> = bound_slots(inner)
            .into_iter()
            .filter(|s| probe_bound.contains(s))
            .collect();
        let table = match shared.as_slice() {
            [] => Table::Cartesian,
            &[slot] => {
                let mut map: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
                map.reserve(inner.len());
                for (i, r) in inner.iter().enumerate() {
                    map.entry(r[slot]).or_default().push(i);
                }
                Table::One(slot, map)
            }
            _ => {
                let mut map: FxHashMap<Vec<u64>, Vec<usize>> = FxHashMap::default();
                map.reserve(inner.len());
                for (i, r) in inner.iter().enumerate() {
                    let key: Vec<u64> = shared.iter().map(|&s| r[s]).collect();
                    map.entry(key).or_default().push(i);
                }
                Table::Many(shared, map)
            }
        };
        HashJoiner { inner, table }
    }

    /// Append to `out` the merged rows `probe` joins with.
    pub fn probe(&self, probe: &[u64], out: &mut Vec<Vec<u64>>) {
        match &self.table {
            Table::Cartesian => {
                for r in self.inner {
                    out.push(merge_rows(probe, r));
                }
            }
            Table::One(slot, map) => {
                if let Some(matches) = map.get(&probe[*slot]) {
                    for &i in matches {
                        out.push(merge_rows(probe, &self.inner[i]));
                    }
                }
            }
            Table::Many(slots, map) => {
                let key: Vec<u64> = slots.iter().map(|&s| probe[s]).collect();
                if let Some(matches) = map.get(&key) {
                    for &i in matches {
                        out.push(merge_rows(probe, &self.inner[i]));
                    }
                }
            }
        }
    }
}

/// Hash-join two row sets on their shared bound slots.
///
/// Produces exactly the rows the nested loop over [`Binding::join`]
/// would (same multiset, same order: left-major, then right insertion
/// order), at O(|left| + |right| + |output|). With no shared slots this
/// degenerates to the cartesian product, as binding merge semantics
/// require. Implemented as a [`HashJoiner`] built over `right` and
/// probed with each `left` row in order — except for a single-row left
/// side (the executor's bound-join groups substitute one member at a
/// time), which filters `right` directly on the shared slots: same
/// rows, same order, no table build at all.
pub fn hash_join_rows(left: &[Vec<u64>], right: &[Vec<u64>]) -> Vec<Vec<u64>> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    if let [l] = left {
        let shared: Vec<usize> = bound_slots(right)
            .into_iter()
            .filter(|&s| l[s] != UNBOUND)
            .collect();
        let mut out = Vec::new();
        for r in right {
            if shared.iter().all(|&s| r[s] == l[s]) {
                out.push(merge_rows(l, r));
            }
        }
        return out;
    }
    let joiner = HashJoiner::new(right, &bound_slots(left));
    let mut out = Vec::new();
    for l in left {
        joiner.probe(l, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    #[test]
    fn var_table_assigns_dense_slots_in_first_seen_order() {
        let mut t = VarTable::new();
        assert_eq!(t.slot_of("x"), 0);
        assert_eq!(t.slot_of("len"), 1);
        assert_eq!(t.slot_of("x"), 0);
        assert_eq!(t.slot("len"), Some(1));
        assert_eq!(t.slot("nope"), None);
        assert_eq!(t.empty_row(), vec![UNBOUND, UNBOUND]);
    }

    #[test]
    fn interner_codes_are_kind_sensitive() {
        let mut i = TermInterner::new();
        let u = i.code_of(&Term::uri("x"));
        let l = i.code_of(&Term::literal("x"));
        assert_ne!(u, l, "uri and literal with equal lexical must differ");
        assert_eq!(i.term(u), &Term::uri("x"));
        assert_eq!(i.term(l), &Term::literal("x"));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut vars = VarTable::new();
        vars.slot_of("x");
        vars.slot_of("y");
        let mut i = TermInterner::new();
        let mut b = Binding::new();
        b.bind("x".into(), Term::uri("u"));
        let row = i.encode(&b, &vars);
        assert_eq!(row[1], UNBOUND);
        assert_eq!(i.decode(&row, &vars), b);
    }

    #[test]
    fn join_on_shared_slot_filters_and_merges() {
        // vars: [x, a, b]; left binds (x, a), right binds (x, b).
        let left = vec![vec![1, 10, UNBOUND], vec![2, 20, UNBOUND]];
        let right = vec![
            vec![1, UNBOUND, 100],
            vec![3, UNBOUND, 300],
            vec![1, UNBOUND, 101],
        ];
        let out = hash_join_rows(&left, &right);
        assert_eq!(out, vec![vec![1, 10, 100], vec![1, 10, 101]]);
    }

    #[test]
    fn join_without_shared_slots_is_cartesian() {
        let left = vec![vec![1, UNBOUND], vec![2, UNBOUND]];
        let right = vec![vec![UNBOUND, 7], vec![UNBOUND, 8]];
        let out = hash_join_rows(&left, &right);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], vec![1, 7]);
        assert_eq!(out[3], vec![2, 8]);
    }

    #[test]
    fn empty_sides_yield_empty_join() {
        let rows = vec![vec![1u64]];
        assert!(hash_join_rows(&[], &rows).is_empty());
        assert!(hash_join_rows(&rows, &[]).is_empty());
    }

    #[test]
    fn single_row_left_takes_the_build_free_path_with_identical_output() {
        // One left row (the executor's bound-join member shape): output
        // must be exactly what the table path would emit, both on the
        // matching and the cartesian shape.
        let right = vec![
            vec![1, UNBOUND, 100],
            vec![3, UNBOUND, 300],
            vec![1, UNBOUND, 101],
        ];
        let l = vec![vec![1u64, 10, UNBOUND]];
        assert_eq!(
            hash_join_rows(&l, &right),
            vec![vec![1, 10, 100], vec![1, 10, 101]]
        );
        let unshared = vec![vec![UNBOUND, 10, UNBOUND]];
        assert_eq!(hash_join_rows(&unshared, &right).len(), 3);
    }

    #[test]
    fn multi_shared_slot_join_uses_composite_keys() {
        // Two shared slots force the composite-key table; both slots
        // must participate in the match.
        let left = vec![
            vec![1, 5, UNBOUND, 10],
            vec![1, 6, UNBOUND, 11],
            vec![2, 5, UNBOUND, 12],
        ];
        let right = vec![vec![1, 5, 100, UNBOUND], vec![2, 6, 200, UNBOUND]];
        let out = hash_join_rows(&left, &right);
        assert_eq!(out, vec![vec![1, 5, 100, 10]]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::term::Term;
    use proptest::prelude::*;

    /// Random binding sets over a small var/value pool, as (slot, value)
    /// assignments. `left_vars`/`right_vars` control which slots each
    /// side binds, so joins exercise 0–3 shared variables.
    fn arb_side(vars: [bool; 4]) -> impl Strategy<Value = Vec<Vec<(usize, u8)>>> {
        let assignments: Vec<usize> = vars
            .iter()
            .enumerate()
            .filter(|(_, &on)| on)
            .map(|(i, _)| i)
            .collect();
        proptest::collection::vec(proptest::collection::vec(0u8..4, assignments.len()), 0..12)
            .prop_map(move |rows| {
                rows.into_iter()
                    .map(|vals| assignments.iter().copied().zip(vals).collect())
                    .collect()
            })
    }

    const VAR_NAMES: [&str; 4] = ["a", "b", "c", "d"];

    fn to_binding(assignment: &[(usize, u8)]) -> Binding {
        let mut b = Binding::new();
        for &(slot, v) in assignment {
            b.bind(VAR_NAMES[slot].to_string(), Term::literal(format!("v{v}")));
        }
        b
    }

    proptest! {
        /// The hash join agrees with the naive nested loop over
        /// `Binding::join` — same rows, same order — for every
        /// combination of shared variables.
        #[test]
        fn hash_join_matches_nested_loop(
            lmask in 0usize..16,
            rmask in 0usize..16,
            seed_left in arb_side([true, true, false, false]),
            seed_right in arb_side([false, true, true, true]),
        ) {
            // Re-mask the generated sides so all share shapes occur.
            let lvars = [lmask & 1 != 0, lmask & 2 != 0, lmask & 4 != 0, lmask & 8 != 0];
            let left: Vec<Vec<(usize, u8)>> = seed_left
                .iter()
                .map(|row| row.iter().copied().filter(|(s, _)| lvars[*s]).collect())
                .collect();
            let rvars = [rmask & 1 != 0, rmask & 2 != 0, rmask & 4 != 0, rmask & 8 != 0];
            let right: Vec<Vec<(usize, u8)>> = seed_right
                .iter()
                .map(|row| row.iter().copied().filter(|(s, _)| rvars[*s]).collect())
                .collect();
            // Rows within a side must share a bound-slot layout (as the
            // engine's callers guarantee); masking preserves that.
            let lb: Vec<Binding> = left.iter().map(|r| to_binding(r)).collect();
            let rb: Vec<Binding> = right.iter().map(|r| to_binding(r)).collect();

            // Naive reference: nested loop over Binding::join.
            let mut expected: Vec<Binding> = Vec::new();
            for l in &lb {
                for r in &rb {
                    if let Some(j) = l.join(r) {
                        expected.push(j);
                    }
                }
            }

            // Engine under test.
            let mut vars = VarTable::new();
            for n in VAR_NAMES {
                vars.slot_of(n);
            }
            let mut interner = TermInterner::new();
            let lrows: Vec<Vec<u64>> = lb.iter().map(|b| interner.encode(b, &vars)).collect();
            let rrows: Vec<Vec<u64>> = rb.iter().map(|b| interner.encode(b, &vars)).collect();
            let joined: Vec<Binding> = hash_join_rows(&lrows, &rrows)
                .iter()
                .map(|r| interner.decode(r, &vars))
                .collect();

            prop_assert_eq!(joined, expected);
        }
    }
}
