//! The interned term dictionary: lexical values ⇄ dense [`TermId`]s.
//!
//! Every distinct lexical form (URI text or literal text) that enters a
//! [`crate::TripleStore`] is interned exactly once and addressed by a
//! dense `u32` id from then on. Triples are stored as id columns, the
//! store's indexes are keyed by id, and selections/joins compare ids —
//! string bytes are only touched at ingest (one hash of the lexical) and
//! at the result boundary (materializing terms for the caller).
//!
//! ## Sharding
//!
//! The dictionary is split into [`SHARDS`] independent shards selected
//! by high hash bits. A [`TermId`] packs the owning shard into its low
//! [`SHARD_BITS`] bits and the shard-local id above them, so resolving
//! stays a two-load array access and ids remain *almost* dense: the id
//! space wastes at most the shard skew, which a balanced hash keeps to a
//! few percent ([`TermDict::id_bound`] is the array-sizing bound).
//! Sharding buys two things:
//!
//! * **parallel interning** — bulk ingest pre-hashes its lexicals once
//!   and interns them on one scoped thread per shard, each thread owning
//!   its shard exclusively ([`TermDict::intern_shared_batch`]): no locks,
//!   no CAS retries, just disjoint ownership;
//! * **shared handles** — [`SharedTermDict`] wraps the same shards in
//!   per-shard mutexes behind an `Arc`, so the peer stores hosted in one
//!   process pool their string buffers through one handle while threads
//!   contend only on the shard they hash to.
//!
//! The string data itself lives in reference-counted `Arc<str>` buffers
//! shared between the id→string table, the string→id map, the sorted
//! per-position key indexes and any pooled handles, so each distinct
//! lexical is stored once regardless of how many rows, indexes or
//! stores reference it.

use crate::fasthash::FxHasher;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hasher;
use std::sync::{Arc, Mutex};

/// log2 of the shard count of a [`TermDict`].
pub const SHARD_BITS: u32 = 3;
/// Number of independent shards in a [`TermDict`].
pub const SHARDS: usize = 1 << SHARD_BITS;

/// Dense identifier of an interned lexical value.
///
/// The low [`SHARD_BITS`] bits name the owning shard, the bits above
/// them the shard-local id. Ids are stable for the lifetime of the
/// owning [`TermDict`] (a [`crate::TripleStore::compact`] rebuilds the
/// dictionary and may renumber).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    fn assemble(shard: usize, local: u32) -> TermId {
        TermId((local << SHARD_BITS) | shard as u32)
    }

    #[inline]
    fn shard(self) -> usize {
        (self.0 & (SHARDS as u32 - 1)) as usize
    }

    #[inline]
    fn local(self) -> usize {
        (self.0 >> SHARD_BITS) as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Hash of a lexical value: Fx over the bytes, with a final avalanche
/// mix so the table index (low bits), the stored verifier (all 64 bits)
/// and the shard selector (high bits) are all well distributed.
#[inline]
pub(crate) fn hash_lexical(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    let mut z = h.finish();
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

/// Shard selector: high hash bits, independent of the low bits the
/// in-shard table indexes with.
#[inline]
fn shard_of(hash: u64, shards: usize) -> usize {
    ((hash >> 48) as usize) & (shards - 1)
}

const EMPTY: u32 = u32::MAX;

/// One open-addressing slot: hash verifier + id, interleaved so a probe
/// touches a single cache line.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Slot {
    hash: u64,
    id: u32,
}

const VACANT: Slot = Slot { hash: 0, id: EMPTY };

/// Open-addressed `(hash64, id)` slots. A probe touches one flat array
/// and compares `u64`s; the interned string itself is only read to
/// verify a full 64-bit hash match (i.e. almost only on true hits) —
/// the hot path costs one cache miss, not a bucket walk plus a
/// scattered key compare.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct IdTable {
    /// Power-of-two length; `id == EMPTY` marks a vacant slot.
    slots: Vec<Slot>,
    len: usize,
}

impl IdTable {
    fn probe(&self, hash: u64, is_match: impl Fn(u32) -> bool) -> Result<u32, usize> {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot.id == EMPTY {
                return Err(i);
            }
            if slot.hash == hash && is_match(slot.id) {
                return Ok(slot.id);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap >= self.slots.len());
        let old = std::mem::replace(&mut self.slots, vec![VACANT; cap]);
        let mask = cap - 1;
        for slot in old {
            if slot.id == EMPTY {
                continue;
            }
            let mut i = (slot.hash as usize) & mask;
            while self.slots[i].id != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }

    fn grow(&mut self) {
        self.grow_to((self.slots.len() * 2).max(16));
    }
}

/// One independent dictionary shard: an open-addressed id table plus the
/// id→string column. Shard-local ids are dense from 0.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Shard {
    table: IdTable,
    terms: Vec<Arc<str>>,
}

impl Shard {
    /// Locate a pre-hashed lexical, or the vacant slot where it belongs.
    fn find_or_slot(&mut self, hash: u64, lexical: &str) -> Result<u32, usize> {
        // Keep load factor under 5/8: linear probing degrades fast past
        // that, and short probe runs matter more than table bytes for
        // the point-lookup path (growing may move the vacant slot, so
        // grow before probing).
        if (self.table.len + 1) * 8 > self.table.slots.len() * 5 {
            self.table.grow();
        }
        self.table
            .probe(hash, |id| &*self.terms[id as usize] == lexical)
    }

    fn insert_new(&mut self, arc: Arc<str>, slot: usize, hash: u64) -> u32 {
        let local = u32::try_from(self.terms.len()).expect("term dictionary shard overflow");
        assert!(
            local < (u32::MAX >> SHARD_BITS),
            "term dictionary shard overflow"
        );
        self.table.slots[slot] = Slot { hash, id: local };
        self.table.len += 1;
        self.terms.push(arc);
        local
    }

    /// Intern a pre-hashed shared buffer, returning the shard-local id.
    fn intern_shared(&mut self, hash: u64, lexical: &Arc<str>) -> u32 {
        match self.find_or_slot(hash, lexical) {
            Ok(local) => local,
            Err(slot) => self.insert_new(Arc::clone(lexical), slot, hash),
        }
    }

    fn lookup(&self, hash: u64, lexical: &str) -> Option<u32> {
        if self.table.slots.is_empty() {
            return None;
        }
        self.table
            .probe(hash, |id| &*self.terms[id as usize] == lexical)
            .ok()
    }

    fn reserve(&mut self, additional: usize) {
        let needed = (self.terms.len() + additional) * 8 / 5 + 1;
        if needed > self.table.slots.len() {
            self.table.grow_to(needed.next_power_of_two().max(16));
        }
        self.terms.reserve(additional);
    }
}

/// Bidirectional map between lexical values and [`TermId`]s, split into
/// [`SHARDS`] hash-selected shards (see the module docs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TermDict {
    shards: Vec<Shard>,
}

impl Default for TermDict {
    fn default() -> TermDict {
        TermDict {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }
}

impl TermDict {
    pub fn new() -> TermDict {
        TermDict::default()
    }

    /// Number of distinct interned lexical values.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.terms.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.terms.is_empty())
    }

    /// Exclusive upper bound on `TermId::index()` over every id this
    /// dictionary has issued — the sizing bound for arrays directly
    /// indexed by id. Exceeds [`TermDict::len`] only by the shard skew.
    pub fn id_bound(&self) -> usize {
        self.shards.iter().map(|s| s.terms.len()).max().unwrap_or(0) << SHARD_BITS
    }

    /// Intern a lexical value, allocating an id on first sight.
    pub fn intern(&mut self, lexical: &str) -> TermId {
        let hash = hash_lexical(lexical);
        let shard = shard_of(hash, SHARDS);
        match self.shards[shard].find_or_slot(hash, lexical) {
            Ok(local) => TermId::assemble(shard, local),
            Err(slot) => {
                let local = self.shards[shard].insert_new(Arc::from(lexical), slot, hash);
                TermId::assemble(shard, local)
            }
        }
    }

    /// Intern an already-shared buffer: a first-seen value is adopted by
    /// reference count, with no string copy at all.
    pub fn intern_shared(&mut self, lexical: &Arc<str>) -> TermId {
        let hash = hash_lexical(lexical);
        let shard = shard_of(hash, SHARDS);
        TermId::assemble(shard, self.shards[shard].intern_shared(hash, lexical))
    }

    /// Bulk interning: hash every lexical once, then intern shard-by-
    /// shard — one scoped thread per shard for large batches, each
    /// owning its shard exclusively (no locks). Returns one id per
    /// input, in input order.
    ///
    /// This is the parallel half of [`crate::TripleStore::insert_batch`]:
    /// dictionary work is the string-touching part of ingest, and it
    /// partitions perfectly by shard.
    pub fn intern_shared_batch(&mut self, lexicals: &[&Arc<str>]) -> Vec<TermId> {
        let hashes: Vec<u64> = lexicals.iter().map(|l| hash_lexical(l)).collect();
        let mut ids: Vec<TermId> = vec![TermId(0); lexicals.len()];
        // Sequential cutoff: thread spawn + the 8 extra hash-array scans
        // only pay for themselves on batches with real interning volume
        // and actual cores to spread over.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 2 || lexicals.len() < 16_384 {
            for ((id, &hash), lexical) in ids.iter_mut().zip(&hashes).zip(lexicals) {
                let shard = shard_of(hash, SHARDS);
                *id = TermId::assemble(shard, self.shards[shard].intern_shared(hash, lexical));
            }
            return ids;
        }
        let assigned: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(k, shard)| {
                    let hashes = &hashes;
                    scope.spawn(move || {
                        let mut out: Vec<(u32, u32)> = Vec::new();
                        for (i, &hash) in hashes.iter().enumerate() {
                            if shard_of(hash, SHARDS) == k {
                                out.push((i as u32, shard.intern_shared(hash, lexicals[i])));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (shard, pairs) in assigned.iter().enumerate() {
            for &(i, local) in pairs {
                ids[i as usize] = TermId::assemble(shard, local);
            }
        }
        ids
    }

    /// Pre-size the table for `additional` more distinct values, so bulk
    /// interning proceeds without intermediate growth rehashes. Prefer
    /// accurate estimates: an oversized table costs more in probe cache
    /// misses than geometric growth would.
    pub fn reserve(&mut self, additional: usize) {
        let per_shard = additional.div_ceil(SHARDS);
        for shard in &mut self.shards {
            shard.reserve(per_shard);
        }
    }

    /// Id of an already-interned value, if any. The read-only half of
    /// [`TermDict::intern`]: selections use it so probing for a value
    /// the store has never seen is a single hash and no allocation.
    #[inline]
    pub fn lookup(&self, lexical: &str) -> Option<TermId> {
        let hash = hash_lexical(lexical);
        let shard = shard_of(hash, SHARDS);
        self.shards[shard]
            .lookup(hash, lexical)
            .map(|local| TermId::assemble(shard, local))
    }

    /// The lexical value of an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    #[inline]
    pub fn resolve(&self, id: TermId) -> &str {
        &self.shards[id.shard()].terms[id.local()]
    }

    /// Shared handle to the interned buffer (for secondary indexes that
    /// key on the string without copying it).
    #[inline]
    pub(crate) fn shared(&self, id: TermId) -> Arc<str> {
        Arc::clone(&self.shards[id.shard()].terms[id.local()])
    }

    /// Resolve a batch of ids into `out` (cleared first): the gather
    /// primitive of the store's position-major batch materialization —
    /// one tight sweep per position instead of interleaved per-row
    /// resolves across all three.
    pub(crate) fn resolve_many<'a>(&'a self, ids: &[TermId], out: &mut Vec<&'a str>) {
        out.clear();
        out.extend(ids.iter().map(|&id| self.resolve(id)));
    }

    /// Batch twin of [`TermDict::shared`]: shared handles for a batch
    /// of ids, into `out` (cleared first).
    pub(crate) fn shared_many(&self, ids: &[TermId], out: &mut Vec<Arc<str>>) {
        out.clear();
        out.extend(ids.iter().map(|&id| self.shared(id)));
    }
}

/// A process-wide, thread-safe string pool: the same hash-sharded
/// dictionary as [`TermDict`], but with per-shard mutexes behind an
/// `Arc` so it can be shared between peer stores and interning threads.
///
/// Each peer's [`crate::TripleStore`] keeps its own dense id space (ids
/// are meaningless across stores anyway), so the shared handle pools
/// *buffers*, not ids: [`SharedTermDict::intern`] returns the canonical
/// `Arc<str>` for a lexical, and a store that interns that buffer
/// adopts it by reference count. Hosting N peer stores in one process
/// then stores each distinct lexical once, no matter how many peers'
/// databases it appears in — and N ingesting threads contend only when
/// they hash to the same shard.
#[derive(Debug, Clone)]
pub struct SharedTermDict {
    shards: Arc<Vec<Mutex<Shard>>>,
}

impl Default for SharedTermDict {
    fn default() -> SharedTermDict {
        SharedTermDict::with_shards(SHARDS)
    }
}

impl SharedTermDict {
    /// A pool with the default shard count ([`SHARDS`]).
    pub fn new() -> SharedTermDict {
        SharedTermDict::default()
    }

    /// A pool with an explicit power-of-two shard count. `1` degrades to
    /// a single global lock — the ablation baseline for measuring what
    /// sharding buys under concurrent ingest.
    ///
    /// The requested count is an **upper bound**: lock sharding exists
    /// to eliminate contention between concurrently interning threads,
    /// and a host cannot run more interning threads in parallel than it
    /// has cores — so the pool never allocates more shards than
    /// [`available_parallelism`](std::thread::available_parallelism)
    /// (rounded down to a power of two). On a single-core host every
    /// request degrades to the one-lock pool, routing around the
    /// sharded pool's pure coordination overhead (8 sparsely-filled
    /// tables with worse cache locality and zero contention to
    /// eliminate — the `parallel_ingest_8way` regression on 1-CPU CI).
    pub fn with_shards(shards: usize) -> SharedTermDict {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // Largest power of two ≤ cores (cores ≥ 1 always).
        let cap = 1usize << (usize::BITS - 1 - cores.leading_zeros());
        let shards = shards.min(cap);
        SharedTermDict {
            shards: Arc::new((0..shards).map(|_| Mutex::new(Shard::default())).collect()),
        }
    }

    /// Number of lock shards actually allocated (the requested count
    /// capped by the host's available parallelism).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The canonical shared buffer for a lexical value, interning it on
    /// first sight. One lock, scoped to the shard the value hashes to.
    pub fn intern(&self, lexical: &str) -> Arc<str> {
        let hash = hash_lexical(lexical);
        let mut shard = self.shards[shard_of(hash, self.shards.len())]
            .lock()
            .expect("dictionary shard poisoned");
        match shard.find_or_slot(hash, lexical) {
            Ok(local) => Arc::clone(&shard.terms[local as usize]),
            Err(slot) => {
                let arc: Arc<str> = Arc::from(lexical);
                shard.insert_new(Arc::clone(&arc), slot, hash);
                arc
            }
        }
    }

    /// Like [`SharedTermDict::intern`] but adopting an already-shared
    /// buffer on first sight (no copy), e.g. a term out of a wire
    /// message or another store's dictionary.
    pub fn intern_shared(&self, lexical: &Arc<str>) -> Arc<str> {
        let hash = hash_lexical(lexical);
        let mut shard = self.shards[shard_of(hash, self.shards.len())]
            .lock()
            .expect("dictionary shard poisoned");
        match shard.find_or_slot(hash, lexical) {
            Ok(local) => Arc::clone(&shard.terms[local as usize]),
            Err(slot) => {
                shard.insert_new(Arc::clone(lexical), slot, hash);
                Arc::clone(lexical)
            }
        }
    }

    /// Rebuild a triple over the pool's canonical buffers: refcount
    /// bumps for known lexicals, zero-copy adoption for new ones. Peer
    /// stores that ingest canonicalized triples end up sharing one
    /// buffer per distinct lexical across the whole process.
    pub fn canonical_triple(&self, t: &crate::triple::Triple) -> crate::triple::Triple {
        use crate::term::{Term, Uri};
        let object = match &t.object {
            Term::Uri(u) => Term::Uri(Uri::from(self.intern_shared(u.shared()))),
            Term::Literal(s) => Term::Literal(self.intern_shared(s)),
        };
        crate::triple::Triple::new(
            Uri::from(self.intern_shared(t.subject.shared())),
            Uri::from(self.intern_shared(t.predicate.shared())),
            object,
        )
    }

    /// Number of distinct pooled lexicals.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("dictionary shard poisoned").terms.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TermDict::new();
        let a = d.intern("EMBL#Organism");
        let b = d.intern("embl:A78712");
        let a2 = d.intern("EMBL#Organism");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert!(d.id_bound() > a.index().max(b.index()));
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = TermDict::new();
        for s in ["", "a", "Aspergillus niger", "seq:A78712", "100%"] {
            let id = d.intern(s);
            assert_eq!(d.resolve(id), s);
            assert_eq!(d.lookup(s), Some(id));
        }
        assert_eq!(d.lookup("never seen"), None);
    }

    #[test]
    fn shared_pool_caps_shards_at_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool = SharedTermDict::with_shards(8);
        assert!(pool.shard_count() >= 1);
        assert!(pool.shard_count() <= 8);
        assert!(
            pool.shard_count() <= cores,
            "never more lock shards ({}) than cores ({cores})",
            pool.shard_count()
        );
        // An explicit single shard is always honoured (the ablation
        // baseline), and the cap keeps counts a power of two.
        assert_eq!(SharedTermDict::with_shards(1).shard_count(), 1);
        assert!(pool.shard_count().is_power_of_two());
    }

    #[test]
    fn shared_buffers_are_refcounted_not_copied() {
        let mut d = TermDict::new();
        let id = d.intern("EMBL#Organism");
        let h1 = d.shared(id);
        let h2 = d.shared(id);
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn batch_interning_agrees_with_sequential() {
        let strings: Vec<Arc<str>> = (0..100)
            .map(|i| Arc::from(format!("term-{}", i % 37).as_str()))
            .collect();
        let refs: Vec<&Arc<str>> = strings.iter().collect();
        let mut seq = TermDict::new();
        let seq_ids: Vec<TermId> = refs.iter().map(|s| seq.intern_shared(s)).collect();
        let mut batch = TermDict::new();
        let batch_ids = batch.intern_shared_batch(&refs);
        assert_eq!(seq_ids, batch_ids);
        assert_eq!(seq.len(), batch.len());
    }

    #[test]
    fn shared_pool_canonicalizes_buffers() {
        let pool = SharedTermDict::new();
        let a = pool.intern("EMBL#Organism");
        let b = pool.intern("EMBL#Organism");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 1);
        // Adopting a pre-shared buffer keeps it canonical.
        let pre: Arc<str> = Arc::from("embl:A78712");
        let c = pool.intern_shared(&pre);
        assert!(Arc::ptr_eq(&pre, &c));
        assert!(Arc::ptr_eq(&pool.intern("embl:A78712"), &pre));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn shared_pool_handles_are_one_pool() {
        let pool = SharedTermDict::with_shards(2);
        let clone = pool.clone();
        let a = pool.intern("x");
        let b = clone.intern("x");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// intern → resolve is lossless for URI-ish and literal-ish
        /// strings alike, and lookup agrees with intern.
        #[test]
        fn round_trip_lossless(values in proptest::collection::vec("[ -~]{0,24}", 0..40)) {
            let mut d = TermDict::new();
            let ids: Vec<TermId> = values.iter().map(|v| d.intern(v)).collect();
            for (v, id) in values.iter().zip(&ids) {
                prop_assert_eq!(d.resolve(*id), v.as_str());
                prop_assert_eq!(d.lookup(v), Some(*id));
            }
            // Distinct values get distinct ids; equal values share one.
            for (i, a) in values.iter().enumerate() {
                for (j, b) in values.iter().enumerate() {
                    prop_assert_eq!(ids[i] == ids[j], a == b, "{:?} vs {:?}", a, b);
                }
            }
        }

        /// The sharded pool and a single-shard pool agree: same dedup
        /// structure (two values pool to one buffer iff equal), same
        /// distinct count — sharding changes placement, never meaning.
        #[test]
        fn sharded_pool_equals_single_shard(values in proptest::collection::vec("[ -~]{0,16}", 0..40)) {
            let sharded = SharedTermDict::with_shards(8);
            let single = SharedTermDict::with_shards(1);
            let a: Vec<Arc<str>> = values.iter().map(|v| sharded.intern(v)).collect();
            let b: Vec<Arc<str>> = values.iter().map(|v| single.intern(v)).collect();
            for (i, x) in a.iter().enumerate() {
                prop_assert_eq!(&**x, values[i].as_str());
                for j in 0..a.len() {
                    prop_assert_eq!(
                        Arc::ptr_eq(x, &a[j]),
                        values[i] == values[j],
                        "sharded dedup at {} vs {}", i, j
                    );
                    prop_assert_eq!(Arc::ptr_eq(x, &a[j]), Arc::ptr_eq(&b[i], &b[j]));
                }
            }
            prop_assert_eq!(sharded.len(), single.len());
        }
    }
}
