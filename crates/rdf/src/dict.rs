//! The interned term dictionary: lexical values ⇄ dense [`TermId`]s.
//!
//! Every distinct lexical form (URI text or literal text) that enters a
//! [`crate::TripleStore`] is interned exactly once and addressed by a
//! dense `u32` id from then on. Triples are stored as id tuples, the
//! store's indexes are keyed by id, and selections/joins compare ids —
//! string bytes are only touched at ingest (one hash of the lexical) and
//! at the result boundary (materializing terms for the caller).
//!
//! The string data itself lives in reference-counted `Arc<str>` buffers
//! shared between the id→string table, the string→id map and the
//! sorted per-position key indexes, so each distinct lexical is stored
//! once regardless of how many rows or indexes reference it.

use crate::fasthash::FxHasher;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hasher;
use std::sync::Arc;

/// Dense identifier of an interned lexical value.
///
/// Ids are assigned in first-seen order and are stable for the lifetime
/// of the owning [`TermDict`] (a [`crate::TripleStore::compact`] rebuilds
/// the dictionary and may renumber).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Hash of a lexical value: Fx over the bytes, with a final avalanche
/// mix so both the table index (low bits) and the stored verifier (all
/// 64 bits) are well distributed.
#[inline]
fn hash_lexical(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    let mut z = h.finish();
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

const EMPTY: u32 = u32::MAX;

/// One open-addressing slot: hash verifier + id, interleaved so a probe
/// touches a single cache line.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Slot {
    hash: u64,
    id: u32,
}

const VACANT: Slot = Slot { hash: 0, id: EMPTY };

/// Open-addressed `(hash64, id)` slots. A probe touches one flat array
/// and compares `u64`s; the interned string itself is only read to
/// verify a full 64-bit hash match (i.e. almost only on true hits) —
/// the hot path costs one cache miss, not a bucket walk plus a
/// scattered key compare.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct IdTable {
    /// Power-of-two length; `id == EMPTY` marks a vacant slot.
    slots: Vec<Slot>,
    len: usize,
}

impl IdTable {
    fn probe(&self, hash: u64, is_match: impl Fn(u32) -> bool) -> Result<u32, usize> {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let slot = self.slots[i];
            if slot.id == EMPTY {
                return Err(i);
            }
            if slot.hash == hash && is_match(slot.id) {
                return Ok(slot.id);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap >= self.slots.len());
        let old = std::mem::replace(&mut self.slots, vec![VACANT; cap]);
        let mask = cap - 1;
        for slot in old {
            if slot.id == EMPTY {
                continue;
            }
            let mut i = (slot.hash as usize) & mask;
            while self.slots[i].id != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }

    fn grow(&mut self) {
        self.grow_to((self.slots.len() * 2).max(16));
    }
}

/// Bidirectional map between lexical values and [`TermId`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TermDict {
    table: IdTable,
    terms: Vec<Arc<str>>,
}

impl TermDict {
    pub fn new() -> TermDict {
        TermDict::default()
    }

    /// Number of distinct interned lexical values.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Intern a lexical value, allocating an id on first sight.
    pub fn intern(&mut self, lexical: &str) -> TermId {
        match self.find_or_slot(lexical) {
            Ok(id) => id,
            Err((slot, hash)) => self.insert_new(Arc::from(lexical), slot, hash),
        }
    }

    /// Intern an already-shared buffer: a first-seen value is adopted by
    /// reference count, with no string copy at all.
    pub fn intern_shared(&mut self, lexical: &Arc<str>) -> TermId {
        match self.find_or_slot(lexical) {
            Ok(id) => id,
            Err((slot, hash)) => self.insert_new(Arc::clone(lexical), slot, hash),
        }
    }

    /// Locate `lexical`, or the vacant slot (and hash) where it belongs.
    fn find_or_slot(&mut self, lexical: &str) -> Result<TermId, (usize, u64)> {
        // Keep load factor under 3/4 (growing may move the vacant slot,
        // so grow before probing).
        if (self.table.len + 1) * 4 > self.table.slots.len() * 3 {
            self.table.grow();
        }
        let hash = hash_lexical(lexical);
        self.table
            .probe(hash, |id| &*self.terms[id as usize] == lexical)
            .map(TermId)
            .map_err(|slot| (slot, hash))
    }

    fn insert_new(&mut self, arc: Arc<str>, slot: usize, hash: u64) -> TermId {
        let id = u32::try_from(self.terms.len()).expect("term dictionary overflow");
        assert!(id != EMPTY, "term dictionary overflow");
        self.table.slots[slot] = Slot { hash, id };
        self.table.len += 1;
        self.terms.push(arc);
        TermId(id)
    }

    /// Pre-size the table for `additional` more distinct values, so bulk
    /// interning proceeds without intermediate growth rehashes. Prefer
    /// accurate estimates: an oversized table costs more in probe cache
    /// misses than geometric growth would.
    pub fn reserve(&mut self, additional: usize) {
        let needed = (self.terms.len() + additional) * 4 / 3 + 1;
        if needed > self.table.slots.len() {
            self.table.grow_to(needed.next_power_of_two().max(16));
        }
        self.terms.reserve(additional);
    }

    /// Id of an already-interned value, if any. The read-only half of
    /// [`TermDict::intern`]: selections use it so probing for a value
    /// the store has never seen is a single hash and no allocation.
    pub fn lookup(&self, lexical: &str) -> Option<TermId> {
        if self.table.slots.is_empty() {
            return None;
        }
        self.table
            .probe(hash_lexical(lexical), |id| {
                &*self.terms[id as usize] == lexical
            })
            .ok()
            .map(TermId)
    }

    /// The lexical value of an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    #[inline]
    pub fn resolve(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Shared handle to the interned buffer (for secondary indexes that
    /// key on the string without copying it).
    #[inline]
    pub(crate) fn shared(&self, id: TermId) -> Arc<str> {
        Arc::clone(&self.terms[id.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut d = TermDict::new();
        let a = d.intern("EMBL#Organism");
        let b = d.intern("embl:A78712");
        let a2 = d.intern("EMBL#Organism");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = TermDict::new();
        for s in ["", "a", "Aspergillus niger", "seq:A78712", "100%"] {
            let id = d.intern(s);
            assert_eq!(d.resolve(id), s);
            assert_eq!(d.lookup(s), Some(id));
        }
        assert_eq!(d.lookup("never seen"), None);
    }

    #[test]
    fn shared_buffers_are_refcounted_not_copied() {
        let mut d = TermDict::new();
        let id = d.intern("EMBL#Organism");
        let h1 = d.shared(id);
        let h2 = d.shared(id);
        assert!(Arc::ptr_eq(&h1, &h2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// intern → resolve is lossless for URI-ish and literal-ish
        /// strings alike, and lookup agrees with intern.
        #[test]
        fn round_trip_lossless(values in proptest::collection::vec("[ -~]{0,24}", 0..40)) {
            let mut d = TermDict::new();
            let ids: Vec<TermId> = values.iter().map(|v| d.intern(v)).collect();
            for (v, id) in values.iter().zip(&ids) {
                prop_assert_eq!(d.resolve(*id), v.as_str());
                prop_assert_eq!(d.lookup(v), Some(*id));
            }
            // Distinct values get distinct ids; equal values share one.
            for (i, a) in values.iter().enumerate() {
                for (j, b) in values.iter().enumerate() {
                    prop_assert_eq!(ids[i] == ids[j], a == b, "{:?} vs {:?}", a, b);
                }
            }
        }
    }
}
