//! The per-peer local triple database `DB_p`.
//!
//! "Each peer p maintains a local database DBp to store the triples it is
//! responsible for … the physical schemas of the local databases can all
//! be identical and consist of three attributes SDB = (subject,
//! predicate, object). The local databases support three standard
//! relational algebra operators: projection π, selection σ and (self)
//! join ⋈" (§2.2).
//!
//! [`TripleStore`] keeps the triple table plus three hash indexes (by
//! subject, predicate, object lexical value) so that the destination-peer
//! query `π_pos(x) σ_pos(const)=const (DB_dest)` of §2.3 runs without a
//! full scan when the constant is exact.

use crate::term::Term;
use crate::triple::{Binding, Position, Triple, TriplePattern};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A local triple database with (s, p, o) secondary indexes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TripleStore {
    rows: Vec<Triple>,
    /// Index maps a position's lexical value to row ids. Deleted rows
    /// leave tombstones in `rows` (None) to keep ids stable.
    by_subject: HashMap<String, Vec<u32>>,
    by_predicate: HashMap<String, Vec<u32>>,
    by_object: HashMap<String, Vec<u32>>,
    live: usize,
    tombstones: Vec<bool>,
}

impl TripleStore {
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Number of live triples.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert a triple; duplicates are ignored (idempotent, like the
    /// overlay store — replica synchronization re-delivers freely).
    /// Returns whether the triple was new.
    pub fn insert(&mut self, t: Triple) -> bool {
        if self.contains(&t) {
            return false;
        }
        let id = self.rows.len() as u32;
        self.by_subject
            .entry(t.subject.as_str().to_string())
            .or_default()
            .push(id);
        self.by_predicate
            .entry(t.predicate.as_str().to_string())
            .or_default()
            .push(id);
        self.by_object
            .entry(t.object.lexical().to_string())
            .or_default()
            .push(id);
        self.rows.push(t);
        self.tombstones.push(false);
        self.live += 1;
        true
    }

    /// Remove a triple; returns whether it was present.
    pub fn remove(&mut self, t: &Triple) -> bool {
        let Some(id) = self.find_row(t) else {
            return false;
        };
        self.tombstones[id as usize] = true;
        self.live -= 1;
        true
    }

    pub fn contains(&self, t: &Triple) -> bool {
        self.find_row(t).is_some()
    }

    fn find_row(&self, t: &Triple) -> Option<u32> {
        self.by_subject
            .get(t.subject.as_str())?
            .iter()
            .copied()
            .find(|&id| !self.tombstones[id as usize] && &self.rows[id as usize] == t)
    }

    /// Iterate over live triples.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.rows
            .iter()
            .zip(&self.tombstones)
            .filter(|(_, dead)| !**dead)
            .map(|(t, _)| t)
    }

    /// σ: all triples whose `pos` equals `value` exactly (index lookup).
    pub fn select_eq(&self, pos: Position, value: &str) -> Vec<&Triple> {
        let index = match pos {
            Position::Subject => &self.by_subject,
            Position::Predicate => &self.by_predicate,
            Position::Object => &self.by_object,
        };
        index
            .get(value)
            .map(|ids| {
                ids.iter()
                    .filter(|&&id| !self.tombstones[id as usize])
                    .map(|&id| &self.rows[id as usize])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// σ with a `%`-wildcard LIKE predicate (falls back to a scan over
    /// the position index keys; exact patterns use the index directly).
    pub fn select_like(&self, pos: Position, pattern: &str) -> Vec<&Triple> {
        if !pattern.contains('%') {
            return self.select_eq(pos, pattern);
        }
        self.iter()
            .filter(|t| t.get(pos).matches_like(pattern))
            .collect()
    }

    /// Evaluate a triple pattern against the local database, returning
    /// one binding per matching triple. Uses the most selective exact
    /// constant as the access path.
    pub fn match_pattern(&self, pattern: &TriplePattern) -> Vec<Binding> {
        // Access path: an exact (non-wildcard) constant if any.
        let exact = pattern.constants().into_iter().find(|(_, t)| {
            !(t.is_literal() && t.lexical().contains('%'))
        });
        let candidates: Vec<&Triple> = match exact {
            Some((pos, term)) => self.select_eq(pos, term.lexical()),
            None => self.iter().collect(),
        };
        candidates
            .into_iter()
            .filter_map(|t| pattern.match_triple(t))
            .collect()
    }

    /// The destination-peer resolution of §2.3:
    /// `Results = π_pos(x) σ_pos(const)=const (DB_dest)`.
    /// Returns the terms bound to `var`.
    pub fn resolve(&self, pattern: &TriplePattern, var: &str) -> Vec<Term> {
        let mut out: Vec<Term> = self
            .match_pattern(pattern)
            .into_iter()
            .filter_map(|b| b.get(var).cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Self-join ⋈: evaluate two patterns and merge compatible bindings.
    /// This is the building block for conjunctive queries (§2.3:
    /// "iteratively resolving each triple pattern … and aggregating").
    pub fn join(&self, left: &TriplePattern, right: &TriplePattern) -> Vec<Binding> {
        let lhs = self.match_pattern(left);
        let rhs = self.match_pattern(right);
        let mut out = Vec::new();
        for l in &lhs {
            for r in &rhs {
                if let Some(j) = l.join(r) {
                    out.push(j);
                }
            }
        }
        out
    }

    /// Distinct predicate values present (used by schema inference and
    /// the instance-based matcher).
    pub fn predicates(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .by_predicate
            .iter()
            .filter(|(_, ids)| ids.iter().any(|&id| !self.tombstones[id as usize]))
            .map(|(k, _)| k.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// Compact away tombstones (rebuilds indexes).
    pub fn compact(&mut self) {
        let live: Vec<Triple> = self.iter().cloned().collect();
        *self = TripleStore::new();
        for t in live {
            self.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::PatternTerm;

    fn sample() -> TripleStore {
        let mut db = TripleStore::new();
        db.insert(Triple::new(
            "embl:A78712",
            "EMBL#Organism",
            Term::literal("Aspergillus niger"),
        ));
        db.insert(Triple::new(
            "embl:A78767",
            "EMBL#Organism",
            Term::literal("Aspergillus nidulans"),
        ));
        db.insert(Triple::new(
            "embl:X00001",
            "EMBL#Organism",
            Term::literal("Penicillium chrysogenum"),
        ));
        db.insert(Triple::new(
            "embl:A78712",
            "EMBL#SequenceLength",
            Term::literal("1042"),
        ));
        db
    }

    #[test]
    fn insert_is_idempotent() {
        let mut db = TripleStore::new();
        let t = Triple::new("s", "p", Term::literal("o"));
        assert!(db.insert(t.clone()));
        assert!(!db.insert(t));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn remove_and_contains() {
        let mut db = sample();
        let t = Triple::new("embl:A78712", "EMBL#Organism", Term::literal("Aspergillus niger"));
        assert!(db.contains(&t));
        assert!(db.remove(&t));
        assert!(!db.contains(&t));
        assert!(!db.remove(&t));
        assert_eq!(db.len(), 3);
        // Index lookups must not resurface the tombstone.
        assert_eq!(db.select_eq(Position::Subject, "embl:A78712").len(), 1);
    }

    #[test]
    fn select_eq_uses_each_position() {
        let db = sample();
        assert_eq!(db.select_eq(Position::Predicate, "EMBL#Organism").len(), 3);
        assert_eq!(db.select_eq(Position::Subject, "embl:A78712").len(), 2);
        assert_eq!(db.select_eq(Position::Object, "1042").len(), 1);
        assert!(db.select_eq(Position::Subject, "nope").is_empty());
    }

    #[test]
    fn select_like_wildcards() {
        let db = sample();
        let hits = db.select_like(Position::Object, "%Aspergillus%");
        assert_eq!(hits.len(), 2);
        let exact = db.select_like(Position::Object, "1042");
        assert_eq!(exact.len(), 1);
    }

    #[test]
    fn paper_query_resolution() {
        // π_subject σ_predicate=EMBL#Organism ∧ object=%Aspergillus% (DB)
        let db = sample();
        let pattern = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        );
        let results = db.resolve(&pattern, "x");
        assert_eq!(
            results,
            vec![Term::uri("embl:A78712"), Term::uri("embl:A78767")]
        );
    }

    #[test]
    fn match_pattern_all_variables_returns_everything() {
        let db = sample();
        let pattern = TriplePattern::new(
            PatternTerm::var("s"),
            PatternTerm::var("p"),
            PatternTerm::var("o"),
        );
        assert_eq!(db.match_pattern(&pattern).len(), 4);
    }

    #[test]
    fn self_join_connects_attributes() {
        // Sequences with an Organism AND a SequenceLength.
        let db = sample();
        let left = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::var("org"),
        );
        let right = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
            PatternTerm::var("len"),
        );
        let joined = db.join(&left, &right);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].get("x"), Some(&Term::uri("embl:A78712")));
        assert_eq!(joined[0].get("len"), Some(&Term::literal("1042")));
    }

    #[test]
    fn predicates_lists_distinct_live() {
        let mut db = sample();
        assert_eq!(db.predicates(), vec!["EMBL#Organism", "EMBL#SequenceLength"]);
        db.remove(&Triple::new(
            "embl:A78712",
            "EMBL#SequenceLength",
            Term::literal("1042"),
        ));
        assert_eq!(db.predicates(), vec!["EMBL#Organism"]);
    }

    #[test]
    fn compact_preserves_content() {
        let mut db = sample();
        db.remove(&Triple::new(
            "embl:X00001",
            "EMBL#Organism",
            Term::literal("Penicillium chrysogenum"),
        ));
        let before: Vec<Triple> = {
            let mut v: Vec<Triple> = db.iter().cloned().collect();
            v.sort();
            v
        };
        db.compact();
        let mut after: Vec<Triple> = db.iter().cloned().collect();
        after.sort();
        assert_eq!(before, after);
        assert_eq!(db.len(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::triple::PatternTerm;
    use proptest::prelude::*;

    fn arb_triple() -> impl Strategy<Value = Triple> {
        ("[a-c]{1,2}", "[p-r]{1,2}", "[x-z]{1,2}").prop_map(|(s, p, o)| {
            Triple::new(s.as_str(), p.as_str(), Term::literal(o))
        })
    }

    proptest! {
        /// The three indexes agree with a full scan, for every position.
        #[test]
        fn indexes_agree_with_scan(triples in proptest::collection::vec(arb_triple(), 0..40),
                                   removals in proptest::collection::vec(any::<prop::sample::Index>(), 0..10)) {
            let mut db = TripleStore::new();
            let mut reference: Vec<Triple> = Vec::new();
            for t in &triples {
                if db.insert(t.clone()) {
                    reference.push(t.clone());
                }
            }
            for idx in &removals {
                if reference.is_empty() { break; }
                let i = idx.index(reference.len());
                let t = reference.remove(i);
                prop_assert!(db.remove(&t));
            }
            prop_assert_eq!(db.len(), reference.len());
            for pos in Position::ALL {
                for t in &reference {
                    let value = t.get(pos);
                    let via_index = db.select_eq(pos, value.lexical());
                    let via_scan: Vec<&Triple> = reference
                        .iter()
                        .filter(|r| r.get(pos).lexical() == value.lexical())
                        .collect();
                    prop_assert_eq!(via_index.len(), via_scan.len());
                }
            }
        }

        /// match_pattern with a constant agrees with the naive filter.
        #[test]
        fn match_pattern_agrees_with_naive(triples in proptest::collection::vec(arb_triple(), 0..30),
                                           pred in "[p-r]{1,2}") {
            let mut db = TripleStore::new();
            for t in &triples { db.insert(t.clone()); }
            let pattern = TriplePattern::new(
                PatternTerm::var("s"),
                PatternTerm::constant(Term::uri(pred.clone())),
                PatternTerm::var("o"),
            );
            let fast = db.match_pattern(&pattern).len();
            let naive = db.iter().filter(|t| t.predicate.as_str() == pred).count();
            prop_assert_eq!(fast, naive);
        }
    }
}
