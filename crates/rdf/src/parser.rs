//! An RDQL-subset parser.
//!
//! The paper cites RDQL \[8\] as its query language. This module parses
//! the subset GridVine demonstrates — single and conjunctive triple
//! pattern queries:
//!
//! ```text
//! SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")
//! SELECT ?x, ?len
//! WHERE (?x, <EMBL#Organism>, "%Aspergillus%"),
//!       (?x, <EMBL#SequenceLength>, ?len)
//! ```
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query    := "SELECT" varlist "WHERE" pattern ("," pattern)*
//! varlist  := var ("," var)*
//! var      := "?" ident
//! pattern  := "(" slot "," slot "," slot ")"
//! slot     := var | "<" uri ">" | "\"" literal "\""
//! ```

use crate::query::{ConjunctiveQuery, QueryError, TriplePatternQuery};
use crate::term::Term;
use crate::triple::{PatternTerm, TriplePattern};
use std::fmt;

/// A parse failure with a human-readable description and position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<QueryError> for ParseError {
    fn from(e: QueryError) -> ParseError {
        ParseError {
            message: e.to_string(),
            offset: 0,
        }
    }
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}")))
        }
    }

    fn eat_char(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn peek_char(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat_ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected identifier".to_string()));
        }
        let ident = &rest[..end];
        self.pos += end;
        Ok(ident)
    }

    fn eat_until(&mut self, close: char) -> Result<&'a str, ParseError> {
        let rest = self.rest();
        match rest.find(close) {
            Some(i) => {
                let content = &rest[..i];
                self.pos += i + close.len_utf8();
                Ok(content)
            }
            None => Err(self.err(format!("unterminated, expected {close:?}"))),
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            offset: self.pos,
        }
    }
}

fn parse_var(c: &mut Cursor<'_>) -> Result<String, ParseError> {
    c.eat_char('?')?;
    Ok(c.eat_ident()?.to_string())
}

fn parse_slot(c: &mut Cursor<'_>) -> Result<PatternTerm, ParseError> {
    match c.peek_char() {
        Some('?') => Ok(PatternTerm::Var(parse_var(c)?)),
        Some('<') => {
            c.eat_char('<')?;
            let uri = c.eat_until('>')?;
            if uri.is_empty() {
                return Err(c.err("empty URI".to_string()));
            }
            Ok(PatternTerm::constant(Term::uri(uri)))
        }
        Some('"') => {
            c.eat_char('"')?;
            let lit = c.eat_until('"')?;
            Ok(PatternTerm::constant(Term::literal(lit)))
        }
        _ => Err(c.err("expected ?var, <uri> or \"literal\"".to_string())),
    }
}

fn parse_pattern(c: &mut Cursor<'_>) -> Result<TriplePattern, ParseError> {
    c.eat_char('(')?;
    let s = parse_slot(c)?;
    c.eat_char(',')?;
    let p = parse_slot(c)?;
    c.eat_char(',')?;
    let o = parse_slot(c)?;
    c.eat_char(')')?;
    Ok(TriplePattern::new(s, p, o))
}

/// Parse a conjunctive RDQL-subset query.
pub fn parse_query(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut c = Cursor::new(src);
    c.eat_keyword("SELECT")?;
    let mut vars = vec![parse_var(&mut c)?];
    while c.peek_char() == Some(',') {
        c.eat_char(',')?;
        vars.push(parse_var(&mut c)?);
    }
    c.eat_keyword("WHERE")?;
    let mut patterns = vec![parse_pattern(&mut c)?];
    loop {
        match c.peek_char() {
            Some(',') => {
                c.eat_char(',')?;
                patterns.push(parse_pattern(&mut c)?);
            }
            Some('(') => patterns.push(parse_pattern(&mut c)?),
            None => break,
            Some(other) => return Err(c.err(format!("unexpected {other:?}"))),
        }
    }
    Ok(ConjunctiveQuery::new(vars, patterns)?)
}

/// Parse a single-pattern query into the `SearchFor` form; errors if the
/// query has more than one pattern or distinguished variable.
pub fn parse_single(src: &str) -> Result<TriplePatternQuery, ParseError> {
    let q = parse_query(src)?;
    if q.patterns.len() != 1 || q.distinguished.len() != 1 {
        return Err(ParseError {
            message: "expected exactly one pattern and one variable".to_string(),
            offset: 0,
        });
    }
    Ok(TriplePatternQuery::new(
        q.distinguished.into_iter().next().expect("one var"),
        q.patterns.into_iter().next().expect("one pattern"),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let q = parse_single(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#)
            .expect("parses");
        assert_eq!(q.distinguished, "x");
        assert_eq!(
            q.pattern.predicate.as_const().map(|t| t.lexical()),
            Some("EMBL#Organism")
        );
        assert_eq!(
            q.pattern.object.as_const().map(|t| t.lexical()),
            Some("%Aspergillus%")
        );
        assert!(q.pattern.subject.is_var());
    }

    #[test]
    fn parses_conjunction_comma_and_juxtaposed() {
        let with_comma = parse_query(
            r#"SELECT ?x, ?len WHERE (?x, <EMBL#Organism>, "%A%"), (?x, <EMBL#Len>, ?len)"#,
        )
        .expect("parses");
        assert_eq!(with_comma.patterns.len(), 2);
        assert_eq!(with_comma.distinguished, vec!["x", "len"]);

        let juxtaposed =
            parse_query(r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%A%") (?x, <EMBL#Len>, ?len)"#)
                .expect("parses");
        assert_eq!(juxtaposed.patterns.len(), 2);
    }

    #[test]
    fn case_insensitive_keywords_and_whitespace() {
        let q = parse_query("select   ?x\nwhere\t(?x, <p>, ?o)").expect("parses");
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_query("SELECT ?x WHERE (?x <p>, ?o)").unwrap_err();
        assert!(e.message.contains("','"), "{e}");
        assert!(e.offset > 0);
    }

    #[test]
    fn rejects_missing_select() {
        assert!(parse_query("WHERE (?x, <p>, ?o)").is_err());
    }

    #[test]
    fn rejects_unterminated_uri_and_literal() {
        assert!(parse_query("SELECT ?x WHERE (?x, <p, ?o)").is_err());
        assert!(parse_query(r#"SELECT ?x WHERE (?x, <p>, "unterminated)"#).is_err());
    }

    #[test]
    fn rejects_unbound_distinguished() {
        let e = parse_query("SELECT ?zz WHERE (?x, <p>, ?o)").unwrap_err();
        assert!(e.message.contains("zz"), "{e}");
    }

    #[test]
    fn single_rejects_multi_pattern() {
        assert!(parse_single("SELECT ?x WHERE (?x, <p>, ?o), (?x, <q>, ?r)").is_err());
    }

    #[test]
    fn round_trips_through_display() {
        let src = r#"SELECT ?x WHERE (?x, <EMBL#Organism>, "%Aspergillus%")"#;
        let q = parse_single(src).expect("parses");
        // Display uses the paper's SearchFor notation; re-parse the
        // pattern positions instead of exact text.
        let again = parse_single(src).expect("parses");
        assert_eq!(q, again);
    }

    #[test]
    fn empty_uri_rejected() {
        assert!(parse_query("SELECT ?x WHERE (?x, <>, ?o)").is_err());
    }

    #[test]
    fn literal_subject_allowed_by_grammar() {
        // RDQL forbids literal subjects but the parser is permissive;
        // pattern matching simply never matches them against URIs.
        let q = parse_query(r#"SELECT ?o WHERE ("lit", <p>, ?o)"#).expect("parses");
        assert_eq!(q.patterns.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any generated well-formed query parses, and the parsed
        /// structure mirrors the inputs.
        #[test]
        fn well_formed_queries_parse(
            var in "[a-z]{1,8}",
            pred in "[A-Za-z]{1,8}#[A-Za-z]{1,8}",
            lit in "[A-Za-z%. ]{0,16}",
        ) {
            let src = format!(r#"SELECT ?{var} WHERE (?{var}, <{pred}>, "{lit}")"#);
            let q = parse_single(&src).expect("well-formed query parses");
            prop_assert_eq!(q.distinguished, var);
            prop_assert_eq!(q.pattern.predicate.as_const().map(|t| t.lexical().to_string()),
                            Some(pred));
            prop_assert_eq!(q.pattern.object.as_const().map(|t| t.lexical().to_string()),
                            Some(lit));
        }
    }
}
