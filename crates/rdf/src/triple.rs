//! Triples, triple patterns and variable bindings.
//!
//! A triple `t = {t_subject, t_predicate, t_object}` (§2.2); a *triple
//! pattern* (§2.3, after RDQL) is "an expression of the form (s, p, o)
//! where s and p are URIs or variables, and o is a URI, a literal or a
//! variable".

use crate::term::{Term, Uri};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One statement: subject–predicate–object.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    pub subject: Uri,
    pub predicate: Uri,
    pub object: Term,
}

impl Triple {
    pub fn new(
        subject: impl Into<Uri>,
        predicate: impl Into<Uri>,
        object: impl Into<Term>,
    ) -> Triple {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// Field access by position, used by the generic σ/π operators.
    pub fn get(&self, pos: Position) -> Term {
        match pos {
            Position::Subject => Term::Uri(self.subject.clone()),
            Position::Predicate => Term::Uri(self.predicate.clone()),
            Position::Object => self.object.clone(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.subject, self.predicate, self.object)
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Positions in a triple — `pos(term)` of §2.3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Position {
    Subject,
    Predicate,
    Object,
}

impl Position {
    pub const ALL: [Position; 3] = [Position::Subject, Position::Predicate, Position::Object];
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Position::Subject => write!(f, "subject"),
            Position::Predicate => write!(f, "predicate"),
            Position::Object => write!(f, "object"),
        }
    }
}

/// A pattern slot: a variable like `?x` or a constant.
///
/// Constants in object position may carry `%` wildcards
/// (`%Aspergillus%`), matched with SQL-LIKE semantics.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternTerm {
    Var(String),
    Const(Term),
}

impl PatternTerm {
    pub fn var(name: impl Into<String>) -> PatternTerm {
        PatternTerm::Var(name.into())
    }

    pub fn constant(t: impl Into<Term>) -> PatternTerm {
        PatternTerm::Const(t.into())
    }

    pub fn is_var(&self) -> bool {
        matches!(self, PatternTerm::Var(_))
    }

    pub fn as_const(&self) -> Option<&Term> {
        match self {
            PatternTerm::Const(t) => Some(t),
            PatternTerm::Var(_) => None,
        }
    }

    /// Match against a concrete term, extending `binding` on success.
    /// Returns false on mismatch (including conflicting variable reuse).
    pub fn unify(&self, value: &Term, binding: &mut Binding) -> bool {
        match self {
            PatternTerm::Var(name) => match binding.get(name) {
                Some(bound) => bound == value,
                None => {
                    binding.bind(name.clone(), value.clone());
                    true
                }
            },
            PatternTerm::Const(t) => {
                if let Term::Literal(pat) = t {
                    if pat.contains('%') {
                        return value.matches_like(pat);
                    }
                }
                t == value
            }
        }
    }
}

impl fmt::Display for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Var(v) => write!(f, "?{v}"),
            PatternTerm::Const(t) => write!(f, "{t}"),
        }
    }
}

impl fmt::Debug for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A triple pattern `(s, p, o)`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TriplePattern {
    pub subject: PatternTerm,
    pub predicate: PatternTerm,
    pub object: PatternTerm,
}

impl TriplePattern {
    pub fn new(subject: PatternTerm, predicate: PatternTerm, object: PatternTerm) -> TriplePattern {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    pub fn slot(&self, pos: Position) -> &PatternTerm {
        match pos {
            Position::Subject => &self.subject,
            Position::Predicate => &self.predicate,
            Position::Object => &self.object,
        }
    }

    /// Positions holding constants, with their terms.
    pub fn constants(&self) -> Vec<(Position, &Term)> {
        Position::ALL
            .iter()
            .filter_map(|&p| self.slot(p).as_const().map(|t| (p, t)))
            .collect()
    }

    /// Variable names appearing in the pattern, in slot order.
    pub fn variables(&self) -> Vec<&str> {
        Position::ALL
            .iter()
            .filter_map(|&p| match self.slot(p) {
                PatternTerm::Var(v) => Some(v.as_str()),
                PatternTerm::Const(_) => None,
            })
            .collect()
    }

    /// The constant term to route by: "when two constant terms appear in
    /// the triple pattern, the most specific one should be used" (§2.3).
    /// Specificity here: a predicate is most routable (its key space
    /// holds exactly the relevant triples); longer lexical forms beat
    /// shorter ones; wildcard literals are *not* routable (their hash
    /// does not match any stored key) unless they carry a prefix — a
    /// `x%` pattern can still route via the order-preserving hash.
    pub fn routing_constant(&self) -> Option<(Position, &Term)> {
        let mut best: Option<(Position, &Term, usize)> = None;
        for (pos, term) in self.constants() {
            let lex = term.lexical();
            let wildcard = term.is_literal() && lex.contains('%');
            if wildcard {
                continue;
            }
            // Prefer predicate > subject > object at equal length; use
            // length as primary specificity signal.
            let tier = match pos {
                Position::Predicate => 2,
                Position::Subject => 1,
                Position::Object => 0,
            };
            let score = lex.len() * 4 + tier;
            if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                best = Some((pos, term, score));
            }
        }
        best.map(|(p, t, _)| (p, t))
    }

    /// Replace every variable bound in `binding` with its constant,
    /// leaving unbound variables in place. This is the *bound-join*
    /// specialization step of distributed conjunctive evaluation: a
    /// partial solution row turns the next pattern into a more selective
    /// (and often more routable) subquery before it is shipped into the
    /// overlay.
    pub fn substitute(&self, binding: &Binding) -> TriplePattern {
        let sub = |slot: &PatternTerm| match slot {
            PatternTerm::Var(v) => match binding.get(v) {
                Some(t) => PatternTerm::Const(t.clone()),
                None => slot.clone(),
            },
            PatternTerm::Const(_) => slot.clone(),
        };
        TriplePattern {
            subject: sub(&self.subject),
            predicate: sub(&self.predicate),
            object: sub(&self.object),
        }
    }

    /// True if the pattern contains no variables at all.
    pub fn is_ground(&self) -> bool {
        self.variables().is_empty()
    }

    /// Try to match a concrete triple, producing a binding.
    pub fn match_triple(&self, t: &Triple) -> Option<Binding> {
        let mut b = Binding::new();
        let subject = Term::Uri(t.subject.clone());
        let predicate = Term::Uri(t.predicate.clone());
        if self.subject.unify(&subject, &mut b)
            && self.predicate.unify(&predicate, &mut b)
            && self.object.unify(&t.object, &mut b)
        {
            Some(b)
        } else {
            None
        }
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.subject, self.predicate, self.object)
    }
}

impl fmt::Debug for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A set of variable bindings (a query solution row).
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Binding {
    map: BTreeMap<String, Term>,
}

impl Binding {
    pub fn new() -> Binding {
        Binding::default()
    }

    pub fn bind(&mut self, var: String, value: Term) {
        self.map.insert(var, value);
    }

    pub fn get(&self, var: &str) -> Option<&Term> {
        self.map.get(var)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge two bindings; `None` if they disagree on a shared variable.
    /// This is the join condition of conjunctive query evaluation.
    pub fn join(&self, other: &Binding) -> Option<Binding> {
        let mut out = self.clone();
        for (k, v) in &other.map {
            match out.map.get(k) {
                Some(existing) if existing != v => return None,
                Some(_) => {}
                None => {
                    out.map.insert(k.clone(), v.clone());
                }
            }
        }
        Some(out)
    }

    /// Keep only the named variables (the projection π of §2.3).
    pub fn project(&self, vars: &[&str]) -> Binding {
        Binding {
            map: self
                .map
                .iter()
                .filter(|(k, _)| vars.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "?{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aspergillus_triple() -> Triple {
        Triple::new(
            "embl:A78712",
            "EMBL#Organism",
            Term::literal("Aspergillus niger"),
        )
    }

    #[test]
    fn pattern_matches_paper_example() {
        // SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        );
        let b = p.match_triple(&aspergillus_triple()).expect("should match");
        assert_eq!(b.get("x"), Some(&Term::uri("embl:A78712")));
    }

    #[test]
    fn pattern_rejects_wrong_predicate() {
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMP#SystematicName")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        );
        assert!(p.match_triple(&aspergillus_triple()).is_none());
    }

    #[test]
    fn repeated_variable_must_agree() {
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("p")),
            PatternTerm::var("x"),
        );
        let same = Triple::new("a", "p", Term::uri("a"));
        let diff = Triple::new("a", "p", Term::uri("b"));
        assert!(p.match_triple(&same).is_some());
        assert!(p.match_triple(&diff).is_none());
    }

    #[test]
    fn routing_constant_prefers_predicate() {
        // Paper: "In our example, we choose the predicate".
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        );
        let (pos, term) = p.routing_constant().expect("has constant");
        assert_eq!(pos, Position::Predicate);
        assert_eq!(term.lexical(), "EMBL#Organism");
    }

    #[test]
    fn routing_constant_skips_wildcards_but_uses_plain_object() {
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::var("p"),
            PatternTerm::constant(Term::literal("exact-value-very-specific")),
        );
        let (pos, _) = p.routing_constant().expect("object constant");
        assert_eq!(pos, Position::Object);

        let all_wild = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::var("p"),
            PatternTerm::constant(Term::literal("%wild%")),
        );
        assert!(all_wild.routing_constant().is_none());
    }

    #[test]
    fn variables_and_constants_enumerate_in_order() {
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("p")),
            PatternTerm::var("y"),
        );
        assert_eq!(p.variables(), vec!["x", "y"]);
        assert_eq!(p.constants().len(), 1);
    }

    #[test]
    fn binding_join_agrees() {
        let mut a = Binding::new();
        a.bind("x".into(), Term::uri("u"));
        let mut b = Binding::new();
        b.bind("y".into(), Term::literal("v"));
        let ab = a.join(&b).expect("disjoint join");
        assert_eq!(ab.len(), 2);

        let mut conflict = Binding::new();
        conflict.bind("x".into(), Term::uri("other"));
        assert!(a.join(&conflict).is_none());

        let mut agree = Binding::new();
        agree.bind("x".into(), Term::uri("u"));
        assert_eq!(a.join(&agree).expect("agreeing join").len(), 1);
    }

    #[test]
    fn binding_project() {
        let mut b = Binding::new();
        b.bind("x".into(), Term::uri("u"));
        b.bind("y".into(), Term::uri("v"));
        let p = b.project(&["x"]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get("x"), Some(&Term::uri("u")));
        assert_eq!(p.get("y"), None);
    }

    #[test]
    fn substitute_binds_only_bound_variables() {
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::var("o"),
        );
        let mut b = Binding::new();
        b.bind("x".into(), Term::uri("embl:A78712"));
        let s = p.substitute(&b);
        assert_eq!(s.subject, PatternTerm::constant(Term::uri("embl:A78712")));
        assert_eq!(s.predicate, p.predicate, "constants untouched");
        assert_eq!(s.object, PatternTerm::var("o"), "unbound variable kept");
        assert!(!s.is_ground());
        b.bind("o".into(), Term::literal("Aspergillus niger"));
        assert!(p.substitute(&b).is_ground());
    }

    #[test]
    fn substitute_with_empty_binding_is_identity() {
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("p")),
            PatternTerm::var("y"),
        );
        assert_eq!(p.substitute(&Binding::new()), p);
    }

    #[test]
    fn triple_get_by_position() {
        let t = aspergillus_triple();
        assert_eq!(t.get(Position::Subject), Term::uri("embl:A78712"));
        assert_eq!(t.get(Position::Predicate), Term::uri("EMBL#Organism"));
        assert_eq!(t.get(Position::Object), Term::literal("Aspergillus niger"));
    }

    #[test]
    fn display_forms() {
        let p = TriplePattern::new(
            PatternTerm::var("x"),
            PatternTerm::constant(Term::uri("EMBL#Organism")),
            PatternTerm::constant(Term::literal("%Aspergillus%")),
        );
        assert_eq!(p.to_string(), "(?x, <EMBL#Organism>, \"%Aspergillus%\")");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_term() -> impl Strategy<Value = Term> {
        prop_oneof![
            "[a-z]{1,6}#[A-Za-z]{1,8}".prop_map(Term::uri),
            "[A-Za-z ]{0,12}".prop_map(Term::literal),
        ]
    }

    proptest! {
        /// A pattern built from a triple's own terms always matches it.
        #[test]
        fn self_pattern_matches(s in "[a-z]{1,8}", p in "[a-z]{1,8}", o in arb_term()) {
            let t = Triple::new(s.as_str(), p.as_str(), o);
            let pat = TriplePattern::new(
                PatternTerm::constant(Term::uri(s.clone())),
                PatternTerm::constant(Term::uri(p.clone())),
                PatternTerm::Const(t.object.clone()),
            );
            prop_assert!(pat.match_triple(&t).is_some());
        }

        /// The all-variables pattern matches everything and binds all
        /// three positions.
        #[test]
        fn wildcard_pattern_matches_all(s in "[a-z]{1,8}", p in "[a-z]{1,8}", o in arb_term()) {
            let t = Triple::new(s.as_str(), p.as_str(), o);
            let pat = TriplePattern::new(
                PatternTerm::var("a"),
                PatternTerm::var("b"),
                PatternTerm::var("c"),
            );
            let b = pat.match_triple(&t).expect("matches");
            prop_assert_eq!(b.len(), 3);
        }

        /// Substituting a binding produced by matching a triple yields a
        /// pattern that still matches that triple (specialization is
        /// sound).
        #[test]
        fn substitute_of_match_still_matches(
            s in "[a-z]{1,8}", p in "[a-z]{1,8}", o in arb_term()
        ) {
            let t = Triple::new(s.as_str(), p.as_str(), o);
            let pat = TriplePattern::new(
                PatternTerm::var("a"),
                PatternTerm::var("b"),
                PatternTerm::var("c"),
            );
            let b = pat.match_triple(&t).expect("matches");
            let ground = pat.substitute(&b);
            prop_assert!(ground.is_ground());
            prop_assert!(ground.match_triple(&t).is_some());
        }

        /// join is commutative on success.
        #[test]
        fn join_commutative(x in arb_term(), y in arb_term()) {
            let mut a = Binding::new();
            a.bind("x".into(), x);
            let mut b = Binding::new();
            b.bind("y".into(), y);
            let ab = a.join(&b);
            let ba = b.join(&a);
            prop_assert_eq!(ab, ba);
        }
    }
}
