//! Queries: single-pattern `SearchFor` and conjunctive queries.
//!
//! "The simplest queries supported by GridVine retrieve information based
//! on a single triple pattern: SearchFor(x? : (s, p, o)) where x?, the
//! distinguished variable the query has to return, also appears in the
//! triple pattern" (§2.3). "Conjunctive queries can be resolved in a
//! similar manner, by iteratively resolving each triple pattern contained
//! in the query and aggregating the sets of results retrieved."

use crate::join::{HashJoiner, VarTable};
use crate::store::TripleStore;
use crate::term::Term;
use crate::triple::{Binding, PatternTerm, TriplePattern};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// `SearchFor(x? : (s, p, o))` — one pattern, one distinguished variable.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TriplePatternQuery {
    /// The distinguished variable (without the `?`).
    pub distinguished: String,
    pub pattern: TriplePattern,
}

/// Errors raised when constructing or evaluating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The distinguished variable does not occur in the pattern(s).
    UnboundDistinguished { var: String },
    /// A conjunctive query without patterns.
    EmptyQuery,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnboundDistinguished { var } => {
                write!(
                    f,
                    "distinguished variable ?{var} does not appear in the query"
                )
            }
            QueryError::EmptyQuery => write!(f, "conjunctive query has no patterns"),
        }
    }
}

impl std::error::Error for QueryError {}

impl TriplePatternQuery {
    /// Build the query, validating that `distinguished` occurs in the
    /// pattern (as the paper requires).
    pub fn new(
        distinguished: impl Into<String>,
        pattern: TriplePattern,
    ) -> Result<TriplePatternQuery, QueryError> {
        let distinguished = distinguished.into();
        if !pattern.variables().contains(&distinguished.as_str()) {
            return Err(QueryError::UnboundDistinguished { var: distinguished });
        }
        Ok(TriplePatternQuery {
            distinguished,
            pattern,
        })
    }

    /// The paper's running example:
    /// `SearchFor(x? : (x?, EMBL#Organism, %Aspergillus%))`.
    pub fn example_aspergillus() -> TriplePatternQuery {
        TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("EMBL#Organism")),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            ),
        )
        .expect("x occurs in the pattern")
    }

    /// Evaluate against a local database: the destination-side relational
    /// query of §2.3.
    pub fn evaluate(&self, db: &TripleStore) -> Vec<Term> {
        db.resolve(&self.pattern, &self.distinguished)
    }
}

impl fmt::Display for TriplePatternQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SearchFor(?{} : {})", self.distinguished, self.pattern)
    }
}

impl fmt::Debug for TriplePatternQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A conjunction of triple patterns sharing variables.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    pub distinguished: Vec<String>,
    pub patterns: Vec<TriplePattern>,
}

impl ConjunctiveQuery {
    pub fn new(
        distinguished: Vec<String>,
        patterns: Vec<TriplePattern>,
    ) -> Result<ConjunctiveQuery, QueryError> {
        if patterns.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let all_vars: Vec<&str> = patterns.iter().flat_map(|p| p.variables()).collect();
        for d in &distinguished {
            if !all_vars.contains(&d.as_str()) {
                return Err(QueryError::UnboundDistinguished { var: d.clone() });
            }
        }
        Ok(ConjunctiveQuery {
            distinguished,
            patterns,
        })
    }

    /// Evaluate against one local database: iterative pattern resolution
    /// over the id-level indexes, hash joins on the shared variables
    /// ([`crate::join`]), then projection onto the distinguished
    /// variables. Each pattern's matches are *streamed* off the store's
    /// granule-batched pattern pipeline through one reused scratch row
    /// ([`TripleStore::for_each_match_row`]) straight into a
    /// [`HashJoiner`] built over the accumulated solutions, so a match
    /// set is never materialized as a whole — and no code row is ever
    /// allocated for a match that joins with nothing; terms are
    /// materialized only for the surviving rows.
    pub fn evaluate(&self, db: &TripleStore) -> Vec<Binding> {
        let vars = VarTable::from_patterns(&self.patterns);
        let mut rows: Vec<Vec<u64>> = vec![vars.empty_row()];
        for pattern in &self.patterns {
            let probe_bound: Vec<usize> = pattern
                .variables()
                .iter()
                .filter_map(|v| vars.slot(v))
                .collect();
            let joiner = HashJoiner::new(&rows, &probe_bound);
            let mut next = Vec::new();
            db.for_each_match_row(pattern, &vars, |m| {
                joiner.probe(m, &mut next);
            });
            rows = next;
            if rows.is_empty() {
                break;
            }
        }
        // π onto the distinguished variables, dedup on codes, then
        // materialize and sort for a stable, readable output order.
        // `slots` and `proj` are built from the same filtered name set,
        // so a distinguished variable that occurs in no pattern (only
        // reachable by constructing the struct directly) is skipped —
        // like the seed's projection — rather than misaligning names.
        let mut slots: Vec<usize> = Vec::with_capacity(self.distinguished.len());
        let mut proj = VarTable::new();
        for d in &self.distinguished {
            if let Some(s) = vars.slot(d) {
                slots.push(s);
                proj.slot_of(d);
            }
        }
        let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(rows.len());
        let mut out: Vec<Binding> = Vec::new();
        for row in &rows {
            let projected: Vec<u64> = slots.iter().map(|&s| row[s]).collect();
            if seen.insert(projected.clone()) {
                out.push(db.decode_row(&projected, &proj));
            }
        }
        out.sort_by_key(|b| format!("{b}"));
        out
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SearchFor(")?;
        for (i, d) in self.distinguished.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "?{d}")?;
        }
        write!(f, " : ")?;
        for (i, p) in self.patterns.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::Triple;

    fn db() -> TripleStore {
        let mut db = TripleStore::new();
        for (s, p, o) in [
            ("embl:A78712", "EMBL#Organism", "Aspergillus niger"),
            ("embl:A78767", "EMBL#Organism", "Aspergillus nidulans"),
            ("embl:B00001", "EMBL#Organism", "Penicillium notatum"),
            ("embl:A78712", "EMBL#SequenceLength", "1042"),
            ("embl:A78767", "EMBL#SequenceLength", "2210"),
        ] {
            db.insert(Triple::new(s, p, Term::literal(o)));
        }
        db
    }

    #[test]
    fn single_pattern_query_runs() {
        let q = TriplePatternQuery::example_aspergillus();
        let results = q.evaluate(&db());
        assert_eq!(results.len(), 2);
        assert!(results.contains(&Term::uri("embl:A78712")));
        assert!(results.contains(&Term::uri("embl:A78767")));
    }

    #[test]
    fn distinguished_must_occur() {
        let err = TriplePatternQuery::new(
            "nope",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("p"),
                PatternTerm::var("o"),
            ),
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::UnboundDistinguished { .. }));
    }

    #[test]
    fn conjunctive_query_joins_on_shared_variable() {
        let q = ConjunctiveQuery::new(
            vec!["x".into(), "len".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("%Aspergillus%")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
            ],
        )
        .expect("valid query");
        let results = q.evaluate(&db());
        assert_eq!(results.len(), 2);
        for b in &results {
            assert!(b.get("x").is_some());
            assert!(b.get("len").is_some());
            assert!(b.get("o").is_none(), "projection must drop extras");
        }
    }

    #[test]
    fn conjunctive_empty_on_unsatisfiable() {
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("Penicillium notatum")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
            ],
        )
        .expect("valid");
        // B00001 has no SequenceLength.
        assert!(q.evaluate(&db()).is_empty());
    }

    #[test]
    fn unbound_distinguished_is_skipped_not_misaligned() {
        // The constructor rejects this shape, but the fields are public;
        // a ghost variable must be dropped (seed projection semantics),
        // never bound to another variable's value.
        let q = ConjunctiveQuery {
            distinguished: vec!["ghost".into(), "x".into()],
            patterns: vec![TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("EMBL#Organism")),
                PatternTerm::constant(Term::literal("%Aspergillus%")),
            )],
        };
        let results = q.evaluate(&db());
        assert_eq!(results.len(), 2);
        for b in &results {
            assert!(b.get("x").is_some());
            assert!(b.get("ghost").is_none(), "ghost must not capture ?x");
        }
    }

    #[test]
    fn empty_conjunction_rejected() {
        assert_eq!(
            ConjunctiveQuery::new(vec![], vec![]).unwrap_err(),
            QueryError::EmptyQuery
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        let q = TriplePatternQuery::example_aspergillus();
        assert_eq!(
            q.to_string(),
            "SearchFor(?x : (?x, <EMBL#Organism>, \"%Aspergillus%\"))"
        );
    }
}
