//! # gridvine-netsim
//!
//! A deterministic discrete-event network simulator. This crate stands in
//! for the *Internet layer* of the GridVine architecture (Figure 1 of the
//! paper): several hundred machines scattered around the world, exchanging
//! messages over a wide-area network.
//!
//! The paper's headline deployment claim (§2.3) — *"a recent deployment of
//! GridVine on 340 machines scattered around the world sharing 17000
//! triples showed that 40% of the 23000 triple pattern queries we submitted
//! were answered within one second only, and 75% within five seconds"* — is
//! a statement about overlay hop counts multiplied by wide-area round-trip
//! times. This simulator reproduces exactly that product:
//!
//! * a [`clock::SimTime`] with microsecond resolution,
//! * an [`event::EventQueue`] with deterministic FIFO tie-breaking,
//! * pluggable [`latency`] models, including a regional WAN model with
//!   log-normally distributed inter-region delays,
//! * a generic actor-style [`network::Network`] in which protocol nodes
//!   (implementing [`node::Node`]) exchange typed messages and set timers,
//! * a [`churn`] process injecting node failures and joins,
//! * [`stats`] utilities (histograms, CDFs, percentiles) used by every
//!   experiment binary.
//!
//! Everything is seeded: running the same experiment twice produces
//! byte-identical output.
//!
//! ## Quick example
//!
//! ```
//! use gridvine_netsim::prelude::*;
//!
//! // A trivial protocol: every node replies "pong" to "ping".
//! #[derive(Clone, Debug)]
//! enum Msg { Ping, Pong }
//!
//! struct Echo { pongs: usize }
//! impl Node<Msg> for Echo {
//!     fn handle_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
//!         match msg {
//!             Msg::Ping => ctx.send(from, Msg::Pong),
//!             Msg::Pong => self.pongs += 1,
//!         }
//!     }
//! }
//!
//! let mut net = Network::new(NetworkConfig::lan(), 42);
//! let a = net.add_node(Echo { pongs: 0 });
//! let b = net.add_node(Echo { pongs: 0 });
//! net.send_external(a, b, Msg::Ping);
//! net.run_until_quiescent();
//! assert_eq!(net.node(a).pongs, 1);
//! ```

pub mod churn;
pub mod clock;
pub mod event;
pub mod fault;
pub mod latency;
pub mod network;
pub mod node;
pub mod rng;
pub mod stats;
pub mod trace;

/// Convenient glob-import surface for simulator users.
pub mod prelude {
    pub use crate::churn::{ChurnConfig, ChurnProcess};
    pub use crate::clock::{SimDuration, SimTime};
    pub use crate::fault::{FaultConfig, FaultModel, LinkFault};
    pub use crate::latency::{LatencyConfig, LatencyModel, RegionalWan, UniformLatency};
    pub use crate::network::{Network, NetworkConfig, NetworkStats};
    pub use crate::node::{Ctx, Node, NodeId};
    pub use crate::stats::{Cdf, FaultCounters, Histogram, ReplicaCounters, Summary};
}

pub use churn::{ChurnConfig, ChurnProcess};
pub use clock::{SimDuration, SimTime};
pub use event::EventQueue;
pub use fault::{FaultConfig, FaultModel, LinkFault};
pub use latency::{
    ConstantLatency, LatencyConfig, LatencyModel, RegionalWan, RegionalWanConfig, UniformLatency,
};
pub use network::{Network, NetworkConfig, NetworkStats};
pub use node::{Ctx, Node, NodeId};
pub use stats::{Cdf, FaultCounters, Histogram, ReplicaCounters, Summary};
