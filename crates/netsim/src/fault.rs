//! Deterministic message-fault injection: loss, duplication, reorder.
//!
//! The latency models answer *when* a message arrives; the fault model
//! answers *whether* and *how many times*. Composed inside
//! [`crate::network::Network`], it turns the simulator from a reliable
//! delayed channel into the unreliable wide-area substrate the paper
//! assumes ("highly unreliable, dynamic environments", §2.1): messages
//! may be silently dropped, delivered twice, or overtaken by later
//! traffic.
//!
//! A message copy's fate is decided at send time by [`FaultModel::apply`]:
//!
//! ```text
//!              ┌── loss draw ──► dropped (no copies)
//!   send ──────┤
//!              └── delivered ──► 1 copy (+ reorder jitter on the delay)
//!                       │
//!                       └── duplication draw ──► +1 extra copy
//! ```
//!
//! Every draw comes from the model's own RNG stream (derived from the
//! network seed), so enabling faults never perturbs latency sampling or
//! protocol randomness — a run with a *null* fault config is bit-identical
//! to a run on a fault-free network, and a faulty run is reproducible from
//! its seed. Draws are gated on the corresponding probability being
//! non-zero: a config with `duplication == 0` consumes no duplication
//! randomness, so fault dimensions are independently toggleable without
//! shifting each other's streams.
//!
//! Per-link overrides ([`LinkFault`]) are *directional*, which models
//! asymmetric links: `a → b` can be lossy while `b → a` is clean.

use crate::clock::SimDuration;
use crate::node::NodeId;
use crate::rng;
use crate::stats::FaultCounters;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fault parameters for one direction of one link (overrides the base
/// [`FaultConfig`] rates for messages from `from` to `to`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Sender node index.
    pub from: usize,
    /// Receiver node index.
    pub to: usize,
    /// Loss probability on this direction.
    pub loss: f64,
    /// Duplication probability on this direction.
    pub duplication: f64,
    /// Reorder probability on this direction.
    pub reorder: f64,
}

impl LinkFault {
    /// A one-directional lossy link with duplication and reorder
    /// disabled on that direction.
    pub fn lossy(from: usize, to: usize, loss: f64) -> LinkFault {
        LinkFault {
            from,
            to,
            loss,
            duplication: 0.0,
            reorder: 0.0,
        }
    }
}

/// Network-wide fault rates plus directional per-link overrides.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Independent probability that a message is dropped. Must be in
    /// `[0, 1)`.
    pub loss: f64,
    /// Probability that a delivered message arrives twice. In `[0, 1]`.
    pub duplication: f64,
    /// Probability that a delivered copy is held back by extra jitter,
    /// letting messages sent after it overtake it. In `[0, 1]`.
    pub reorder: f64,
    /// Maximum extra delay added to a reordered (or duplicated) copy.
    pub reorder_jitter: SimDuration,
    /// Directional overrides for specific links (asymmetric links). A
    /// message whose `(from, to)` matches an entry uses that entry's
    /// rates instead of the base rates.
    pub links: Vec<LinkFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// The null model: every message delivered exactly once, in order.
    pub fn none() -> FaultConfig {
        FaultConfig {
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.0,
            reorder_jitter: SimDuration::from_millis(50),
            links: Vec::new(),
        }
    }

    /// Uniform loss at probability `p`.
    pub fn lossy(p: f64) -> FaultConfig {
        FaultConfig {
            loss: p,
            ..FaultConfig::none()
        }
    }

    /// Uniform duplication at probability `p`.
    pub fn duplicating(p: f64) -> FaultConfig {
        FaultConfig {
            duplication: p,
            ..FaultConfig::none()
        }
    }

    /// Uniform reordering: each copy is delayed by up to `jitter` with
    /// probability `p`.
    pub fn reordering(p: f64, jitter: SimDuration) -> FaultConfig {
        FaultConfig {
            reorder: p,
            reorder_jitter: jitter,
            ..FaultConfig::none()
        }
    }

    /// Whether this config can never alter a delivery (fast path: the
    /// network skips fault processing entirely).
    pub fn is_null(&self) -> bool {
        self.loss == 0.0 && self.duplication == 0.0 && self.reorder == 0.0 && self.links.is_empty()
    }

    /// Panic unless every rate is in range (loss in `[0, 1)`, the
    /// rest in `[0, 1]`). [`FaultModel::new`] calls this; consumers
    /// embedding a `FaultConfig` in their own protocol state (e.g. the
    /// core scheduler's retry protocol) should too.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.loss),
            "fault loss probability must be in [0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&self.duplication),
            "duplication probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.reorder),
            "reorder probability must be in [0, 1]"
        );
        for l in &self.links {
            assert!(
                (0.0..1.0).contains(&l.loss),
                "link loss probability must be in [0, 1)"
            );
            assert!(
                (0.0..=1.0).contains(&l.duplication),
                "link duplication probability must be in [0, 1]"
            );
            assert!(
                (0.0..=1.0).contains(&l.reorder),
                "link reorder probability must be in [0, 1]"
            );
        }
    }
}

/// The fate of one sent message: extra delay for each copy that will be
/// delivered. Empty means the message was lost.
#[derive(Debug, Clone, Default)]
pub struct Delivery {
    /// One entry per delivered copy: extra delay charged on top of the
    /// latency model's sample.
    pub copies: Vec<SimDuration>,
}

/// Stateful fault process: the config plus its own deterministic RNG
/// stream and running counters.
#[derive(Debug)]
pub struct FaultModel {
    cfg: FaultConfig,
    rng: StdRng,
    counters: FaultCounters,
}

impl FaultModel {
    /// Build a model from a validated config; the RNG stream is derived
    /// from the network seed so fault draws never collide with latency
    /// or protocol randomness.
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultModel {
        cfg.validate();
        FaultModel {
            cfg,
            rng: rng::derive(seed, 0xFA17),
            counters: FaultCounters::default(),
        }
    }

    /// Whether this model can never alter a delivery.
    pub fn is_null(&self) -> bool {
        self.cfg.is_null()
    }

    /// Fault counts so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    fn rates(&self, from: NodeId, to: NodeId) -> (f64, f64, f64) {
        for l in &self.cfg.links {
            if l.from == from.index() && l.to == to.index() {
                return (l.loss, l.duplication, l.reorder);
            }
        }
        (self.cfg.loss, self.cfg.duplication, self.cfg.reorder)
    }

    fn jitter(&mut self) -> SimDuration {
        let max = self.cfg.reorder_jitter.0;
        if max == 0 {
            return SimDuration::ZERO;
        }
        SimDuration(self.rng.gen_range(0..=max))
    }

    /// Decide the fate of one message from `from` to `to`. Draws are
    /// gated on non-zero rates so disabled fault dimensions consume no
    /// randomness.
    pub fn apply(&mut self, from: NodeId, to: NodeId) -> Delivery {
        let (loss, duplication, reorder) = self.rates(from, to);
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            self.counters.lost += 1;
            return Delivery::default();
        }
        let mut first = SimDuration::ZERO;
        if reorder > 0.0 && self.rng.gen::<f64>() < reorder {
            self.counters.reordered += 1;
            first = self.jitter();
        }
        let mut copies = vec![first];
        if duplication > 0.0 && self.rng.gen::<f64>() < duplication {
            self.counters.duplicated += 1;
            // The duplicate trails the original by its own jitter draw.
            copies.push(first + self.jitter());
        }
        Delivery { copies }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn null_model_delivers_exactly_once() {
        let mut m = FaultModel::new(FaultConfig::none(), 7);
        for _ in 0..100 {
            let d = m.apply(n(0), n(1));
            assert_eq!(d.copies, vec![SimDuration::ZERO]);
        }
        assert_eq!(m.counters(), FaultCounters::default());
    }

    #[test]
    fn loss_rate_roughly_matches() {
        let mut m = FaultModel::new(FaultConfig::lossy(0.25), 3);
        let trials = 10_000;
        let mut lost = 0usize;
        for _ in 0..trials {
            if m.apply(n(0), n(1)).copies.is_empty() {
                lost += 1;
            }
        }
        let rate = lost as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate}");
        assert_eq!(m.counters().lost, lost as u64);
    }

    #[test]
    fn duplication_produces_two_copies() {
        let mut m = FaultModel::new(FaultConfig::duplicating(1.0), 5);
        let d = m.apply(n(0), n(1));
        assert_eq!(d.copies.len(), 2);
        assert_eq!(m.counters().duplicated, 1);
    }

    #[test]
    fn reorder_adds_bounded_jitter() {
        let jitter = SimDuration::from_millis(10);
        let mut m = FaultModel::new(FaultConfig::reordering(1.0, jitter), 9);
        for _ in 0..500 {
            let d = m.apply(n(0), n(1));
            assert_eq!(d.copies.len(), 1);
            assert!(d.copies[0] <= jitter);
        }
        assert_eq!(m.counters().reordered, 500);
    }

    #[test]
    fn link_overrides_are_directional() {
        let cfg = FaultConfig {
            links: vec![LinkFault::lossy(0, 1, 0.999)],
            ..FaultConfig::none()
        };
        let mut m = FaultModel::new(cfg, 2);
        let mut forward_lost = 0usize;
        for _ in 0..200 {
            if m.apply(n(0), n(1)).copies.is_empty() {
                forward_lost += 1;
            }
            // The reverse direction uses the (lossless) base rates.
            assert_eq!(m.apply(n(1), n(0)).copies.len(), 1);
        }
        assert!(forward_lost > 150, "forward lost only {forward_lost}/200");
    }

    #[test]
    fn identical_seeds_identical_fates() {
        let run = |seed: u64| {
            let mut m = FaultModel::new(
                FaultConfig {
                    loss: 0.2,
                    duplication: 0.2,
                    reorder: 0.5,
                    ..FaultConfig::none()
                },
                seed,
            );
            (0..300)
                .map(|i| m.apply(n(i % 7), n(i % 5)).copies)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn disabled_dimensions_consume_no_randomness() {
        // A loss-only config must make exactly the same loss decisions
        // whether or not duplication/reorder are *configured off* — i.e.
        // the loss stream does not shift when other draws are gated out.
        let fates = |cfg: FaultConfig| {
            let mut m = FaultModel::new(cfg, 4);
            (0..500)
                .map(|_| m.apply(n(0), n(1)).copies.is_empty())
                .collect::<Vec<bool>>()
        };
        let plain = fates(FaultConfig::lossy(0.3));
        let with_zero_dup = fates(FaultConfig {
            loss: 0.3,
            duplication: 0.0,
            reorder: 0.0,
            ..FaultConfig::none()
        });
        assert_eq!(plain, with_zero_dup);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_invalid_loss() {
        let _ = FaultModel::new(FaultConfig::lossy(1.0), 0);
    }
}
