//! Message latency models.
//!
//! The simulator charges each message a one-way delay drawn from a
//! [`LatencyModel`]. Three models are provided:
//!
//! * [`ConstantLatency`] — fixed delay, useful in unit tests;
//! * [`UniformLatency`] — uniform in a range, a simple LAN stand-in;
//! * [`RegionalWan`] — the model behind experiment E1. Nodes are assigned
//!   to geographic regions; one-way delay is log-normal with a median
//!   that depends on whether the two endpoints share a region, plus a
//!   per-message processing overhead. Defaults are calibrated to
//!   PlanetLab-era measurements (intra-region ≈ 15 ms, inter-region
//!   ≈ 80–160 ms medians), matching the paper's 2007 wide-area deployment.

use crate::clock::SimDuration;
use crate::node::NodeId;
use crate::rng;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Strategy for sampling the one-way delay of a message.
pub trait LatencyModel: Send {
    /// Sample the one-way delay for a message from `from` to `to`.
    fn sample(&mut self, from: NodeId, to: NodeId) -> SimDuration;

    /// Called when a node joins so region-aware models can place it.
    fn on_node_added(&mut self, _node: NodeId) {}

    /// The *expected* (deterministic, draw-free) one-way delay from
    /// `from` to `to` — the ranking statistic replica-aware routing
    /// uses to prefer nearby copies. Unlike [`LatencyModel::sample`]
    /// this must never consume distributional randomness, so calling
    /// it leaves the sample stream untouched; models without a
    /// meaningful expectation return [`SimDuration::ZERO`] and let the
    /// caller fall back to its flat cost formula.
    fn expected(&mut self, from: NodeId, to: NodeId) -> SimDuration {
        let _ = (from, to);
        SimDuration::ZERO
    }
}

/// Every message takes exactly the same time.
#[derive(Debug, Clone)]
pub struct ConstantLatency {
    pub delay: SimDuration,
}

impl ConstantLatency {
    pub fn new(delay: SimDuration) -> Self {
        ConstantLatency { delay }
    }
}

impl LatencyModel for ConstantLatency {
    fn sample(&mut self, _from: NodeId, _to: NodeId) -> SimDuration {
        self.delay
    }

    fn expected(&mut self, _from: NodeId, _to: NodeId) -> SimDuration {
        self.delay
    }
}

/// Uniformly distributed delay in `[min, max]`.
#[derive(Debug)]
pub struct UniformLatency {
    min: SimDuration,
    max: SimDuration,
    rng: StdRng,
}

impl UniformLatency {
    /// # Panics
    /// Panics if `min > max`.
    pub fn new(min: SimDuration, max: SimDuration, seed: u64) -> Self {
        assert!(min <= max, "min latency must not exceed max");
        UniformLatency {
            min,
            max,
            rng: rng::seeded(seed),
        }
    }
}

impl LatencyModel for UniformLatency {
    fn sample(&mut self, _from: NodeId, _to: NodeId) -> SimDuration {
        if self.min == self.max {
            return self.min;
        }
        SimDuration(self.rng.gen_range(self.min.0..=self.max.0))
    }

    fn expected(&mut self, _from: NodeId, _to: NodeId) -> SimDuration {
        // Midpoint of the range: the distribution mean, draw-free.
        SimDuration(self.min.0 + (self.max.0 - self.min.0) / 2)
    }
}

/// Serializable choice of latency model, for embedding in system-level
/// configuration (e.g. `gridvine-core`'s `GridVineConfig`).
///
/// [`LatencyConfig::Flat`] is the null model: it builds **no** sampler
/// ([`LatencyConfig::build`] returns `None`) so consumers keep their
/// built-in deterministic cost formula and draw **zero** randomness — a
/// run with the default config is bit-identical to one that predates
/// this enum, mirroring the null-config discipline of
/// [`crate::fault::FaultConfig`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum LatencyConfig {
    /// No sampled latency: the consumer's flat per-message cost model.
    #[default]
    Flat,
    /// Every message takes exactly `delay` ([`ConstantLatency`]).
    Constant {
        /// Fixed one-way delay.
        delay: SimDuration,
    },
    /// Uniform in `[min, max]` ([`UniformLatency`]).
    Uniform {
        /// Lower bound of the one-way delay.
        min: SimDuration,
        /// Upper bound of the one-way delay.
        max: SimDuration,
    },
    /// Region-aware log-normal wide-area model ([`RegionalWan`]).
    RegionalWan(RegionalWanConfig),
}

impl LatencyConfig {
    /// The PlanetLab-calibrated WAN model
    /// ([`RegionalWanConfig::planetlab_2007`]).
    pub fn planetlab_2007() -> LatencyConfig {
        LatencyConfig::RegionalWan(RegionalWanConfig::planetlab_2007())
    }

    /// True for the null (flat) model.
    pub fn is_flat(&self) -> bool {
        matches!(self, LatencyConfig::Flat)
    }

    /// Build the sampler, seeding its private RNG stream from `seed`.
    /// Returns `None` for [`LatencyConfig::Flat`] so the caller can keep
    /// its closed-form cost model without any RNG draws.
    pub fn build(&self, seed: u64) -> Option<Box<dyn LatencyModel>> {
        match self {
            LatencyConfig::Flat => None,
            LatencyConfig::Constant { delay } => Some(Box::new(ConstantLatency::new(*delay))),
            LatencyConfig::Uniform { min, max } => {
                Some(Box::new(UniformLatency::new(*min, *max, seed)))
            }
            LatencyConfig::RegionalWan(cfg) => Some(Box::new(RegionalWan::new(cfg.clone(), seed))),
        }
    }
}

/// Configuration for the regional wide-area model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionalWanConfig {
    /// Number of geographic regions nodes are spread over.
    pub regions: usize,
    /// Median one-way delay between two nodes in the same region.
    pub intra_median: SimDuration,
    /// Median one-way delay between adjacent regions; the effective
    /// median grows with ring distance between the two regions.
    pub inter_median_base: SimDuration,
    /// Additional median per extra region of ring distance.
    pub inter_median_per_hop: SimDuration,
    /// Multiplicative spread (σ of the underlying normal).
    pub sigma: f64,
    /// Fixed per-message processing overhead (serialization, local DB
    /// lookup, scheduling) charged on top of the sampled network delay.
    pub processing: SimDuration,
    /// σ of the log-normal per-node slowdown multiplier applied to the
    /// processing overhead. 0 = homogeneous machines. PlanetLab-era
    /// testbeds were wildly heterogeneous (oversubscribed nodes ran
    /// orders of magnitude slower), which is what produces the heavy
    /// latency tail of the paper's deployment.
    pub node_heterogeneity: f64,
}

impl Default for RegionalWanConfig {
    fn default() -> Self {
        RegionalWanConfig {
            regions: 5,
            intra_median: SimDuration::from_millis(15),
            inter_median_base: SimDuration::from_millis(80),
            inter_median_per_hop: SimDuration::from_millis(40),
            sigma: 0.45,
            processing: SimDuration::from_millis(25),
            node_heterogeneity: 0.0,
        }
    }
}

impl RegionalWanConfig {
    /// Calibrated to the paper's 2007 deployment substrate: PlanetLab
    /// machines around the world running a Java DHT — slow per-message
    /// processing with heavy per-node heterogeneity.
    pub fn planetlab_2007() -> RegionalWanConfig {
        RegionalWanConfig {
            regions: 5,
            intra_median: SimDuration::from_millis(15),
            inter_median_base: SimDuration::from_millis(55),
            inter_median_per_hop: SimDuration::from_millis(30),
            sigma: 0.5,
            // σ = 3.0 looks extreme but matches 2007 PlanetLab: a
            // minority of oversubscribed nodes stalled requests for
            // seconds, producing exactly the heavy tail the paper's
            // 40 %-within-1 s / 75 %-within-5 s CDF records.
            processing: SimDuration::from_millis(22),
            node_heterogeneity: 3.0,
        }
    }
}

/// Log-normal wide-area latency with geographic regions.
#[derive(Debug)]
pub struct RegionalWan {
    cfg: RegionalWanConfig,
    region_of: Vec<usize>,
    /// Per-node processing slowdown multipliers (≥ 0).
    slowdown_of: Vec<f64>,
    rng: StdRng,
}

impl RegionalWan {
    pub fn new(cfg: RegionalWanConfig, seed: u64) -> Self {
        assert!(cfg.regions > 0, "need at least one region");
        assert!(cfg.sigma >= 0.0, "sigma must be non-negative");
        RegionalWan {
            cfg,
            region_of: Vec::new(),
            slowdown_of: Vec::new(),
            rng: rng::seeded(seed),
        }
    }

    /// The default PlanetLab-like model used by experiment E1.
    pub fn planetlab(seed: u64) -> Self {
        RegionalWan::new(RegionalWanConfig::default(), seed)
    }

    /// Region assigned to `node` (nodes are placed round-robin so region
    /// sizes stay balanced, as in the paper's world-wide deployment).
    pub fn region(&self, node: NodeId) -> Option<usize> {
        self.region_of.get(node.index()).copied()
    }

    fn ensure_placed(&mut self, node: NodeId) {
        while self.region_of.len() <= node.index() {
            let r = self.region_of.len() % self.cfg.regions;
            self.region_of.push(r);
            let factor = if self.cfg.node_heterogeneity > 0.0 {
                rng::log_normal(&mut self.rng, 1.0, self.cfg.node_heterogeneity)
            } else {
                1.0
            };
            self.slowdown_of.push(factor);
        }
    }

    /// Ring distance between two regions.
    fn region_distance(&self, a: usize, b: usize) -> usize {
        let n = self.cfg.regions;
        let d = a.abs_diff(b);
        d.min(n - d)
    }
}

impl LatencyModel for RegionalWan {
    fn sample(&mut self, from: NodeId, to: NodeId) -> SimDuration {
        self.ensure_placed(from);
        self.ensure_placed(to);
        let ra = self.region_of[from.index()];
        let rb = self.region_of[to.index()];
        let dist = self.region_distance(ra, rb);
        let median = if dist == 0 {
            self.cfg.intra_median.as_secs_f64()
        } else {
            self.cfg.inter_median_base.as_secs_f64()
                + self.cfg.inter_median_per_hop.as_secs_f64() * (dist - 1) as f64
        };
        let delay = rng::log_normal(&mut self.rng, median, self.cfg.sigma);
        // The receiver pays the processing cost, scaled by its own
        // slowdown factor (heterogeneous machines).
        let processing = self.cfg.processing.mul_f64(self.slowdown_of[to.index()]);
        SimDuration::from_secs_f64(delay) + processing
    }

    fn on_node_added(&mut self, node: NodeId) {
        self.ensure_placed(node);
    }

    fn expected(&mut self, from: NodeId, to: NodeId) -> SimDuration {
        // Deterministic summary of `sample`: the log-normal median for
        // the region pair, plus the receiver's (fixed once placed)
        // processing cost. Placement itself may draw the per-node
        // slowdown factor from the model's private stream on first
        // sight of a node, but that draw happens at most once per node
        // and never perturbs the sample sequence for placed nodes.
        self.ensure_placed(from);
        self.ensure_placed(to);
        let ra = self.region_of[from.index()];
        let rb = self.region_of[to.index()];
        let dist = self.region_distance(ra, rb);
        let median = if dist == 0 {
            self.cfg.intra_median
        } else {
            SimDuration::from_secs_f64(
                self.cfg.inter_median_base.as_secs_f64()
                    + self.cfg.inter_median_per_hop.as_secs_f64() * (dist - 1) as f64,
            )
        };
        median + self.cfg.processing.mul_f64(self.slowdown_of[to.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantLatency::new(SimDuration::from_millis(3));
        assert_eq!(m.sample(n(0), n(1)), SimDuration::from_millis(3));
        assert_eq!(m.sample(n(5), n(9)), SimDuration::from_millis(3));
    }

    #[test]
    fn uniform_stays_in_range() {
        let lo = SimDuration::from_millis(1);
        let hi = SimDuration::from_millis(9);
        let mut m = UniformLatency::new(lo, hi, 11);
        for _ in 0..1000 {
            let d = m.sample(n(0), n(1));
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn uniform_degenerate_range_ok() {
        let d = SimDuration::from_millis(4);
        let mut m = UniformLatency::new(d, d, 1);
        assert_eq!(m.sample(n(0), n(1)), d);
    }

    #[test]
    fn regional_assigns_round_robin() {
        let mut m = RegionalWan::planetlab(5);
        for i in 0..10 {
            m.on_node_added(n(i));
        }
        assert_eq!(m.region(n(0)), Some(0));
        assert_eq!(m.region(n(4)), Some(4));
        assert_eq!(m.region(n(5)), Some(0));
        assert_eq!(m.region(n(7)), Some(2));
    }

    #[test]
    fn intra_region_faster_than_cross_region_on_average() {
        let mut m = RegionalWan::planetlab(5);
        for i in 0..10 {
            m.on_node_added(n(i));
        }
        let samples = 4000;
        // Nodes 0 and 5 share region 0; nodes 0 and 2 are two regions apart.
        let intra: f64 = (0..samples)
            .map(|_| m.sample(n(0), n(5)).as_secs_f64())
            .sum::<f64>()
            / samples as f64;
        let inter: f64 = (0..samples)
            .map(|_| m.sample(n(0), n(2)).as_secs_f64())
            .sum::<f64>()
            / samples as f64;
        assert!(
            inter > intra * 1.5,
            "intra {intra:.4}s should be well below inter {inter:.4}s"
        );
    }

    #[test]
    fn latency_config_flat_builds_nothing() {
        assert!(LatencyConfig::default().is_flat());
        assert!(LatencyConfig::Flat.build(7).is_none());
        let built = LatencyConfig::Constant {
            delay: SimDuration::from_millis(2),
        }
        .build(7);
        let mut m = built.expect("constant builds a model");
        assert_eq!(m.sample(n(0), n(1)), SimDuration::from_millis(2));
    }

    #[test]
    fn latency_config_builds_are_seed_deterministic() {
        let cfg = LatencyConfig::planetlab_2007();
        let mut a = cfg.build(42).expect("wan builds");
        let mut b = cfg.build(42).expect("wan builds");
        for i in 0..64 {
            let (f, t) = (n(i % 8), n((i * 3) % 8));
            assert_eq!(a.sample(f, t), b.sample(f, t));
        }
    }

    #[test]
    fn region_distance_is_ring_metric() {
        let m = RegionalWan::new(
            RegionalWanConfig {
                regions: 6,
                ..RegionalWanConfig::default()
            },
            0,
        );
        assert_eq!(m.region_distance(0, 0), 0);
        assert_eq!(m.region_distance(0, 1), 1);
        assert_eq!(m.region_distance(0, 5), 1); // wraps around
        assert_eq!(m.region_distance(1, 4), 3);
    }
}
