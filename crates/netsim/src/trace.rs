//! Lightweight, allocation-conscious event tracing.
//!
//! The tracer is a bounded in-memory ring of formatted lines guarded by
//! a level filter. Experiments keep it at [`Level::Off`]; integration
//! tests raise it to inspect protocol behaviour without a logging
//! dependency.

use crate::clock::SimTime;
use std::collections::VecDeque;

/// Trace verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Off,
    Info,
    Debug,
}

/// A bounded trace buffer.
#[derive(Debug)]
pub struct Tracer {
    level: Level,
    capacity: usize,
    lines: VecDeque<String>,
    dropped: u64,
}

impl Tracer {
    pub fn new(level: Level, capacity: usize) -> Tracer {
        Tracer {
            level,
            capacity: capacity.max(1),
            lines: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A tracer that records nothing.
    pub fn off() -> Tracer {
        Tracer::new(Level::Off, 1)
    }

    pub fn level(&self) -> Level {
        self.level
    }

    pub fn set_level(&mut self, level: Level) {
        self.level = level;
    }

    /// Record a line if `level` is enabled. The closure is only invoked
    /// when the line will actually be kept, so disabled tracing is free.
    pub fn log<F: FnOnce() -> String>(&mut self, level: Level, at: SimTime, f: F) {
        if level > self.level || self.level == Level::Off {
            return;
        }
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
            self.dropped += 1;
        }
        self.lines.push_back(format!("[{at}] {}", f()));
    }

    /// Lines currently retained, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.lines.iter().map(String::as_str)
    }

    /// Number of lines evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn clear(&mut self) {
        self.lines.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let mut t = Tracer::off();
        t.log(Level::Info, SimTime(0), || "hello".into());
        assert_eq!(t.lines().count(), 0);
    }

    #[test]
    fn level_filtering() {
        let mut t = Tracer::new(Level::Info, 10);
        t.log(Level::Info, SimTime(0), || "kept".into());
        t.log(Level::Debug, SimTime(0), || "filtered".into());
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("kept"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::new(Level::Debug, 3);
        for i in 0..5 {
            t.log(Level::Info, SimTime(i), || format!("line{i}"));
        }
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("line2"));
        assert!(lines[2].contains("line4"));
        assert_eq!(t.dropped(), 2);
        t.clear();
        assert_eq!(t.lines().count(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn closure_not_called_when_disabled() {
        let mut t = Tracer::off();
        let mut called = false;
        t.log(Level::Info, SimTime(0), || {
            called = true;
            String::new()
        });
        assert!(!called);
    }
}
