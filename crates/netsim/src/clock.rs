//! Simulated time.
//!
//! Simulation time is a monotonically non-decreasing counter with
//! microsecond resolution. Using an integer (rather than `f64` seconds)
//! keeps event ordering exact and the simulation fully deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since simulation start.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`. Saturates at zero rather than
    /// panicking so that latency arithmetic on reordered samples is safe.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Build a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Build a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Build a duration from fractional seconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scale the duration by a non-negative factor.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = SimTime(500) + SimDuration::from_millis(2);
        assert_eq!(t, SimTime(2_500));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(3), SimDuration::from_millis(3_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration(1_500_000));
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime(100);
        let late = SimTime(300);
        assert_eq!(late - early, SimDuration(200));
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
