//! The discrete-event queue.
//!
//! A classic calendar queue built on [`std::collections::BinaryHeap`].
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO tie-breaking via a monotone sequence number), which is what makes
//! whole-simulation determinism possible.

use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over payloads of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    scheduled_total: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pair is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `payload` for delivery at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Remove and return the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop every pending event (used when a simulation is aborted).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Keep only the events whose payload satisfies `f`, preserving the
    /// (time, insertion) delivery order of the survivors.
    ///
    /// Used to cancel one session's in-flight replies on a queue shared
    /// by many sessions: sequence numbers are retained, so survivors
    /// keep their original FIFO tie-break positions.
    pub fn retain(&mut self, mut f: impl FnMut(&E) -> bool) {
        let entries: Vec<Entry<E>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|e| f(&e.payload))
            .collect();
        self.heap = entries.into();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(5), 0);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        q.schedule(SimTime(7), 2);
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
    }

    #[test]
    fn peek_and_counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime(42), ());
        q.schedule(SimTime(41), ());
        assert_eq!(q.peek_time(), Some(SimTime(41)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total is a lifetime counter and survives clear().
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn retain_preserves_order_and_ties() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime(5), i); // all tied: FIFO by insertion
        }
        q.schedule(SimTime(1), 100);
        q.retain(|&e| e % 2 == 0 || e == 100);
        assert_eq!(q.pop(), Some((SimTime(1), 100)));
        for i in [0, 2, 4, 6, 8] {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
        assert_eq!(q.pop(), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping the whole queue yields times in non-decreasing order,
        /// and equal times come out in insertion order.
        #[test]
        fn pop_order_is_total(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
