//! Deterministic random sampling helpers.
//!
//! The offline `rand` crate (0.8) ships uniform distributions only; the
//! heavier samplers the experiments need — log-normal wide-area latencies,
//! Zipf-skewed key popularity, exponential inter-arrival times for churn —
//! are implemented here from first principles so no extra dependency is
//! required.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create the canonical seeded RNG used throughout the workspace.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent child RNG from a parent seed and a stream label.
///
/// Experiments fan out over parameter sweeps; giving each run
/// `derive(seed, run_index)` keeps runs independent yet reproducible.
pub fn derive(seed: u64, stream: u64) -> StdRng {
    seeded(derive_seed(seed, stream))
}

/// The child *seed* behind [`derive()`], for consumers that seed their own
/// generator (e.g. a latency model constructed from a `u64`).
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer mixes the pair into a well-distributed child seed.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a log-normal variate with the given *median* and multiplicative
/// spread `sigma` (the standard deviation of the underlying normal).
///
/// Wide-area RTTs are classically modelled as log-normal: a tight body
/// around the propagation delay with a heavy right tail from queueing.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    median * (sigma * standard_normal(rng)).exp()
}

/// Sample an exponential variate with the given rate (events per unit).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    -u.ln() / rate
}

/// A Zipf(θ) sampler over ranks `0..n` using the classical CDF-inversion
/// table. θ = 0 degenerates to uniform; θ ≈ 0.8–1.2 matches the skew of
/// real predicate popularity in triple stores.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `theta ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point drift so binary search always lands.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = derive(7, 0);
        let mut b = derive(7, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn log_normal_median_roughly_holds() {
        let mut rng = seeded(1);
        let mut samples: Vec<f64> = (0..20_001)
            .map(|_| log_normal(&mut rng, 50.0, 0.5))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 50.0).abs() < 3.0, "median was {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        let mut rng = seeded(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = seeded(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.0);
        let mut rng = seeded(4);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[99]);
        // Rank 0 under Zipf(1.0, n=100) carries ~19% of the mass.
        assert!(counts[0] as f64 > 0.15 * 50_000.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every Zipf sample is a valid rank.
        #[test]
        fn zipf_samples_in_range(n in 1usize..500, theta in 0.0f64..2.5, seed in 0u64..1000) {
            let z = Zipf::new(n, theta);
            let mut rng = seeded(seed);
            for _ in 0..64 {
                let r = z.sample(&mut rng);
                prop_assert!(r < n);
            }
        }

        /// Log-normal samples are strictly positive and finite.
        #[test]
        fn log_normal_positive(median in 0.1f64..1000.0, sigma in 0.0f64..2.0, seed in 0u64..1000) {
            let mut rng = seeded(seed);
            for _ in 0..32 {
                let x = log_normal(&mut rng, median, sigma);
                prop_assert!(x > 0.0 && x.is_finite());
            }
        }
    }
}
