//! The network simulator proper.
//!
//! [`Network`] owns the protocol nodes, the event queue and the latency
//! model, and advances simulated time by executing events in order. It is
//! the single mutation point of a simulation, which is what guarantees
//! reproducibility: all randomness flows from the seed given at
//! construction.

use crate::clock::{SimDuration, SimTime};
use crate::event::EventQueue;
use crate::fault::{FaultConfig, FaultModel};
use crate::latency::{
    ConstantLatency, LatencyModel, RegionalWan, RegionalWanConfig, UniformLatency,
};
use crate::node::{Action, Ctx, Node, NodeId};
use crate::rng;
use crate::stats::FaultCounters;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which latency model to instantiate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LatencyConfig {
    /// Fixed delay per message.
    Constant { micros: u64 },
    /// Uniform delay in `[min, max]` microseconds.
    Uniform { min_micros: u64, max_micros: u64 },
    /// The PlanetLab-like regional WAN model (see [`RegionalWan`]).
    RegionalWan {
        regions: usize,
        intra_median_ms: u64,
        inter_median_base_ms: u64,
        inter_median_per_hop_ms: u64,
        sigma: f64,
        processing_ms: u64,
        /// σ of the per-node processing slowdown (0 = homogeneous).
        node_heterogeneity: f64,
    },
}

/// Simulation-wide configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    pub latency: LatencyConfig,
    /// Independent probability that any message is silently lost.
    ///
    /// This is the legacy uniform-loss knob; it draws from the network's
    /// own RNG stream and composes with (applies before) `fault`.
    pub loss_probability: f64,
    /// Message fault process: loss, duplication and reorder, with
    /// optional asymmetric per-link overrides (see [`crate::fault`]).
    #[serde(default)]
    pub fault: FaultConfig,
}

impl NetworkConfig {
    /// A fast, lossless LAN: constant 1 ms. Good default for unit tests.
    pub fn lan() -> NetworkConfig {
        NetworkConfig {
            latency: LatencyConfig::Constant { micros: 1_000 },
            loss_probability: 0.0,
            fault: FaultConfig::none(),
        }
    }

    /// A wide-area model with homogeneous, modern machines.
    pub fn planetlab() -> NetworkConfig {
        NetworkConfig::from_wan(RegionalWanConfig::default())
    }

    /// The wide-area model of experiment E1: 2007-era PlanetLab-like
    /// machines (slow Java processing, heavy node heterogeneity).
    pub fn planetlab_2007() -> NetworkConfig {
        NetworkConfig::from_wan(RegionalWanConfig::planetlab_2007())
    }

    fn from_wan(d: RegionalWanConfig) -> NetworkConfig {
        NetworkConfig {
            latency: LatencyConfig::RegionalWan {
                regions: d.regions,
                intra_median_ms: d.intra_median.as_millis(),
                inter_median_base_ms: d.inter_median_base.as_millis(),
                inter_median_per_hop_ms: d.inter_median_per_hop.as_millis(),
                sigma: d.sigma,
                processing_ms: d.processing.as_millis(),
                node_heterogeneity: d.node_heterogeneity,
            },
            loss_probability: 0.0,
            fault: FaultConfig::none(),
        }
    }

    /// Same topology with message loss, for resilience experiments.
    pub fn lossy_planetlab(loss_probability: f64) -> NetworkConfig {
        NetworkConfig {
            loss_probability,
            ..NetworkConfig::planetlab()
        }
    }

    /// Same topology with a full fault process.
    pub fn faulty_planetlab(fault: FaultConfig) -> NetworkConfig {
        NetworkConfig {
            fault,
            ..NetworkConfig::planetlab()
        }
    }

    fn build_latency(&self, seed: u64) -> Box<dyn LatencyModel> {
        match &self.latency {
            LatencyConfig::Constant { micros } => {
                Box::new(ConstantLatency::new(SimDuration::from_micros(*micros)))
            }
            LatencyConfig::Uniform {
                min_micros,
                max_micros,
            } => Box::new(UniformLatency::new(
                SimDuration::from_micros(*min_micros),
                SimDuration::from_micros(*max_micros),
                seed ^ 0xA5A5,
            )),
            LatencyConfig::RegionalWan {
                regions,
                intra_median_ms,
                inter_median_base_ms,
                inter_median_per_hop_ms,
                sigma,
                processing_ms,
                node_heterogeneity,
            } => Box::new(RegionalWan::new(
                RegionalWanConfig {
                    regions: *regions,
                    intra_median: SimDuration::from_millis(*intra_median_ms),
                    inter_median_base: SimDuration::from_millis(*inter_median_base_ms),
                    inter_median_per_hop: SimDuration::from_millis(*inter_median_per_hop_ms),
                    sigma: *sigma,
                    processing: SimDuration::from_millis(*processing_ms),
                    node_heterogeneity: *node_heterogeneity,
                },
                seed ^ 0x5A5A,
            )),
        }
    }
}

/// Aggregate message accounting for a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Messages handed to the network by nodes or the harness.
    pub sent: u64,
    /// Messages delivered to a live node's handler.
    pub delivered: u64,
    /// Messages dropped by the loss process.
    pub lost: u64,
    /// Messages dropped because the destination was crashed.
    pub dropped_dead: u64,
    /// Timer events fired.
    pub timers_fired: u64,
}

enum Event<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, token: u64 },
}

struct Slot<N> {
    node: N,
    alive: bool,
}

/// The discrete-event network over protocol nodes of type `N`
/// exchanging messages of type `M`.
pub struct Network<N, M> {
    slots: Vec<Slot<N>>,
    queue: EventQueue<Event<M>>,
    latency: Box<dyn LatencyModel>,
    fault: FaultModel,
    now: SimTime,
    rng: StdRng,
    loss_probability: f64,
    stats: NetworkStats,
    actions: Vec<Action<M>>,
}

impl<N: Node<M>, M: Clone> Network<N, M> {
    /// Create an empty network with the given configuration and seed.
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&config.loss_probability),
            "loss probability must be in [0, 1)"
        );
        Network {
            slots: Vec::new(),
            latency: config.build_latency(seed),
            fault: FaultModel::new(config.fault, seed),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: rng::derive(seed, 0xC0FFEE),
            loss_probability: config.loss_probability,
            stats: NetworkStats::default(),
            actions: Vec::new(),
        }
    }

    /// Add a node; returns its id. Invokes [`Node::on_start`].
    pub fn add_node(&mut self, node: N) -> NodeId {
        let id = NodeId::from_index(self.slots.len());
        self.slots.push(Slot { node, alive: true });
        self.latency.on_node_added(id);
        let mut actions = std::mem::take(&mut self.actions);
        {
            let slot = &mut self.slots[id.index()];
            let mut ctx = Ctx {
                self_id: id,
                now: self.now,
                actions: &mut actions,
                rng: &mut self.rng,
            };
            slot.node.on_start(&mut ctx);
        }
        self.actions = actions;
        self.flush_actions(id);
        id
    }

    /// Number of nodes ever added (alive or crashed).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Message accounting so far.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Fault-process accounting so far (loss counted here is also
    /// included in [`NetworkStats::lost`]).
    pub fn fault_stats(&self) -> FaultCounters {
        self.fault.counters()
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &N {
        &self.slots[id.index()].node
    }

    /// Mutable access to a node's protocol state. Mutating state outside
    /// a handler is the harness's prerogative (loading data, inspecting
    /// results); protocol logic should live in handlers.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.slots[id.index()].node
    }

    /// Whether the node is currently up.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.slots[id.index()].alive
    }

    /// Ids of all live nodes.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Inject a message from the outside world (e.g. a user issuing a
    /// query at node `from`). Charged like a normal message.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.enqueue_send(from, to, msg);
    }

    /// Run a closure against node `at` with a full handler context, as if
    /// an internal event occurred there. This is how the harness invokes
    /// protocol entry points (e.g. "start a query") without bypassing the
    /// action machinery.
    pub fn invoke<F, R>(&mut self, at: NodeId, f: F) -> R
    where
        F: FnOnce(&mut N, &mut Ctx<'_, M>) -> R,
    {
        let mut actions = std::mem::take(&mut self.actions);
        let r = {
            let slot = &mut self.slots[at.index()];
            let mut ctx = Ctx {
                self_id: at,
                now: self.now,
                actions: &mut actions,
                rng: &mut self.rng,
            };
            f(&mut slot.node, &mut ctx)
        };
        self.actions = actions;
        self.flush_actions(at);
        r
    }

    /// Crash a node: it stops receiving messages and timers until
    /// [`Network::recover`].
    pub fn crash(&mut self, id: NodeId) {
        let slot = &mut self.slots[id.index()];
        if slot.alive {
            slot.alive = false;
            slot.node.on_crash();
        }
    }

    /// Bring a crashed node back up.
    pub fn recover(&mut self, id: NodeId) {
        if self.slots[id.index()].alive {
            return;
        }
        self.slots[id.index()].alive = true;
        let mut actions = std::mem::take(&mut self.actions);
        {
            let slot = &mut self.slots[id.index()];
            let mut ctx = Ctx {
                self_id: id,
                now: self.now,
                actions: &mut actions,
                rng: &mut self.rng,
            };
            slot.node.on_recover(&mut ctx);
        }
        self.actions = actions;
        self.flush_actions(id);
    }

    /// Execute the next pending event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.step_node().is_some()
    }

    /// Execute the next pending event and return the node it targeted —
    /// the hook an external scheduler (e.g. a query driver reacting to
    /// each completion at its actual simulated completion time) uses to
    /// inspect exactly the node whose state just changed instead of
    /// sweeping the whole network. Returns `None` when the queue is
    /// empty. The target node is reported even if the event was dropped
    /// (crashed destination): its outcome buffers may still have moved.
    pub fn step_node(&mut self) -> Option<NodeId> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now, "time must not move backwards");
        self.now = at;
        match ev {
            Event::Deliver { from, to, msg } => {
                if !self.slots[to.index()].alive {
                    self.stats.dropped_dead += 1;
                    return Some(to);
                }
                self.stats.delivered += 1;
                self.dispatch(to, |node, ctx| node.handle_message(ctx, from, msg));
                Some(to)
            }
            Event::Timer { node, token } => {
                if !self.slots[node.index()].alive {
                    return Some(node);
                }
                self.stats.timers_fired += 1;
                self.dispatch(node, |n, ctx| n.handle_timer(ctx, token));
                Some(node)
            }
        }
    }

    /// Simulated time of the earliest pending event, if any — lets an
    /// external scheduler decide whether to pump the network before a
    /// deadline without executing anything.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Run until no events remain.
    pub fn run_until_quiescent(&mut self) {
        while self.step() {}
    }

    /// Run until the queue is empty or simulated time would pass
    /// `deadline`. Events scheduled after the deadline stay queued.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run at most `n` events.
    pub fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            if !self.step() {
                break;
            }
        }
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn dispatch<F>(&mut self, at: NodeId, f: F)
    where
        F: FnOnce(&mut N, &mut Ctx<'_, M>),
    {
        let mut actions = std::mem::take(&mut self.actions);
        {
            let slot = &mut self.slots[at.index()];
            let mut ctx = Ctx {
                self_id: at,
                now: self.now,
                actions: &mut actions,
                rng: &mut self.rng,
            };
            f(&mut slot.node, &mut ctx);
        }
        self.actions = actions;
        self.flush_actions(at);
    }

    fn flush_actions(&mut self, from: NodeId) {
        // Drain into a local buffer first: enqueue_send needs &mut self.
        let drained: Vec<Action<M>> = self.actions.drain(..).collect();
        for a in drained {
            match a {
                Action::Send { to, msg } => self.enqueue_send(from, to, msg),
                Action::Timer { after, token } => {
                    self.queue
                        .schedule(self.now + after, Event::Timer { node: from, token });
                }
            }
        }
    }

    fn enqueue_send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.stats.sent += 1;
        if self.loss_probability > 0.0 && self.rng.gen::<f64>() < self.loss_probability {
            self.stats.lost += 1;
            return;
        }
        if self.fault.is_null() {
            // Fast path: null fault model, bit-identical to the
            // pre-fault-layer simulator (no extra RNG draws).
            let delay = self.latency.sample(from, to);
            self.queue
                .schedule(self.now + delay, Event::Deliver { from, to, msg });
            return;
        }
        let delivery = self.fault.apply(from, to);
        if delivery.copies.is_empty() {
            self.stats.lost += 1;
            return;
        }
        // One latency sample per message (not per copy): duplicates and
        // reordered copies offset the same base delay by fault jitter, so
        // the latency stream advances exactly as in a fault-free run.
        let delay = self.latency.sample(from, to);
        for extra in delivery.copies {
            self.queue.schedule(
                self.now + delay + extra,
                Event::Deliver {
                    from,
                    to,
                    msg: msg.clone(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Echo {
        pongs: Vec<u32>,
        timer_tokens: Vec<u64>,
        started: bool,
        recovered: bool,
    }

    impl Node<Msg> for Echo {
        fn handle_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(x) => ctx.send(from, Msg::Pong(x)),
                Msg::Pong(x) => self.pongs.push(x),
            }
        }
        fn handle_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, token: u64) {
            self.timer_tokens.push(token);
        }
        fn on_start(&mut self, _ctx: &mut Ctx<'_, Msg>) {
            self.started = true;
        }
        fn on_recover(&mut self, _ctx: &mut Ctx<'_, Msg>) {
            self.recovered = true;
        }
    }

    fn lan() -> Network<Echo, Msg> {
        Network::new(NetworkConfig::lan(), 1)
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut net = lan();
        let a = net.add_node(Echo::default());
        let b = net.add_node(Echo::default());
        net.send_external(a, b, Msg::Ping(9));
        net.run_until_quiescent();
        assert_eq!(net.node(a).pongs, vec![9]);
        let s = net.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.lost, 0);
        // Two 1 ms hops.
        assert_eq!(net.now(), SimTime(2_000));
    }

    #[test]
    fn on_start_runs() {
        let mut net = lan();
        let a = net.add_node(Echo::default());
        assert!(net.node(a).started);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut net = lan();
        let a = net.add_node(Echo::default());
        net.invoke(a, |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(5), 2);
            ctx.set_timer(SimDuration::from_millis(1), 1);
        });
        net.run_until_quiescent();
        assert_eq!(net.node(a).timer_tokens, vec![1, 2]);
        assert_eq!(net.stats().timers_fired, 2);
    }

    #[test]
    fn crashed_node_drops_messages_and_timers() {
        let mut net = lan();
        let a = net.add_node(Echo::default());
        let b = net.add_node(Echo::default());
        net.crash(b);
        net.send_external(a, b, Msg::Ping(1));
        net.run_until_quiescent();
        assert_eq!(net.stats().dropped_dead, 1);
        assert!(net.node(a).pongs.is_empty());

        net.recover(b);
        assert!(net.node(b).recovered);
        net.send_external(a, b, Msg::Ping(2));
        net.run_until_quiescent();
        assert_eq!(net.node(a).pongs, vec![2]);
    }

    #[test]
    fn step_node_reports_the_handling_node() {
        let mut net = lan();
        let a = net.add_node(Echo::default());
        let b = net.add_node(Echo::default());
        net.send_external(a, b, Msg::Ping(3));
        assert_eq!(net.peek_time(), Some(SimTime(1_000)));
        // Ping lands at b, pong lands back at a.
        assert_eq!(net.step_node(), Some(b));
        assert_eq!(net.step_node(), Some(a));
        assert_eq!(net.step_node(), None);
        assert_eq!(net.peek_time(), None);
        // A crashed destination is still reported as the target.
        net.crash(b);
        net.send_external(a, b, Msg::Ping(4));
        assert_eq!(net.step_node(), Some(b));
        assert_eq!(net.stats().dropped_dead, 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut net = lan();
        let a = net.add_node(Echo::default());
        net.invoke(a, |_, ctx| {
            ctx.set_timer(SimDuration::from_millis(1), 1);
            ctx.set_timer(SimDuration::from_millis(100), 2);
        });
        net.run_until(SimTime(10_000));
        assert_eq!(net.node(a).timer_tokens, vec![1]);
        assert_eq!(net.now(), SimTime(10_000));
        assert_eq!(net.pending_events(), 1);
        net.run_until_quiescent();
        assert_eq!(net.node(a).timer_tokens, vec![1, 2]);
    }

    #[test]
    fn loss_drops_roughly_the_configured_fraction() {
        let cfg = NetworkConfig {
            latency: LatencyConfig::Constant { micros: 10 },
            loss_probability: 0.3,
            fault: FaultConfig::none(),
        };
        let mut net: Network<Echo, Msg> = Network::new(cfg, 3);
        let a = net.add_node(Echo::default());
        let b = net.add_node(Echo::default());
        for i in 0..5_000 {
            net.send_external(a, b, Msg::Ping(i));
        }
        net.run_until_quiescent();
        let s = net.stats();
        let loss_rate = s.lost as f64 / s.sent as f64;
        assert!((loss_rate - 0.3).abs() < 0.03, "loss rate {loss_rate}");
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let cfg = NetworkConfig {
                latency: LatencyConfig::Uniform {
                    min_micros: 100,
                    max_micros: 50_000,
                },
                loss_probability: 0.1,
                fault: FaultConfig::none(),
            };
            let mut net: Network<Echo, Msg> = Network::new(cfg, seed);
            let a = net.add_node(Echo::default());
            let b = net.add_node(Echo::default());
            for i in 0..200 {
                net.send_external(a, b, Msg::Ping(i));
            }
            net.run_until_quiescent();
            (net.node(a).pongs.clone(), net.now(), net.stats())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).1, run(78).1);
    }

    #[test]
    fn fault_duplication_delivers_extra_copies() {
        let cfg = NetworkConfig {
            latency: LatencyConfig::Constant { micros: 10 },
            loss_probability: 0.0,
            fault: FaultConfig::duplicating(1.0),
        };
        let mut net: Network<Echo, Msg> = Network::new(cfg, 8);
        let a = net.add_node(Echo::default());
        let b = net.add_node(Echo::default());
        net.send_external(a, b, Msg::Ping(1));
        net.run_until_quiescent();
        // The ping is duplicated, so b answers twice; each pong is also
        // duplicated, so a collects four pongs.
        assert_eq!(net.node(a).pongs, vec![1, 1, 1, 1]);
        let f = net.fault_stats();
        assert_eq!(f.duplicated, 3); // 1 ping + 2 pongs
        assert_eq!(net.stats().delivered, 6);
    }

    #[test]
    fn fault_loss_is_counted_in_network_stats() {
        let cfg = NetworkConfig {
            latency: LatencyConfig::Constant { micros: 10 },
            loss_probability: 0.0,
            fault: FaultConfig::lossy(0.5),
        };
        let mut net: Network<Echo, Msg> = Network::new(cfg, 21);
        let a = net.add_node(Echo::default());
        let b = net.add_node(Echo::default());
        for i in 0..2_000 {
            net.send_external(a, b, Msg::Ping(i));
        }
        net.run_until_quiescent();
        let s = net.stats();
        let f = net.fault_stats();
        assert!(f.lost > 0);
        assert_eq!(s.sent, s.delivered + s.lost);
        let rate = f.lost as f64 / s.sent as f64;
        assert!((rate - 0.5).abs() < 0.05, "fault loss rate {rate}");
    }

    #[test]
    fn fault_reorder_lets_later_messages_overtake() {
        let cfg = NetworkConfig {
            latency: LatencyConfig::Constant { micros: 1_000 },
            loss_probability: 0.0,
            fault: FaultConfig::reordering(0.5, SimDuration::from_millis(20)),
        };
        let mut net: Network<Echo, Msg> = Network::new(cfg, 5);
        let a = net.add_node(Echo::default());
        let b = net.add_node(Echo::default());
        for i in 0..200 {
            net.send_external(b, a, Msg::Pong(i));
        }
        net.run_until_quiescent();
        let pongs = &net.node(a).pongs;
        assert_eq!(pongs.len(), 200, "reorder never loses messages");
        let mut sorted = pongs.clone();
        sorted.sort_unstable();
        assert_ne!(*pongs, sorted, "some copies were overtaken");
        assert!(net.fault_stats().reordered > 0);
    }

    #[test]
    fn null_fault_config_is_bit_identical_to_legacy_runs() {
        let run = |fault: FaultConfig| {
            let cfg = NetworkConfig {
                latency: LatencyConfig::Uniform {
                    min_micros: 100,
                    max_micros: 50_000,
                },
                loss_probability: 0.1,
                fault,
            };
            let mut net: Network<Echo, Msg> = Network::new(cfg, 44);
            let a = net.add_node(Echo::default());
            let b = net.add_node(Echo::default());
            for i in 0..300 {
                net.send_external(a, b, Msg::Ping(i));
            }
            net.run_until_quiescent();
            (net.node(a).pongs.clone(), net.now(), net.stats())
        };
        // `none()` and a hand-rolled all-zero config take the fast path:
        // the simulation is identical to one without a fault layer.
        assert_eq!(run(FaultConfig::none()), run(FaultConfig::default()));
        let a = run(FaultConfig::none());
        let b = run(FaultConfig {
            loss: 0.0,
            duplication: 0.0,
            reorder: 0.0,
            reorder_jitter: SimDuration::ZERO,
            links: Vec::new(),
        });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_invalid_loss() {
        let cfg = NetworkConfig {
            latency: LatencyConfig::Constant { micros: 1 },
            loss_probability: 1.5,
            fault: FaultConfig::none(),
        };
        let _: Network<Echo, Msg> = Network::new(cfg, 0);
    }
}
