//! Measurement utilities: histograms, CDFs and summaries.
//!
//! Every experiment binary reports through these types so output
//! formatting is uniform across the reproduction.

use crate::clock::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Counts of injected message faults (see [`crate::fault::FaultModel`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Messages dropped by the fault process.
    pub lost: u64,
    /// Messages delivered with an extra duplicate copy.
    pub duplicated: u64,
    /// Message copies delayed by reorder jitter.
    pub reordered: u64,
}

impl FaultCounters {
    /// Accumulate another run's counters into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.lost += other.lost;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lost={} duplicated={} reordered={}",
            self.lost, self.duplicated, self.reordered
        )
    }
}

/// Counts of replica-placement activity (replica-aware routing and
/// heat-driven migration in a consumer's placement layer). All zero
/// under a null placement policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaCounters {
    /// Lookups served off a replica-aware routing path instead of the
    /// single canonical key owner.
    pub replica_hits: u64,
    /// Replica holders skipped because they were down before a live
    /// one served the request.
    pub failovers: u64,
    /// Placement changes (replica creations and migrations) triggered
    /// by heat telemetry.
    pub migrations: u64,
}

impl ReplicaCounters {
    /// Accumulate another run's counters into this one.
    pub fn merge(&mut self, other: &ReplicaCounters) {
        self.replica_hits += other.replica_hits;
        self.failovers += other.failovers;
        self.migrations += other.migrations;
    }
}

impl fmt::Display for ReplicaCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replica_hits={} failovers={} migrations={}",
            self.replica_hits, self.failovers, self.migrations
        )
    }
}

/// A streaming summary of f64 observations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Summary {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.count as f64 - m * m).max(0.0).sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min(),
            self.max()
        )
    }
}

/// An exact empirical CDF: stores all samples (experiments here are small
/// enough that exactness beats the complexity of a sketch).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    pub fn new() -> Cdf {
        Cdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
    }

    /// Fraction of samples ≤ `x`. This is the statistic behind the
    /// paper's "40 % of queries answered within one second" claim.
    pub fn fraction_leq(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Evenly spaced (x, F(x)) points suitable for plotting.
    pub fn curve(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=points)
            .map(|i| {
                let q = i as f64 / points as f64;
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                (self.samples[rank - 1], q)
            })
            .collect()
    }

    /// Merge another CDF's samples into this one.
    pub fn merge(&mut self, other: &Cdf) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// A fixed-bucket linear histogram over `[0, max)` with an overflow
/// bucket, for quick textual display of load distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// `buckets` equal-width buckets covering `[0, max)`.
    ///
    /// # Panics
    /// Panics if `max <= 0` or `buckets == 0`.
    pub fn new(max: f64, buckets: usize) -> Histogram {
        assert!(max > 0.0 && buckets > 0, "invalid histogram shape");
        Histogram {
            bucket_width: max / buckets as f64,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
        }
    }

    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < 0.0 {
            // Clamp: negative observations land in the first bucket.
            self.buckets[0] += 1;
            return;
        }
        let idx = (x / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// (bucket lower bound, count) pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * self.bucket_width, c))
    }

    /// Simple ASCII rendering for experiment logs.
    pub fn render(&self, width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (lo, c) in self.buckets() {
            let bar = "#".repeat((c as usize * width / max as usize).min(width));
            out.push_str(&format!("{lo:>10.3} | {bar} {c}\n"));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>10} | {}\n", "overflow", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.std_dev() - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_empty_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut whole = Summary::new();
        for i in 0..10 {
            let x = i as f64 * 1.7;
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn cdf_fraction_leq_matches_paper_statistic() {
        let mut cdf = Cdf::new();
        // 10 samples: 4 are below 1.0s, 3 more below 5.0s.
        for s in [0.2, 0.4, 0.6, 0.9, 1.5, 2.0, 4.0, 6.0, 7.0, 9.0] {
            cdf.record(s);
        }
        assert!((cdf.fraction_leq(1.0) - 0.4).abs() < 1e-12);
        assert!((cdf.fraction_leq(5.0) - 0.7).abs() < 1e-12);
        assert_eq!(cdf.fraction_leq(100.0), 1.0);
    }

    #[test]
    fn cdf_quantiles() {
        let mut cdf = Cdf::new();
        for i in 1..=100 {
            cdf.record(i as f64);
        }
        assert_eq!(cdf.median(), 50.0);
        assert_eq!(cdf.quantile(0.9), 90.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
        assert_eq!(cdf.quantile(0.0), 1.0); // nearest-rank clamps to first
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let mut cdf = Cdf::new();
        for i in 0..57 {
            cdf.record((i * 13 % 31) as f64);
        }
        let curve = cdf.curve(10);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_merge() {
        let mut a = Cdf::new();
        a.record(1.0);
        let mut b = Cdf::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.median(), 1.0);
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(10.0, 5);
        for x in [0.5, 1.0, 3.9, 9.9, 10.0, 25.0, -1.0] {
            h.record(x);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![3, 1, 0, 0, 1]); // -1 clamps into bucket 0
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        let rendering = h.render(20);
        assert!(rendering.contains("overflow"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// fraction_leq is monotone in its argument.
        #[test]
        fn cdf_monotone(xs in proptest::collection::vec(0.0f64..100.0, 1..100),
                        a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let mut cdf = Cdf::new();
            for x in &xs { cdf.record(*x); }
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.fraction_leq(lo) <= cdf.fraction_leq(hi));
        }

        /// Quantile output is always one of the recorded samples.
        #[test]
        fn quantile_is_a_sample(xs in proptest::collection::vec(-50.0f64..50.0, 1..80),
                                q in 0.0f64..=1.0) {
            let mut cdf = Cdf::new();
            for x in &xs { cdf.record(*x); }
            let v = cdf.quantile(q);
            prop_assert!(xs.iter().any(|x| (x - v).abs() < 1e-12));
        }
    }
}
