//! Node churn: random failures and recoveries.
//!
//! P-Grid is designed to stay available "even in highly unreliable,
//! dynamic environments" (§2.1). The churn process models that
//! environment: each live node fails after an exponentially distributed
//! lifetime and recovers after an exponentially distributed downtime.
//! The process is generated ahead of the simulation as a deterministic
//! event list so harnesses can interleave it with protocol traffic.

use crate::clock::{SimDuration, SimTime};
use crate::node::NodeId;
use crate::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Churn intensity parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean time a node stays up before failing.
    pub mean_uptime: SimDuration,
    /// Mean time a node stays down before recovering.
    pub mean_downtime: SimDuration,
    /// Fraction of the population subject to churn (the rest are stable
    /// "server-class" peers, matching measured P2P populations).
    pub churny_fraction: f64,
}

impl ChurnConfig {
    /// A moderate churn level: mean session of 10 simulated minutes,
    /// 1 minute downtime, 50 % of nodes churny.
    pub fn moderate() -> ChurnConfig {
        ChurnConfig {
            mean_uptime: SimDuration::from_secs(600),
            mean_downtime: SimDuration::from_secs(60),
            churny_fraction: 0.5,
        }
    }

    /// Harsh churn: mean session of 2 minutes, all nodes churny.
    pub fn harsh() -> ChurnConfig {
        ChurnConfig {
            mean_uptime: SimDuration::from_secs(120),
            mean_downtime: SimDuration::from_secs(30),
            churny_fraction: 1.0,
        }
    }
}

/// A scheduled up/down transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    pub at: SimTime,
    pub node: NodeId,
    pub kind: ChurnKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    Fail,
    Recover,
}

/// Pre-generated churn schedule over a fixed horizon.
#[derive(Debug, Clone)]
pub struct ChurnProcess {
    events: Vec<ChurnEvent>,
    next: usize,
}

impl ChurnProcess {
    /// Generate the alternating fail/recover schedule for `nodes` nodes
    /// over `[0, horizon]`.
    pub fn generate(cfg: &ChurnConfig, nodes: usize, horizon: SimTime, seed: u64) -> ChurnProcess {
        assert!(
            (0.0..=1.0).contains(&cfg.churny_fraction),
            "churny fraction must be in [0, 1]"
        );
        let mut rng = rng::derive(seed, 0xC0_11AB1E);
        let up_rate = 1.0 / cfg.mean_uptime.as_secs_f64().max(1e-9);
        let down_rate = 1.0 / cfg.mean_downtime.as_secs_f64().max(1e-9);
        let mut events = Vec::new();
        for i in 0..nodes {
            if rng.gen::<f64>() >= cfg.churny_fraction {
                continue;
            }
            let node = NodeId::from_index(i);
            let mut t = SimTime::ZERO;
            let mut up = true;
            loop {
                let rate = if up { up_rate } else { down_rate };
                let dwell = SimDuration::from_secs_f64(rng::exponential(&mut rng, rate));
                t += dwell;
                if t > horizon {
                    break;
                }
                events.push(ChurnEvent {
                    at: t,
                    node,
                    kind: if up {
                        ChurnKind::Fail
                    } else {
                        ChurnKind::Recover
                    },
                });
                up = !up;
            }
        }
        events.sort_by_key(|e| (e.at, e.node));
        ChurnProcess { events, next: 0 }
    }

    /// Generate a **mass-churn storm**: `fraction` of the nodes fail
    /// simultaneously at `at`, each recovering after an independent
    /// exponential outage with mean `mean_outage`. The storm composes
    /// with an ongoing schedule by concatenating event lists — it is the
    /// worst case the self-repair experiments drive: a correlated
    /// failure (power event, partition heal) rather than independent
    /// per-node churn. Node selection and outage draws come from the
    /// churn RNG stream, so a storm is deterministic per seed.
    pub fn storm(
        nodes: usize,
        fraction: f64,
        at: SimTime,
        mean_outage: SimDuration,
        seed: u64,
    ) -> ChurnProcess {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "storm fraction must be in [0, 1]"
        );
        let mut rng = rng::derive(seed, 0xC0_11AB1E);
        let rate = 1.0 / mean_outage.as_secs_f64().max(1e-9);
        let mut events = Vec::new();
        for i in 0..nodes {
            if fraction < 1.0 && rng.gen::<f64>() >= fraction {
                continue;
            }
            let node = NodeId::from_index(i);
            events.push(ChurnEvent {
                at,
                node,
                kind: ChurnKind::Fail,
            });
            let outage = SimDuration::from_secs_f64(rng::exponential(&mut rng, rate));
            events.push(ChurnEvent {
                at: at + outage,
                node,
                kind: ChurnKind::Recover,
            });
        }
        events.sort_by_key(|e| (e.at, e.node));
        ChurnProcess { events, next: 0 }
    }

    /// All scheduled events.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Pop every event due at or before `now` (call as simulated time
    /// advances and apply the transitions to the network).
    pub fn due(&mut self, now: SimTime) -> Vec<ChurnEvent> {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].at <= now {
            self.next += 1;
        }
        self.events[start..self.next].to_vec()
    }

    /// Whether all events have been consumed.
    pub fn exhausted(&self) -> bool {
        self.next >= self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_alternates_per_node() {
        let cfg = ChurnConfig::harsh();
        let p = ChurnProcess::generate(&cfg, 20, SimTime(3_600_000_000), 9);
        for i in 0..20 {
            let node = NodeId::from_index(i);
            let kinds: Vec<ChurnKind> = p
                .events()
                .iter()
                .filter(|e| e.node == node)
                .map(|e| e.kind)
                .collect();
            for (j, k) in kinds.iter().enumerate() {
                let expect = if j % 2 == 0 {
                    ChurnKind::Fail
                } else {
                    ChurnKind::Recover
                };
                assert_eq!(*k, expect, "node {i} event {j}");
            }
        }
    }

    #[test]
    fn events_sorted_by_time() {
        let p = ChurnProcess::generate(&ChurnConfig::moderate(), 50, SimTime(7_200_000_000), 4);
        for w in p.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn zero_fraction_means_no_churn() {
        let cfg = ChurnConfig {
            churny_fraction: 0.0,
            ..ChurnConfig::harsh()
        };
        let p = ChurnProcess::generate(&cfg, 100, SimTime(3_600_000_000), 1);
        assert!(p.events().is_empty());
        assert!(p.exhausted());
    }

    #[test]
    fn due_consumes_in_order() {
        let mut p = ChurnProcess::generate(&ChurnConfig::harsh(), 10, SimTime(600_000_000), 2);
        let total = p.events().len();
        assert!(total > 0, "harsh churn over 10 nodes must schedule events");
        let mid = p.events()[total / 2].at;
        let first = p.due(mid);
        assert!(!first.is_empty());
        assert!(first.iter().all(|e| e.at <= mid));
        let rest = p.due(SimTime(u64::MAX));
        assert_eq!(first.len() + rest.len(), total);
        assert!(p.exhausted());
        assert!(p.due(SimTime(u64::MAX)).is_empty());
    }

    #[test]
    fn storm_fails_everyone_at_once_and_recovers_all() {
        let at = SimTime(5_000_000);
        let p = ChurnProcess::storm(16, 1.0, at, SimDuration::from_millis(40), 7);
        let fails: Vec<&ChurnEvent> = p
            .events()
            .iter()
            .filter(|e| e.kind == ChurnKind::Fail)
            .collect();
        let recovers: Vec<&ChurnEvent> = p
            .events()
            .iter()
            .filter(|e| e.kind == ChurnKind::Recover)
            .collect();
        assert_eq!(fails.len(), 16, "full storm fails every node");
        assert_eq!(recovers.len(), 16, "every node recovers");
        assert!(
            fails.iter().all(|e| e.at == at),
            "failures are simultaneous"
        );
        assert!(recovers.iter().all(|e| e.at > at));
    }

    #[test]
    fn storm_is_deterministic_and_fraction_bounded() {
        let run = || {
            ChurnProcess::storm(64, 0.5, SimTime(1_000), SimDuration::from_secs(1), 3)
                .events()
                .to_vec()
        };
        assert_eq!(run(), run());
        let struck: std::collections::BTreeSet<NodeId> = run().iter().map(|e| e.node).collect();
        assert!(!struck.is_empty() && struck.len() < 64, "{}", struck.len());
    }

    #[test]
    fn mean_session_roughly_matches_config() {
        let cfg = ChurnConfig {
            mean_uptime: SimDuration::from_secs(100),
            mean_downtime: SimDuration::from_secs(100),
            churny_fraction: 1.0,
        };
        // Long horizon over many nodes: inter-event gaps per node should
        // average ~100 s.
        let p = ChurnProcess::generate(&cfg, 200, SimTime(100_000_000_000), 5);
        let mut gaps = Vec::new();
        for i in 0..200 {
            let node = NodeId::from_index(i);
            let times: Vec<SimTime> = p
                .events()
                .iter()
                .filter(|e| e.node == node)
                .map(|e| e.at)
                .collect();
            let mut prev = SimTime::ZERO;
            for t in times {
                gaps.push((t - prev).as_secs_f64());
                prev = t;
            }
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean gap {mean}");
    }
}
