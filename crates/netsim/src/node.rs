//! Protocol node abstraction.
//!
//! Protocols (e.g. P-Grid in `gridvine-pgrid`) are written as actors: a
//! struct implementing [`Node`] whose handlers react to incoming messages
//! and timer expirations. Handlers interact with the world exclusively
//! through the [`Ctx`] passed to them, which records side effects
//! (messages to send, timers to set) that the [`crate::network::Network`]
//! executes after the handler returns. This keeps handlers pure state
//! transitions and the simulation deterministic.

use crate::clock::{SimDuration, SimTime};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a simulated machine.
///
/// Dense indices (0, 1, 2, …) so node tables can be plain vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Build from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("node index fits in u32"))
    }

    /// Dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Deferred side effects produced by a handler invocation.
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send { to: NodeId, msg: M },
    Timer { after: SimDuration, token: u64 },
}

/// The execution context handed to every [`Node`] handler.
///
/// All interaction with the simulated world goes through this type;
/// handlers must not hold state across invocations other than via their
/// own fields.
pub struct Ctx<'a, M> {
    pub(crate) self_id: NodeId,
    pub(crate) now: SimTime,
    pub(crate) actions: &'a mut Vec<Action<M>>,
    pub(crate) rng: &'a mut StdRng,
}

impl<'a, M> Ctx<'a, M> {
    /// The node this handler runs on.
    #[inline]
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Send `msg` to `to`. Delivery is asynchronous; the network charges
    /// a latency sample and may drop the message (loss, crashed target).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Schedule a timer that fires on this node `after` from now,
    /// delivering `token` to [`Node::handle_timer`].
    pub fn set_timer(&mut self, after: SimDuration, token: u64) {
        self.actions.push(Action::Timer { after, token });
    }

    /// Deterministic per-network RNG, for protocols that make randomized
    /// choices (e.g. P-Grid picking a random exchange partner).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A protocol state machine living on one simulated node.
pub trait Node<M> {
    /// React to a message from `from`.
    fn handle_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// React to a timer previously set with [`Ctx::set_timer`].
    fn handle_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}

    /// Invoked once when the node is added to the network.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Invoked when the churn process (or the harness) crashes this node.
    /// In-flight messages to it will be dropped until recovery.
    fn on_crash(&mut self) {}

    /// Invoked when the node comes back up.
    fn on_recover(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        for i in [0usize, 1, 7, 1000, 65_535] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(format!("{:?}", NodeId::from_index(3)), "n3");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
