//! Per-peer key/value storage.
//!
//! Each P-Grid peer maintains the data items whose binary keys fall under
//! its path. The store is an ordered multimap (`BTreeMap<BitString,
//! Vec<V>>`): ordered so the order-preserving hash can support prefix/range
//! scans, a multimap because GridVine indexes every triple under three
//! different keys and distinct triples may collide on a key.

use crate::bits::BitString;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The `Update(key, value)` operation's verb (§2.2: "inserting, updating
/// or deleting values" share one primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateOp {
    Insert,
    Delete,
}

/// Ordered multimap from overlay keys to values.
#[derive(Debug, Clone)]
pub struct Store<V> {
    map: BTreeMap<BitString, Vec<V>>,
    items: usize,
}

impl<V: Clone + PartialEq> Store<V> {
    pub fn new() -> Store<V> {
        Store {
            map: BTreeMap::new(),
            items: 0,
        }
    }

    /// Number of stored values (not distinct keys).
    pub fn len(&self) -> usize {
        self.items
    }

    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Apply an update. Inserting an identical (key, value) pair twice is
    /// idempotent — replica synchronization re-sends items freely.
    pub fn apply(&mut self, op: UpdateOp, key: BitString, value: V) {
        match op {
            UpdateOp::Insert => self.insert(key, value),
            UpdateOp::Delete => {
                self.remove(&key, &value);
            }
        }
    }

    /// Insert (idempotent on exact duplicates).
    pub fn insert(&mut self, key: BitString, value: V) {
        let bucket = self.map.entry(key).or_default();
        if !bucket.contains(&value) {
            bucket.push(value);
            self.items += 1;
        }
    }

    /// Remove one (key, value) pair; returns whether it was present.
    pub fn remove(&mut self, key: &BitString, value: &V) -> bool {
        let Some(bucket) = self.map.get_mut(key) else {
            return false;
        };
        let Some(pos) = bucket.iter().position(|v| v == value) else {
            return false;
        };
        bucket.remove(pos);
        self.items -= 1;
        if bucket.is_empty() {
            self.map.remove(key);
        }
        true
    }

    /// Values stored under exactly `key`.
    pub fn get(&self, key: &BitString) -> &[V] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All (key, value) pairs whose key starts with `prefix`, in key
    /// order. This is the primitive behind range/`%substring%`-style
    /// constrained searches over the order-preserving hash.
    pub fn scan_prefix(&self, prefix: &BitString) -> impl Iterator<Item = (&BitString, &V)> + '_ {
        let prefix = prefix.clone();
        self.map
            .range(prefix.clone()..)
            .take_while(move |(k, _)| prefix.is_prefix_of(k))
            .flat_map(|(k, vs)| vs.iter().map(move |v| (k, v)))
    }

    /// Iterate over everything.
    pub fn iter(&self) -> impl Iterator<Item = (&BitString, &V)> {
        self.map
            .iter()
            .flat_map(|(k, vs)| vs.iter().map(move |v| (k, v)))
    }

    /// Retain only entries whose key satisfies the predicate; returns the
    /// evicted pairs. Used when a peer splits its path and hands half its
    /// data to the new sibling.
    pub fn partition_keys<F: Fn(&BitString) -> bool>(&mut self, keep: F) -> Vec<(BitString, V)> {
        let mut evicted = Vec::new();
        let keys: Vec<BitString> = self.map.keys().cloned().collect();
        for k in keys {
            if !keep(&k) {
                if let Some(vs) = self.map.remove(&k) {
                    self.items -= vs.len();
                    evicted.extend(vs.into_iter().map(|v| (k.clone(), v)));
                }
            }
        }
        evicted
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.items = 0;
    }
}

impl<V: Clone + PartialEq> Default for Store<V> {
    fn default() -> Self {
        Store::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> BitString {
        BitString::parse(s)
    }

    #[test]
    fn insert_get() {
        let mut s = Store::new();
        s.insert(k("01"), "a");
        s.insert(k("01"), "b");
        s.insert(k("10"), "c");
        assert_eq!(s.get(&k("01")), &["a", "b"]);
        assert_eq!(s.get(&k("10")), &["c"]);
        assert_eq!(s.get(&k("11")), &[] as &[&str]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.key_count(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut s = Store::new();
        s.insert(k("01"), 7);
        s.insert(k("01"), 7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&k("01")), &[7]);
    }

    #[test]
    fn remove_single_value() {
        let mut s = Store::new();
        s.insert(k("01"), "a");
        s.insert(k("01"), "b");
        assert!(s.remove(&k("01"), &"a"));
        assert!(!s.remove(&k("01"), &"a"));
        assert_eq!(s.get(&k("01")), &["b"]);
        assert!(s.remove(&k("01"), &"b"));
        assert_eq!(s.key_count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn apply_matches_insert_delete() {
        let mut s = Store::new();
        s.apply(UpdateOp::Insert, k("0"), 1);
        s.apply(UpdateOp::Insert, k("0"), 2);
        s.apply(UpdateOp::Delete, k("0"), 1);
        assert_eq!(s.get(&k("0")), &[2]);
    }

    #[test]
    fn prefix_scan_returns_subtree_in_order() {
        let mut s = Store::new();
        for key in ["000", "001", "010", "011", "100", "110"] {
            s.insert(k(key), key.to_string());
        }
        let under_0: Vec<&str> = s.scan_prefix(&k("0")).map(|(_, v)| v.as_str()).collect();
        assert_eq!(under_0, vec!["000", "001", "010", "011"]);
        let under_01: Vec<&str> = s.scan_prefix(&k("01")).map(|(_, v)| v.as_str()).collect();
        assert_eq!(under_01, vec!["010", "011"]);
        let all: Vec<&str> = s
            .scan_prefix(&BitString::empty())
            .map(|(_, v)| v.as_str())
            .collect();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn partition_keys_splits_data() {
        let mut s = Store::new();
        for key in ["00", "01", "10", "11"] {
            s.insert(k(key), key.to_string());
        }
        let zero = k("0");
        let evicted = s.partition_keys(|key| zero.is_prefix_of(key));
        assert_eq!(evicted.len(), 2);
        assert!(evicted.iter().all(|(key, _)| !zero.is_prefix_of(key)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&k("00")), &["00".to_string()]);
        assert!(s.get(&k("10")).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_key() -> impl Strategy<Value = BitString> {
        "[01]{0,10}".prop_map(|s| BitString::parse(&s))
    }

    proptest! {
        /// len() always equals the number of iterable pairs.
        #[test]
        fn len_consistent(ops in proptest::collection::vec((arb_key(), 0u8..4, any::<bool>()), 0..60)) {
            let mut s = Store::new();
            for (key, val, insert) in ops {
                if insert {
                    s.insert(key, val);
                } else {
                    s.remove(&key, &val);
                }
            }
            prop_assert_eq!(s.len(), s.iter().count());
        }

        /// scan_prefix returns exactly the pairs whose key has the prefix.
        #[test]
        fn scan_prefix_complete(pairs in proptest::collection::vec((arb_key(), 0u8..20), 0..40),
                                prefix in "[01]{0,4}") {
            let mut s = Store::new();
            for (key, val) in &pairs {
                s.insert(key.clone(), *val);
            }
            let p = BitString::parse(&prefix);
            let scanned: usize = s.scan_prefix(&p).count();
            let expected: usize = s.iter().filter(|(k, _)| p.is_prefix_of(k)).count();
            prop_assert_eq!(scanned, expected);
        }
    }
}
