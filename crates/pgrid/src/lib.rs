//! # gridvine-pgrid
//!
//! A from-scratch implementation of the **P-Grid** structured overlay —
//! the access structure GridVine uses at its overlay layer (§2.1 of the
//! paper). P-Grid arranges peers into a distributed virtual binary search
//! tree: each peer `p` owns a binary path π(p), stores the data whose
//! keys fall under that path, keeps *routing references* to the other
//! side of the tree at every level of its path, and *replica references*
//! σ(p) to peers sharing its path.
//!
//! The crate provides:
//!
//! * [`bits::BitString`] — the binary key space;
//! * [`hash`] — the order-preserving hash of §2.2 (plus a uniform
//!   baseline for ablations);
//! * [`store::Store`] — the per-peer ordered multimap;
//! * [`topology::Topology`] — the global trie with validated invariants
//!   (prefix-free coverage, legal references, replica consistency);
//! * [`construct::ExchangeBuilder`] — the decentralized construction by
//!   random pairwise exchanges;
//! * [`overlay::Overlay`] — synchronous `Retrieve`/`Update` with exact
//!   message accounting (the mediation layer programs against this);
//! * [`proto::PGridNode`] — the same protocol as an asynchronous actor
//!   over [`gridvine_netsim`], charging WAN latency and surviving churn;
//! * [`balance::LoadStats`] — storage load-balance statistics.
//!
//! Both operations meet the paper's complexity claim: routing resolves
//! in `O(log |Π|)` messages for balanced and unbalanced trees alike.
//!
//! ```
//! use gridvine_pgrid::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let topo = Topology::balanced(64, 2, &mut rng);
//! let mut overlay: Overlay<String> = Overlay::new(&topo);
//! let hasher = OrderPreservingHash::default();
//! let key = hasher.hash("EMBL#Organism", 24);
//! overlay
//!     .update(PeerId(0), UpdateOp::Insert, key.clone(), "triple".into(), &mut rng)
//!     .unwrap();
//! let (values, route) = overlay.retrieve(PeerId(42), &key, &mut rng).unwrap();
//! assert_eq!(values, vec!["triple".to_string()]);
//! assert!(route.messages() as usize <= topo.depth() + 1);
//! ```

pub mod balance;
pub mod bits;
pub mod construct;
pub mod hash;
pub mod overlay;
pub mod proto;
pub mod store;
pub mod topology;

/// Glob-import surface.
pub mod prelude {
    pub use crate::balance::LoadStats;
    pub use crate::bits::BitString;
    pub use crate::construct::{ExchangeBuilder, ExchangeConfig};
    pub use crate::hash::{HashKind, KeyHasher, OrderPreservingHash, UniformHash};
    pub use crate::overlay::{Overlay, Route, RouteError};
    pub use crate::proto::{Outcome, PGridMsg, PGridNode, Status};
    pub use crate::store::{Store, UpdateOp};
    pub use crate::topology::{PeerId, PeerView, Topology, TopologyError};
}

pub use balance::LoadStats;
pub use bits::BitString;
pub use construct::{ExchangeBuilder, ExchangeConfig};
pub use hash::{HashKind, KeyHasher, OrderPreservingHash, UniformHash};
pub use overlay::{Overlay, Route, RouteError};
pub use proto::{Outcome, PGridMsg, PGridNode, Status};
pub use store::{Store, UpdateOp};
pub use topology::{PeerId, PeerView, Topology, TopologyError};
