//! The event-driven P-Grid protocol over the network simulator.
//!
//! [`crate::overlay::Overlay`] executes routing synchronously and counts
//! messages; this module runs the *same* per-peer decision procedure as
//! an asynchronous message protocol on top of
//! [`gridvine_netsim::Network`], which additionally charges wide-area
//! latency, drops messages, and exposes peers to churn. Experiments E1
//! (latency CDF) and A2 (availability under churn) run here.
//!
//! Protocol:
//!
//! * `Retrieve { key }` — greedy prefix forwarding hop by hop; the
//!   responsible peer answers the **origin** directly with the values
//!   (one response message, as in the paper's `Retrieve(key, q)`).
//! * `Update { key, value }` — routed the same way; the responsible peer
//!   applies the write and forwards a copy to each replica in σ(p).
//! * Origins set a timeout timer per request; a request with no response
//!   by the deadline is recorded as failed (churn/loss experiments read
//!   this).
//! * A peer that cannot forward (all references at the needed level dead
//!   or unknown) retries once through a replica before giving up with a
//!   `NotFound` response.

use crate::bits::BitString;
use crate::store::{Store, UpdateOp};
use crate::topology::{PeerView, Topology};
use gridvine_netsim::{Ctx, Node, NodeId, SimDuration, SimTime};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Correlates a request with its response at the origin.
pub type RequestId = u64;

/// Wire messages of the P-Grid protocol, carrying values of type `V`.
#[derive(Debug, Clone)]
pub enum PGridMsg<V> {
    /// Route a retrieval toward the peer responsible for `key`.
    Retrieve {
        id: RequestId,
        origin: NodeId,
        key: BitString,
        hops: u32,
    },
    /// Answer from the responsible peer to the origin.
    RetrieveResp {
        id: RequestId,
        values: Vec<V>,
        hops: u32,
        found: bool,
    },
    /// Route an update toward the responsible peer.
    Update {
        id: RequestId,
        origin: NodeId,
        op: UpdateOp,
        key: BitString,
        value: V,
        hops: u32,
        /// True once the message reached the responsible group and is
        /// now being copied to replicas (no further routing).
        replica_copy: bool,
    },
    /// Acknowledgement of an applied update to the origin.
    UpdateAck { id: RequestId, hops: u32 },
}

/// Outcome of a completed (or timed-out) request at its origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome<V> {
    pub id: RequestId,
    pub issued_at: SimTime,
    pub completed_at: SimTime,
    pub hops: u32,
    pub values: Vec<V>,
    pub status: Status,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    Ok,
    NotFound,
    TimedOut,
}

impl<V> Outcome<V> {
    /// End-to-end latency of the request.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_since(self.issued_at)
    }
}

#[derive(Debug)]
enum PendingKind {
    /// Retrieves carry their key so timeouts can retry through a
    /// different random path/replica.
    Retrieve {
        key: BitString,
        retries_left: u32,
    },
    Update,
}

#[derive(Debug)]
struct Pending {
    issued_at: SimTime,
    kind: PendingKind,
}

/// A P-Grid peer running the asynchronous protocol.
#[derive(Debug)]
pub struct PGridNode<V> {
    view: PeerView,
    store: Store<V>,
    /// Requests this node originated and is still waiting on.
    pending: HashMap<RequestId, Pending>,
    /// Finished requests, for the harness to drain.
    completed: Vec<Outcome<V>>,
    next_id: RequestId,
    timeout: SimDuration,
    /// Retrieve attempts after the first (σ(p) replication only helps
    /// queries when timeouts fail over to another path).
    retries: u32,
}

impl<V: Clone + PartialEq> PGridNode<V> {
    /// Build the node for peer `i` of a constructed topology (peer `i`
    /// of the topology must be node `i` of the network).
    pub fn from_topology(topology: &Topology, index: usize, timeout: SimDuration) -> PGridNode<V> {
        PGridNode {
            view: topology.view(crate::topology::PeerId::from_index(index)),
            store: Store::new(),
            pending: HashMap::new(),
            completed: Vec::new(),
            next_id: (index as u64) << 40, // per-origin id spaces stay disjoint
            timeout,
            retries: 2,
        }
    }

    /// Set the number of retrieve retries after a timeout (default 2).
    pub fn set_retries(&mut self, retries: u32) {
        self.retries = retries;
    }

    /// The peer's view of the overlay.
    pub fn view(&self) -> &PeerView {
        &self.view
    }

    /// Local store (harnesses preload data through this).
    pub fn store_mut(&mut self) -> &mut Store<V> {
        &mut self.store
    }

    pub fn store(&self) -> &Store<V> {
        &self.store
    }

    /// Outcomes of requests this node originated; drained by the harness.
    pub fn drain_completed(&mut self) -> Vec<Outcome<V>> {
        std::mem::take(&mut self.completed)
    }

    /// Requests still in flight.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Start a retrieval for `key` from this node. Returns the request id.
    pub fn start_retrieve(&mut self, ctx: &mut Ctx<'_, PGridMsg<V>>, key: BitString) -> RequestId {
        let id = self.fresh_id();
        self.pending.insert(
            id,
            Pending {
                issued_at: ctx.now(),
                kind: PendingKind::Retrieve {
                    key: key.clone(),
                    retries_left: self.retries,
                },
            },
        );
        ctx.set_timer(self.timeout, id);
        let origin = ctx.self_id();
        let msg = PGridMsg::Retrieve {
            id,
            origin,
            key,
            hops: 0,
        };
        self.route_or_handle(ctx, msg);
        id
    }

    /// Start an update from this node. Returns the request id.
    pub fn start_update(
        &mut self,
        ctx: &mut Ctx<'_, PGridMsg<V>>,
        op: UpdateOp,
        key: BitString,
        value: V,
    ) -> RequestId {
        let id = self.fresh_id();
        self.pending.insert(
            id,
            Pending {
                issued_at: ctx.now(),
                kind: PendingKind::Update,
            },
        );
        ctx.set_timer(self.timeout, id);
        let origin = ctx.self_id();
        let msg = PGridMsg::Update {
            id,
            origin,
            op,
            key,
            value,
            hops: 0,
            replica_copy: false,
        };
        self.route_or_handle(ctx, msg);
        id
    }

    fn fresh_id(&mut self) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Apply the greedy forwarding rule to a routed message, or consume
    /// it locally when this peer is responsible.
    fn route_or_handle(&mut self, ctx: &mut Ctx<'_, PGridMsg<V>>, msg: PGridMsg<V>) {
        match msg {
            PGridMsg::Retrieve {
                id,
                origin,
                key,
                hops,
            } => {
                if self.view.is_responsible(&key) {
                    let values = self.store.get(&key).to_vec();
                    let found = !values.is_empty();
                    let resp = PGridMsg::RetrieveResp {
                        id,
                        values,
                        hops,
                        found,
                    };
                    if origin == ctx.self_id() {
                        self.consume_response(ctx.now(), resp);
                    } else {
                        ctx.send(origin, resp);
                    }
                    return;
                }
                match self.pick_next_hop(ctx, &key) {
                    Some(next) => ctx.send(
                        next,
                        PGridMsg::Retrieve {
                            id,
                            origin,
                            key,
                            hops: hops + 1,
                        },
                    ),
                    None => {
                        let resp = PGridMsg::RetrieveResp {
                            id,
                            values: Vec::new(),
                            hops,
                            found: false,
                        };
                        if origin == ctx.self_id() {
                            self.consume_response(ctx.now(), resp);
                        } else {
                            ctx.send(origin, resp);
                        }
                    }
                }
            }
            PGridMsg::Update {
                id,
                origin,
                op,
                key,
                value,
                hops,
                replica_copy,
            } => {
                if self.view.is_responsible(&key) {
                    self.store.apply(op, key.clone(), value.clone());
                    if !replica_copy {
                        // First responsible peer: fan out to σ(p) and ack.
                        for r in self.view.replicas.clone() {
                            ctx.send(
                                NodeId::from_index(r.index()),
                                PGridMsg::Update {
                                    id,
                                    origin,
                                    op,
                                    key: key.clone(),
                                    value: value.clone(),
                                    hops: hops + 1,
                                    replica_copy: true,
                                },
                            );
                        }
                        let ack = PGridMsg::UpdateAck { id, hops };
                        if origin == ctx.self_id() {
                            self.consume_response(ctx.now(), ack);
                        } else {
                            ctx.send(origin, ack);
                        }
                    }
                    return;
                }
                if replica_copy {
                    return; // stale replica copy after a path change
                }
                match self.pick_next_hop(ctx, &key) {
                    Some(next) => ctx.send(
                        next,
                        PGridMsg::Update {
                            id,
                            origin,
                            op,
                            key,
                            value,
                            hops: hops + 1,
                            replica_copy: false,
                        },
                    ),
                    None => { /* undeliverable update: origin times out */ }
                }
            }
            resp @ (PGridMsg::RetrieveResp { .. } | PGridMsg::UpdateAck { .. }) => {
                self.consume_response(ctx.now(), resp);
            }
        }
    }

    /// Choose a forwarding target for `key`: a random reference at the
    /// divergence level, falling back to a replica that might know one.
    fn pick_next_hop(&self, ctx: &mut Ctx<'_, PGridMsg<V>>, key: &BitString) -> Option<NodeId> {
        let level = self.view.forwarding_level(key)?;
        let refs = self.view.refs.get(level).map(Vec::as_slice).unwrap_or(&[]);
        if let Some(p) = refs.choose(ctx.rng()) {
            return Some(NodeId::from_index(p.index()));
        }
        // Routing hole: bounce through a random replica (it may hold a
        // different reference sample for this level).
        self.view
            .replicas
            .choose(ctx.rng())
            .map(|p| NodeId::from_index(p.index()))
    }

    fn consume_response(&mut self, now: SimTime, msg: PGridMsg<V>) {
        let (id, values, hops, status) = match msg {
            PGridMsg::RetrieveResp {
                id,
                values,
                hops,
                found,
            } => {
                let status = if found { Status::Ok } else { Status::NotFound };
                (id, values, hops, status)
            }
            PGridMsg::UpdateAck { id, hops } => (id, Vec::new(), hops, Status::Ok),
            _ => return,
        };
        let Some(p) = self.pending.remove(&id) else {
            return; // response after timeout: ignore
        };
        self.completed.push(Outcome {
            id,
            issued_at: p.issued_at,
            completed_at: now,
            hops,
            values,
            status,
        });
    }
}

impl<V: Clone + PartialEq> Node<PGridMsg<V>> for PGridNode<V> {
    fn handle_message(&mut self, ctx: &mut Ctx<'_, PGridMsg<V>>, _from: NodeId, msg: PGridMsg<V>) {
        self.route_or_handle(ctx, msg);
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, PGridMsg<V>>) {
        // Crashing dropped our in-flight timers and any responses sent
        // while we were down. Re-issue pending retrieves (a client
        // process restarting does exactly this) and re-arm the timers.
        let pending: Vec<(RequestId, Option<BitString>)> = self
            .pending
            .iter()
            .map(|(id, p)| match &p.kind {
                PendingKind::Retrieve { key, .. } => (*id, Some(key.clone())),
                PendingKind::Update => (*id, None),
            })
            .collect();
        for (id, key) in pending {
            ctx.set_timer(self.timeout, id);
            if let Some(key) = key {
                let origin = ctx.self_id();
                self.route_or_handle(
                    ctx,
                    PGridMsg::Retrieve {
                        id,
                        origin,
                        key,
                        hops: 0,
                    },
                );
            }
        }
    }

    fn handle_timer(&mut self, ctx: &mut Ctx<'_, PGridMsg<V>>, token: u64) {
        // Timers carry the request id; if it is still pending, this
        // attempt failed — retry retrievals through a fresh random
        // path, give up otherwise.
        let Some(p) = self.pending.get_mut(&token) else {
            return;
        };
        if let PendingKind::Retrieve { key, retries_left } = &mut p.kind {
            if *retries_left > 0 {
                *retries_left -= 1;
                let key = key.clone();
                ctx.set_timer(self.timeout, token);
                let origin = ctx.self_id();
                self.route_or_handle(
                    ctx,
                    PGridMsg::Retrieve {
                        id: token,
                        origin,
                        key,
                        hops: 0,
                    },
                );
                return;
            }
        }
        let p = self.pending.remove(&token).expect("checked above");
        self.completed.push(Outcome {
            id: token,
            issued_at: p.issued_at,
            completed_at: ctx.now(),
            hops: 0,
            values: Vec::new(),
            status: Status::TimedOut,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{KeyHasher, OrderPreservingHash};
    use crate::topology::Topology;
    use gridvine_netsim::{Network, NetworkConfig};
    use rand::SeedableRng;

    type Net = Network<PGridNode<String>, PGridMsg<String>>;

    fn build(n: usize, cfg: NetworkConfig, seed: u64) -> (Net, Topology) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = Topology::balanced(n, 2, &mut rng);
        let mut net: Net = Network::new(cfg, seed);
        for i in 0..n {
            net.add_node(PGridNode::from_topology(
                &topo,
                i,
                SimDuration::from_secs(30),
            ));
        }
        (net, topo)
    }

    #[test]
    fn update_then_retrieve_over_the_wire() {
        let (mut net, _) = build(32, NetworkConfig::lan(), 1);
        let h = OrderPreservingHash::default();
        let key = h.hash("EMBL#Organism", 24);
        let origin = NodeId::from_index(0);
        net.invoke(origin, |node, ctx| {
            node.start_update(ctx, UpdateOp::Insert, key.clone(), "Aspergillus".into())
        });
        net.run_until_quiescent();
        let done = net.node_mut(origin).drain_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, Status::Ok);

        let asker = NodeId::from_index(17);
        net.invoke(asker, |node, ctx| node.start_retrieve(ctx, key.clone()));
        net.run_until_quiescent();
        let done = net.node_mut(asker).drain_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, Status::Ok);
        assert_eq!(done[0].values, vec!["Aspergillus".to_string()]);
        assert!(done[0].latency() > SimDuration::ZERO);
    }

    #[test]
    fn retrieval_of_absent_key_is_not_found() {
        let (mut net, _) = build(16, NetworkConfig::lan(), 2);
        let h = OrderPreservingHash::default();
        let key = h.hash("missing", 24);
        let origin = NodeId::from_index(5);
        net.invoke(origin, |node, ctx| node.start_retrieve(ctx, key));
        net.run_until_quiescent();
        let done = net.node_mut(origin).drain_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, Status::NotFound);
    }

    #[test]
    fn hop_count_within_depth_bound() {
        let (mut net, topo) = build(128, NetworkConfig::lan(), 3);
        let h = OrderPreservingHash::default();
        for i in 0..40 {
            let key = h.hash(&format!("probe-{i}"), 24);
            let origin = NodeId::from_index(i % 128);
            net.invoke(origin, |node, ctx| node.start_retrieve(ctx, key));
        }
        net.run_until_quiescent();
        for i in 0..128 {
            for o in net.node_mut(NodeId::from_index(i)).drain_completed() {
                assert!(
                    (o.hops as usize) <= topo.depth() + 1,
                    "hops {} > depth {}",
                    o.hops,
                    topo.depth()
                );
            }
        }
    }

    #[test]
    fn update_reaches_all_replicas() {
        let (mut net, topo) = replicated_net(4);
        let h = OrderPreservingHash::default();
        let key = h.hash("replicated-item", 24);
        net.invoke(NodeId::from_index(0), |node, ctx| {
            node.start_update(ctx, UpdateOp::Insert, key.clone(), "v".into())
        });
        net.run_until_quiescent();
        let holders: Vec<usize> = (0..8)
            .filter(|i| !net.node(NodeId::from_index(*i)).store().is_empty())
            .collect();
        let responsible = topo.responsible(&key);
        assert_eq!(holders.len(), responsible.len());
        for p in responsible {
            assert!(holders.contains(&p.index()));
        }
    }

    #[test]
    fn timeout_fires_when_destination_group_is_dead() {
        let (mut net, topo) = build(8, NetworkConfig::lan(), 5);
        let h = OrderPreservingHash::default();
        let key = h.hash("doomed", 24);
        // Kill the entire responsible replica group.
        for p in topo.responsible(&key).to_vec() {
            net.crash(NodeId::from_index(p.index()));
        }
        let origin = NodeId::from_index(
            (0..8)
                .find(|i| !topo.responsible(&key).iter().any(|p| p.index() == *i))
                .expect("someone survives"),
        );
        net.invoke(origin, |node, ctx| {
            node.set_retries(1);
            node.start_retrieve(ctx, key)
        });
        net.run_until_quiescent();
        let done = net.node_mut(origin).drain_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, Status::TimedOut);
        // Initial attempt + one retry, 30 s timeout each.
        assert_eq!(done[0].latency(), SimDuration::from_secs(60));
    }

    /// 8 peers over 4 depth-2 paths: every path has exactly 2 replicas.
    fn replicated_net(seed: u64) -> (Net, Topology) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let paths: Vec<_> = ["00", "00", "01", "01", "10", "10", "11", "11"]
            .iter()
            .map(|s| crate::bits::BitString::parse(s))
            .collect();
        let topo = Topology::from_paths(paths, 2, &mut rng);
        topo.validate().expect("valid");
        let mut net: Net = Network::new(NetworkConfig::lan(), seed);
        for i in 0..8 {
            net.add_node(PGridNode::from_topology(
                &topo,
                i,
                SimDuration::from_secs(30),
            ));
        }
        (net, topo)
    }

    #[test]
    fn replica_survives_primary_crash() {
        // Write, crash one holder, read: the σ(p) replica must answer.
        let (mut net, topo) = replicated_net(6);
        let h = OrderPreservingHash::default();
        let key = h.hash("durable", 24);
        net.invoke(NodeId::from_index(0), |node, ctx| {
            node.start_update(ctx, UpdateOp::Insert, key.clone(), "kept".into())
        });
        net.run_until_quiescent();
        let group = topo.responsible(&key).to_vec();
        assert!(group.len() >= 2);
        net.crash(NodeId::from_index(group[0].index()));
        // An origin outside the group retries until it happens to route
        // to the live replica; with 2 refs per level it usually succeeds
        // within a few attempts. Try several times.
        let origin = NodeId::from_index(
            (0..8)
                .find(|i| !group.iter().any(|p| p.index() == *i))
                .expect("someone survives"),
        );
        let mut got = false;
        for _ in 0..24 {
            net.invoke(origin, |node, ctx| node.start_retrieve(ctx, key.clone()));
            net.run_until_quiescent();
            let done = net.node_mut(origin).drain_completed();
            if done.iter().any(|o| o.status == Status::Ok) {
                got = true;
                break;
            }
        }
        assert!(got, "live replica should eventually answer");
    }

    #[test]
    fn wan_latency_is_charged() {
        let (mut net, _) = build(64, NetworkConfig::planetlab(), 7);
        let h = OrderPreservingHash::default();
        let key = h.hash("wan-item", 24);
        net.invoke(NodeId::from_index(0), |node, ctx| {
            node.start_update(ctx, UpdateOp::Insert, key.clone(), "x".into())
        });
        net.run_until_quiescent();
        net.node_mut(NodeId::from_index(0)).drain_completed();
        net.invoke(NodeId::from_index(33), |node, ctx| {
            node.start_retrieve(ctx, key.clone())
        });
        net.run_until_quiescent();
        let done = net.node_mut(NodeId::from_index(33)).drain_completed();
        assert_eq!(done.len(), 1);
        // Multi-hop over a WAN: at least tens of milliseconds.
        assert!(done[0].latency() >= SimDuration::from_millis(20));
    }
}
