//! Packed bit strings — the binary key space of P-Grid.
//!
//! P-Grid organizes peers into a virtual binary search tree: every peer is
//! associated with a path π(p) ∈ {0,1}*, every data item with a binary key,
//! and a peer is responsible for the keys that have its path as a prefix.
//! [`BitString`] is the shared representation for both, with the bit-level
//! operations the overlay needs: prefix tests, common-prefix length,
//! child extension, and lexicographic (= numeric) ordering.
//!
//! Bits are packed MSB-first into `u64` words so that comparing packed
//! words agrees with bit-by-bit comparison, and the prefix operations the
//! router leans on run word-wise: `common_prefix_len` is one XOR +
//! `leading_zeros` per 64 bits instead of a per-bit loop.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

const WORD_BITS: usize = 64;

/// An immutable-ish sequence of bits with cheap prefix operations.
///
/// Invariant: bits beyond `len` in the last word are zero, so derived
/// `PartialEq`/`Hash` over the packed words are correct.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitString {
    /// Packed bits, MSB first within each word.
    words: Vec<u64>,
    /// Number of valid bits.
    len: usize,
}

impl BitString {
    /// The empty bit string (the root of the virtual tree).
    pub fn empty() -> BitString {
        BitString::default()
    }

    /// Parse from a `"0101"`-style string.
    ///
    /// # Panics
    /// Panics on characters other than '0'/'1'.
    pub fn parse(s: &str) -> BitString {
        let mut b = BitString::empty();
        for c in s.chars() {
            match c {
                '0' => b.push(false),
                '1' => b.push(true),
                other => panic!("invalid bit character {other:?}"),
            }
        }
        b
    }

    /// Construct from the low `len` bits of `value`, most significant of
    /// those bits first. Used by hash functions emitting fixed-width keys.
    pub fn from_u64(value: u64, len: usize) -> BitString {
        assert!(len <= 64, "at most 64 bits from a u64");
        if len == 0 {
            return BitString::empty();
        }
        // Left-align the low `len` bits into one MSB-first word.
        let masked = if len == 64 {
            value
        } else {
            value & ((1 << len) - 1)
        };
        BitString {
            words: vec![masked << (WORD_BITS - len)],
            len,
        }
    }

    /// Pre-allocate for `bits` bits.
    pub fn with_capacity(bits: usize) -> BitString {
        BitString {
            words: Vec::with_capacity(bits.div_ceil(WORD_BITS)),
            len: 0,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i` (0 = first/most-significant).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / WORD_BITS] >> (WORD_BITS - 1 - i % WORD_BITS)) & 1 == 1
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(WORD_BITS) {
            self.words.push(0);
        }
        if bit {
            let last = self.words.len() - 1;
            self.words[last] |= 1 << (WORD_BITS - 1 - self.len % WORD_BITS);
        }
        self.len += 1;
    }

    /// Remove and return the last bit.
    pub fn pop(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        let bit = self.bit(self.len - 1);
        self.len -= 1;
        // Clear the vacated bit so packed equality keeps working.
        if bit {
            let idx = self.len;
            self.words[idx / WORD_BITS] &= !(1 << (WORD_BITS - 1 - idx % WORD_BITS));
        }
        if self.len.div_ceil(WORD_BITS) < self.words.len() {
            self.words.pop();
        }
        Some(bit)
    }

    /// This bit string extended by one bit (functional child step: the
    /// `path·0` / `path·1` split of the P-Grid construction).
    pub fn child(&self, bit: bool) -> BitString {
        let mut c = self.clone();
        c.push(bit);
        c
    }

    /// First `n` bits as a new bit string — a word copy plus one mask.
    ///
    /// # Panics
    /// Panics if `n > len`.
    pub fn prefix(&self, n: usize) -> BitString {
        assert!(n <= self.len, "prefix {n} longer than {}", self.len);
        let mut words: Vec<u64> = self.words[..n.div_ceil(WORD_BITS)].to_vec();
        let tail = n % WORD_BITS;
        if tail != 0 {
            // Zero the bits past `n` to preserve the packing invariant.
            let last = words.len() - 1;
            words[last] &= !0 << (WORD_BITS - tail);
        }
        BitString { words, len: n }
    }

    /// Whether `self` is a prefix of `other` (every key a peer is
    /// responsible for satisfies `peer_path.is_prefix_of(key)`).
    pub fn is_prefix_of(&self, other: &BitString) -> bool {
        self.len <= other.len && self.common_prefix_len(other) == self.len
    }

    /// Length of the longest common prefix with `other`. Prefix routing
    /// forwards at exactly this level. Runs word-wise: one XOR +
    /// `leading_zeros` per 64 bits.
    pub fn common_prefix_len(&self, other: &BitString) -> usize {
        let n = self.len.min(other.len);
        for (w, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let diff = a ^ b;
            if diff != 0 {
                return (w * WORD_BITS + diff.leading_zeros() as usize).min(n);
            }
        }
        n
    }

    /// Flip bit `i`, returning a new bit string truncated after that bit.
    /// `sibling_at(l)` is the l-level "other side" a routing reference
    /// points to.
    pub fn sibling_at(&self, i: usize) -> BitString {
        assert!(i < self.len, "sibling level out of range");
        let mut s = self.prefix(i);
        s.push(!self.bit(i));
        s
    }

    /// Iterate over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.bit(i))
    }

    /// Interpret the first `min(len, 64)` bits as a big-endian integer
    /// left-aligned in a 64-bit fraction: useful for mapping keys to
    /// [0, 1) when reporting load distributions.
    pub fn as_fraction(&self) -> f64 {
        let mut acc = 0.0;
        let mut scale = 0.5;
        for i in 0..self.len.min(64) {
            if self.bit(i) {
                acc += scale;
            }
            scale *= 0.5;
        }
        acc
    }
}

impl PartialOrd for BitString {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitString {
    /// Lexicographic bit order: `"0" < "01" < "1"`. Combined with the
    /// order-preserving hash this makes key ranges contiguous in the
    /// tree. Compares a word at a time: since trailing bits are zero,
    /// the first differing word decides exactly as the first differing
    /// bit would (a shorter string that is a prefix of the longer one
    /// has equal words throughout, and the length comparison decides).
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.words.iter().zip(&other.words) {
            if a != b {
                return a.cmp(b);
            }
        }
        self.len.cmp(&other.len)
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["", "0", "1", "0101", "111000111", "0000000001"] {
            assert_eq!(BitString::parse(s).to_string(), s);
        }
    }

    #[test]
    fn push_pop() {
        let mut b = BitString::parse("10");
        b.push(true);
        assert_eq!(b.to_string(), "101");
        assert_eq!(b.pop(), Some(true));
        assert_eq!(b.pop(), Some(false));
        assert_eq!(b.pop(), Some(true));
        assert_eq!(b.pop(), None);
        assert!(b.is_empty());
    }

    #[test]
    fn pop_clears_storage_so_equality_holds() {
        let mut a = BitString::parse("11111111");
        for _ in 0..8 {
            a.pop();
        }
        assert_eq!(a, BitString::empty());
    }

    #[test]
    fn from_u64_matches_binary() {
        assert_eq!(BitString::from_u64(0b1011, 4).to_string(), "1011");
        assert_eq!(BitString::from_u64(0b1011, 6).to_string(), "001011");
        assert_eq!(BitString::from_u64(u64::MAX, 8).to_string(), "11111111");
    }

    #[test]
    fn prefix_relations() {
        let p = BitString::parse("01");
        assert!(p.is_prefix_of(&BitString::parse("01")));
        assert!(p.is_prefix_of(&BitString::parse("0110")));
        assert!(!p.is_prefix_of(&BitString::parse("0010")));
        assert!(!p.is_prefix_of(&BitString::parse("0")));
        assert!(BitString::empty().is_prefix_of(&p));
    }

    #[test]
    fn common_prefix() {
        let a = BitString::parse("0101");
        assert_eq!(a.common_prefix_len(&BitString::parse("0101")), 4);
        assert_eq!(a.common_prefix_len(&BitString::parse("0100")), 3);
        assert_eq!(a.common_prefix_len(&BitString::parse("1101")), 0);
        assert_eq!(a.common_prefix_len(&BitString::parse("01")), 2);
        assert_eq!(a.common_prefix_len(&BitString::empty()), 0);
    }

    #[test]
    fn sibling() {
        let a = BitString::parse("0101");
        assert_eq!(a.sibling_at(0).to_string(), "1");
        assert_eq!(a.sibling_at(1).to_string(), "00");
        assert_eq!(a.sibling_at(3).to_string(), "0100");
    }

    #[test]
    fn ordering_is_lexicographic_on_bits() {
        let mut v = [
            BitString::parse("1"),
            BitString::parse("01"),
            BitString::parse("0"),
            BitString::parse("011"),
            BitString::empty(),
        ];
        v.sort();
        let strs: Vec<String> = v.iter().map(|b| b.to_string()).collect();
        assert_eq!(strs, vec!["", "0", "01", "011", "1"]);
    }

    #[test]
    fn fraction_maps_keys_to_unit_interval() {
        assert_eq!(BitString::parse("1").as_fraction(), 0.5);
        assert_eq!(BitString::parse("01").as_fraction(), 0.25);
        assert_eq!(BitString::parse("11").as_fraction(), 0.75);
        assert_eq!(BitString::empty().as_fraction(), 0.0);
    }

    #[test]
    fn child_extends() {
        let root = BitString::empty();
        assert_eq!(root.child(false).to_string(), "0");
        assert_eq!(root.child(true).child(false).to_string(), "10");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        BitString::parse("01").bit(2);
    }

    #[test]
    fn word_boundary_operations() {
        // Strings spanning multiple u64 words: 64 is the boundary.
        let a: String = "01".repeat(50); // 100 bits
        let b = format!("{}{}", &a[..80], "1111");
        let x = BitString::parse(&a);
        let y = BitString::parse(&b);
        assert_eq!(x.to_string(), a);
        assert_eq!(x.len(), 100);
        assert_eq!(x.common_prefix_len(&x), 100);
        assert_eq!(x.common_prefix_len(&y), 80);
        assert_eq!(x.prefix(80), y.prefix(80));
        assert!(x.prefix(80).is_prefix_of(&x));
        assert!(x.prefix(64).is_prefix_of(&x));
        assert_eq!(x.prefix(64).common_prefix_len(&x), 64);
        assert_eq!(x.cmp(&y), x.to_string().cmp(&y.to_string()));
        // pop back across the word boundary, clearing storage.
        let mut z = BitString::parse(&a);
        for _ in 0..40 {
            z.pop();
        }
        assert_eq!(z, x.prefix(60));
        assert_eq!(z.to_string(), a[..60].to_string());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_bits() -> impl Strategy<Value = BitString> {
        // Cross the u64 word boundary so the word-wise paths are covered.
        proptest::collection::vec(any::<bool>(), 0..100).prop_map(|bits| {
            let mut b = BitString::empty();
            for bit in bits {
                b.push(bit);
            }
            b
        })
    }

    proptest! {
        /// Display → parse is the identity.
        #[test]
        fn display_parse_round_trip(b in arb_bits()) {
            prop_assert_eq!(BitString::parse(&b.to_string()), b);
        }

        /// prefix(n) is always a prefix, and common_prefix_len with the
        /// original is n.
        #[test]
        fn prefix_is_prefix(b in arb_bits(), frac in 0.0f64..=1.0) {
            let n = (frac * b.len() as f64) as usize;
            let p = b.prefix(n);
            prop_assert!(p.is_prefix_of(&b));
            prop_assert_eq!(p.common_prefix_len(&b), n);
        }

        /// Ordering agrees with string ordering of the displayed form
        /// (both are lexicographic with '0' < '1').
        #[test]
        fn ordering_agrees_with_string(a in arb_bits(), b in arb_bits()) {
            prop_assert_eq!(a.cmp(&b), a.to_string().cmp(&b.to_string()));
        }

        /// sibling_at diverges exactly at the requested level.
        #[test]
        fn sibling_diverges_at_level(b in arb_bits()) {
            prop_assume!(!b.is_empty());
            for i in 0..b.len() {
                let s = b.sibling_at(i);
                prop_assert_eq!(s.len(), i + 1);
                prop_assert_eq!(s.common_prefix_len(&b), i);
            }
        }

        /// push/pop round-trips.
        #[test]
        fn push_pop_round_trip(b in arb_bits(), bit in any::<bool>()) {
            let mut c = b.clone();
            c.push(bit);
            prop_assert_eq!(c.len(), b.len() + 1);
            prop_assert_eq!(c.pop(), Some(bit));
            prop_assert_eq!(c, b);
        }

        /// as_fraction is monotone w.r.t. ordering for equal lengths.
        #[test]
        fn fraction_monotone_same_len(bits_a in proptest::collection::vec(any::<bool>(), 16),
                                      bits_b in proptest::collection::vec(any::<bool>(), 16)) {
            let mut a = BitString::empty();
            let mut b = BitString::empty();
            for x in bits_a { a.push(x); }
            for x in bits_b { b.push(x); }
            if a < b {
                prop_assert!(a.as_fraction() <= b.as_fraction());
            }
        }
    }
}
