//! The synchronous logical overlay: `Retrieve(key)` / `Update(key, value)`
//! with exact message accounting.
//!
//! This is the overlay facade the mediation layer programs against
//! (§2.1: "P-Grid supports two basic operations: Retrieve(key) … and
//! Update(key, value)"). Routing is executed hop by hop over the peers'
//! private views — never by consulting global state — so the message
//! counts reported here are exactly what the distributed protocol in
//! [`crate::proto`] generates; the event-driven variant additionally
//! charges wall-clock latency.

use crate::bits::BitString;
use crate::store::{Store, UpdateOp};
use crate::topology::{PeerId, PeerView, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Why a routed operation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteError {
    /// A routing-table level needed for the key had no live reference.
    NoRoute { at_peer: PeerId, level: usize },
    /// The hop budget was exhausted (should not happen in a valid trie).
    TooManyHops { budget: usize },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NoRoute { at_peer, level } => {
                write!(f, "no route from {at_peer} at level {level}")
            }
            RouteError::TooManyHops { budget } => write!(f, "exceeded hop budget {budget}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Result of routing a key to its responsible peer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// The responsible peer the route terminated at.
    pub destination: PeerId,
    /// Peers visited, starting with the originator, ending with the
    /// destination.
    pub hops: Vec<PeerId>,
}

impl Route {
    /// Overlay messages consumed by this route (one per forwarding edge).
    pub fn messages(&self) -> u64 {
        self.hops.len().saturating_sub(1) as u64
    }
}

/// A synchronous P-Grid overlay instance: topology + per-peer stores.
#[derive(Debug, Clone)]
pub struct Overlay<V> {
    views: Vec<PeerView>,
    stores: Vec<Store<V>>,
    /// Replication degree applied by `update`: the responsible peer plus
    /// its replicas all store the item (the paper's σ(p) duplication).
    replicate: bool,
    messages_sent: u64,
}

impl<V: Clone + PartialEq> Overlay<V> {
    /// Materialize the per-peer views and empty stores from a topology.
    pub fn new(topology: &Topology) -> Overlay<V> {
        let views: Vec<PeerView> = (0..topology.len())
            .map(|i| topology.view(PeerId::from_index(i)))
            .collect();
        let stores = (0..topology.len()).map(|_| Store::new()).collect();
        Overlay {
            views,
            stores,
            replicate: true,
            messages_sent: 0,
        }
    }

    /// Disable replication to σ(p) (ablation runs).
    pub fn without_replication(mut self) -> Self {
        self.replicate = false;
        self
    }

    pub fn len(&self) -> usize {
        self.views.len()
    }

    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Total overlay messages consumed by all operations so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Reset the message counter (per-experiment accounting).
    pub fn reset_messages(&mut self) {
        self.messages_sent = 0;
    }

    /// The view of one peer.
    pub fn view(&self, peer: PeerId) -> &PeerView {
        &self.views[peer.index()]
    }

    /// The local store of one peer (read-only; mutations go through
    /// [`Overlay::update`]).
    pub fn store(&self, peer: PeerId) -> &Store<V> {
        &self.stores[peer.index()]
    }

    /// Route `key` from `origin` to a responsible peer using greedy
    /// prefix routing over peer-local views only.
    pub fn route<R: Rng + ?Sized>(
        &mut self,
        origin: PeerId,
        key: &BitString,
        rng: &mut R,
    ) -> Result<Route, RouteError> {
        // Hop budget: the tree depth bounds legal routes; 2× + 8 allows
        // for replica indirection without masking real routing loops.
        let budget = 2 * self.views.iter().map(|v| v.path.len()).max().unwrap_or(0) + 8;
        let mut current = origin;
        let mut hops = vec![origin];
        loop {
            let view = &self.views[current.index()];
            match view.forwarding_level(key) {
                None => {
                    return Ok(Route {
                        destination: current,
                        hops,
                    });
                }
                Some(level) => {
                    let candidates = view.refs.get(level).map(Vec::as_slice).unwrap_or(&[]);
                    let Some(next) = candidates.choose(rng).copied() else {
                        return Err(RouteError::NoRoute {
                            at_peer: current,
                            level,
                        });
                    };
                    self.messages_sent += 1;
                    hops.push(next);
                    if hops.len() > budget {
                        return Err(RouteError::TooManyHops { budget });
                    }
                    current = next;
                }
            }
        }
    }

    /// `Update(key, value)` issued at `origin`: route to the responsible
    /// peer, apply, and propagate to its replicas (one message each).
    pub fn update<R: Rng + ?Sized>(
        &mut self,
        origin: PeerId,
        op: UpdateOp,
        key: BitString,
        value: V,
        rng: &mut R,
    ) -> Result<Route, RouteError> {
        let route = self.route(origin, &key, rng)?;
        let dest = route.destination;
        self.stores[dest.index()].apply(op, key.clone(), value.clone());
        if self.replicate {
            let replicas = self.views[dest.index()].replicas.clone();
            for r in replicas {
                self.messages_sent += 1;
                self.stores[r.index()].apply(op, key.clone(), value.clone());
            }
        }
        Ok(route)
    }

    /// Route an `Update` to its destination and charge the replica
    /// propagation messages **without storing anything** — for callers
    /// that maintain the destination-side state themselves (e.g. the
    /// mediation layer's indexed per-peer databases). The route taken,
    /// the destination and the message accounting are exactly those of
    /// [`Overlay::update`]; only the bucket write is elided.
    pub fn update_placement<R: Rng + ?Sized>(
        &mut self,
        origin: PeerId,
        key: &BitString,
        rng: &mut R,
    ) -> Result<Route, RouteError> {
        let route = self.route(origin, key, rng)?;
        if self.replicate {
            self.messages_sent += self.views[route.destination.index()].replicas.len() as u64;
        }
        Ok(route)
    }

    /// `Retrieve(key)` issued at `origin`: route and return the values
    /// stored under exactly `key`, plus the route taken (the response
    /// message back to the originator is charged too).
    pub fn retrieve<R: Rng + ?Sized>(
        &mut self,
        origin: PeerId,
        key: &BitString,
        rng: &mut R,
    ) -> Result<(Vec<V>, Route), RouteError> {
        let route = self.route(origin, key, rng)?;
        let values = self.stores[route.destination.index()].get(key).to_vec();
        if route.destination != origin {
            self.messages_sent += 1; // response message
        }
        Ok((values, route))
    }

    /// Prefix variant of `Retrieve`: all values whose key starts with
    /// `prefix` *stored at the peer the routing terminates at*. With an
    /// order-preserving hash and a prefix no shorter than the peer path,
    /// this is a complete range read.
    pub fn retrieve_prefix<R: Rng + ?Sized>(
        &mut self,
        origin: PeerId,
        prefix: &BitString,
        rng: &mut R,
    ) -> Result<(Vec<V>, Route), RouteError> {
        let route = self.route(origin, prefix, rng)?;
        let values = self.stores[route.destination.index()]
            .scan_prefix(prefix)
            .map(|(_, v)| v.clone())
            .collect();
        if route.destination != origin {
            self.messages_sent += 1;
        }
        Ok((values, route))
    }

    /// Per-peer stored-item counts (for load-balance statistics).
    pub fn load_vector(&self) -> Vec<usize> {
        self.stores.iter().map(Store::len).collect()
    }

    /// Charge one response message if the destination differs from the
    /// origin — the accounting a `Retrieve` adds on top of its route.
    /// Exposed so callers that answer a routed request from peer-local
    /// state (instead of shipping the stored values back through
    /// [`Overlay::retrieve`]) keep identical message counts.
    pub fn charge_response(&mut self, origin: PeerId, destination: PeerId) {
        if destination != origin {
            self.messages_sent += 1;
        }
    }

    /// Charge `n` messages for a *direct* exchange between two peers
    /// that bypasses prefix routing entirely — replica-aware lookups
    /// and replica provisioning ship to a known holder address, so
    /// they pay per message exchanged rather than per routing hop.
    /// Local exchanges (`from == to`) are free, like everywhere else
    /// in the accounting.
    pub fn charge_direct(&mut self, from: PeerId, to: PeerId, n: u64) {
        if from != to {
            self.messages_sent += n;
        }
    }

    /// Distinct peer regions (paths) intersecting a key prefix — the
    /// replica groups a range scan must visit, sorted. Factored out of
    /// [`Overlay::retrieve_range`] so range callers that evaluate at
    /// the destination peers can walk the same regions with the same
    /// accounting.
    pub fn range_regions(&self, prefix: &BitString) -> Vec<BitString> {
        let mut regions: Vec<BitString> = Vec::new();
        for v in &self.views {
            let intersects = prefix.is_prefix_of(&v.path) || v.path.is_prefix_of(prefix);
            if intersects && !regions.contains(&v.path) {
                regions.push(v.path.clone());
            }
        }
        regions.sort();
        regions
    }

    /// Range retrieval: collect every value whose key starts with
    /// `prefix`, across *all* peer groups whose region intersects the
    /// prefix. With an order-preserving hash this implements the
    /// `value%`-style range searches the mediation layer motivates.
    ///
    /// Each intersecting replica group is probed by one routed request
    /// plus one response (messages accounted); the set of intersecting
    /// regions is derived from the sibling references a real P-Grid
    /// walks during a range scan.
    pub fn retrieve_range<R: Rng + ?Sized>(
        &mut self,
        origin: PeerId,
        prefix: &BitString,
        rng: &mut R,
    ) -> Result<Vec<V>, RouteError> {
        let regions = self.range_regions(prefix);
        let mut out = Vec::new();
        for region in regions {
            // Route to the region: the probe key is the deeper of
            // (region, prefix) so normal prefix routing lands inside it.
            let probe = if region.len() >= prefix.len() {
                region.clone()
            } else {
                prefix.clone()
            };
            let route = self.route(origin, &probe, rng)?;
            let dest = route.destination;
            for (_, v) in self.stores[dest.index()].scan_prefix(prefix) {
                out.push(v.clone());
            }
            if dest != origin {
                self.messages_sent += 1; // response
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{KeyHasher, OrderPreservingHash};
    use crate::topology::Topology;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn overlay(n: usize) -> Overlay<String> {
        let mut r = rng();
        let topo = Topology::balanced(n, 2, &mut r);
        topo.validate().expect("valid");
        Overlay::new(&topo)
    }

    #[test]
    fn route_reaches_responsible_peer() {
        let mut o = overlay(64);
        let mut r = rng();
        let h = OrderPreservingHash::default();
        for word in ["alpha", "beta", "EMBL#Organism", "zeta", ""] {
            let key = h.hash(word, 24);
            let route = o.route(PeerId(0), &key, &mut r).expect("routable");
            assert!(o.view(route.destination).is_responsible(&key));
        }
    }

    #[test]
    fn route_from_responsible_peer_is_zero_hops() {
        let mut o = overlay(16);
        let mut r = rng();
        let path = o.view(PeerId(3)).path.clone();
        let mut key = path.clone();
        for _ in 0..8 {
            key.push(false);
        }
        let route = o.route(PeerId(3), &key, &mut r).expect("routable");
        assert_eq!(route.destination, PeerId(3));
        assert_eq!(route.messages(), 0);
    }

    #[test]
    fn routing_cost_is_logarithmic() {
        let mut r = rng();
        let h = OrderPreservingHash::default();
        let mut o: Overlay<u32> = Overlay::new(&Topology::balanced(256, 2, &mut r));
        let mut total_msgs = 0u64;
        let trials = 200;
        for i in 0..trials {
            let key = h.hash(&format!("key-{i}"), 24);
            let origin = PeerId::from_index((i * 37) % 256);
            let route = o.route(origin, &key, &mut r).expect("routable");
            total_msgs += route.messages();
        }
        let mean = total_msgs as f64 / trials as f64;
        // depth = 8; expected hops ≈ half the depth; must be well below n.
        assert!(mean <= 8.5, "mean hops {mean} exceeds depth bound");
        assert!(mean >= 1.0, "routing suspiciously free: {mean}");
    }

    #[test]
    fn update_then_retrieve_round_trips() {
        let mut o = overlay(32);
        let mut r = rng();
        let h = OrderPreservingHash::default();
        let key = h.hash("swissprot:P12345", 24);
        o.update(
            PeerId(1),
            UpdateOp::Insert,
            key.clone(),
            "record".to_string(),
            &mut r,
        )
        .expect("update ok");
        let (values, _) = o.retrieve(PeerId(30), &key, &mut r).expect("retrieve ok");
        assert_eq!(values, vec!["record".to_string()]);
    }

    #[test]
    fn update_replicates_to_sigma() {
        // 12 peers at depth 3: paths 000..011 get two peers each.
        let mut r = rng();
        let topo = Topology::balanced(12, 2, &mut r);
        let mut o: Overlay<&str> = Overlay::new(&topo);
        let key = BitString::parse("0000000");
        o.update(PeerId(5), UpdateOp::Insert, key.clone(), "x", &mut r)
            .expect("update ok");
        let holders: Vec<usize> = (0..12)
            .filter(|i| !o.store(PeerId::from_index(*i)).is_empty())
            .collect();
        assert_eq!(holders.len(), 2, "item should live on both replicas");
        for i in holders {
            assert_eq!(o.store(PeerId::from_index(i)).get(&key), &["x"]);
        }
    }

    #[test]
    fn update_placement_charges_like_update_but_stores_nothing() {
        // Two identically seeded overlays: `update` and
        // `update_placement` must consume identical messages and land on
        // the same destination; only the bucket write differs.
        let mut r1 = rng();
        let mut r2 = rng();
        let topo = Topology::balanced(24, 2, &mut rng());
        let mut stored: Overlay<&str> = Overlay::new(&topo);
        let mut routed: Overlay<&str> = Overlay::new(&topo);
        let h = OrderPreservingHash::default();
        for word in ["alpha", "beta", "gamma", "delta"] {
            let key = h.hash(word, 24);
            let a = stored
                .update(PeerId(5), UpdateOp::Insert, key.clone(), "x", &mut r1)
                .unwrap();
            let b = routed.update_placement(PeerId(5), &key, &mut r2).unwrap();
            assert_eq!(a.destination, b.destination);
        }
        assert_eq!(stored.messages_sent(), routed.messages_sent());
        assert!((0..24).all(|i| routed.store(PeerId::from_index(i)).is_empty()));
        assert!((0..24).any(|i| !stored.store(PeerId::from_index(i)).is_empty()));
    }

    #[test]
    fn delete_removes_everywhere() {
        let mut r = rng();
        let topo = Topology::balanced(12, 2, &mut r);
        let mut o: Overlay<&str> = Overlay::new(&topo);
        let key = BitString::parse("0000000");
        o.update(PeerId(0), UpdateOp::Insert, key.clone(), "x", &mut r)
            .unwrap();
        o.update(PeerId(7), UpdateOp::Delete, key.clone(), "x", &mut r)
            .unwrap();
        assert!((0..12).all(|i| o.store(PeerId::from_index(i)).is_empty()));
    }

    #[test]
    fn retrieve_prefix_collects_range() {
        let mut o = overlay(4); // depth 2
        let mut r = rng();
        // Keys under "01": should all land on the same peer.
        for (suffix, val) in [("0100", "a"), ("0101", "b"), ("0111", "c")] {
            o.update(
                PeerId(0),
                UpdateOp::Insert,
                BitString::parse(suffix),
                val.to_string(),
                &mut r,
            )
            .unwrap();
        }
        let (mut values, _) = o
            .retrieve_prefix(PeerId(3), &BitString::parse("01"), &mut r)
            .unwrap();
        values.sort();
        assert_eq!(values, vec!["a", "b", "c"]);
        let (sub, _) = o
            .retrieve_prefix(PeerId(3), &BitString::parse("010"), &mut r)
            .unwrap();
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn retrieve_range_spans_multiple_peers() {
        // Depth-3 grid (8 peers): keys under "01" live on two distinct
        // peers ("010…" and "011…"); a range read must visit both.
        let mut o = overlay(8);
        let mut r = rng();
        for (key, val) in [
            ("0100001", "a"),
            ("0101111", "b"),
            ("0110000", "c"),
            ("0111010", "d"),
            ("1000000", "elsewhere"),
        ] {
            o.update(
                PeerId(0),
                UpdateOp::Insert,
                BitString::parse(key),
                val.to_string(),
                &mut r,
            )
            .unwrap();
        }
        let mut values = o
            .retrieve_range(PeerId(7), &BitString::parse("01"), &mut r)
            .unwrap();
        values.sort();
        assert_eq!(values, vec!["a", "b", "c", "d"]);
        // A deeper prefix narrows the range.
        let narrow = o
            .retrieve_range(PeerId(7), &BitString::parse("010"), &mut r)
            .unwrap();
        assert_eq!(narrow.len(), 2);
    }

    #[test]
    fn retrieve_range_counts_messages() {
        let mut o = overlay(8);
        let mut r = rng();
        o.reset_messages();
        let before = o.messages_sent();
        let _ = o
            .retrieve_range(PeerId(0), &BitString::parse("1"), &mut r)
            .unwrap();
        // Four leaf regions under "1": at least one probe+response each
        // unless the origin owns one.
        assert!(o.messages_sent() - before >= 6);
    }

    #[test]
    fn message_accounting_counts_request_and_response() {
        let mut o = overlay(16);
        let mut r = rng();
        o.reset_messages();
        let key = BitString::parse("111100001111");
        let before = o.messages_sent();
        let (_, route) = o.retrieve(PeerId(0), &key, &mut r).unwrap();
        let after = o.messages_sent();
        if route.destination == PeerId(0) {
            assert_eq!(after - before, 0);
        } else {
            assert_eq!(after - before, route.messages() + 1);
        }
    }

    #[test]
    fn missing_key_returns_empty_not_error() {
        let mut o = overlay(8);
        let mut r = rng();
        let (values, _) = o
            .retrieve(PeerId(2), &BitString::parse("10101010"), &mut r)
            .unwrap();
        assert!(values.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::hash::HashKind;
    use crate::topology::Topology;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Whatever the network size and key, routing from any origin
        /// terminates at a peer responsible for the key, within the
        /// depth bound.
        #[test]
        fn routing_always_terminates_correctly(
            n in 1usize..300,
            seed in 0u64..30,
            word in "[ -~]{0,16}",
            kind in prop_oneof![Just(HashKind::OrderPreserving), Just(HashKind::Uniform)],
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let topo = Topology::balanced(n, 2, &mut rng);
            let mut o: Overlay<u8> = Overlay::new(&topo);
            let key = kind.build().hash(&word, 24);
            let origin = PeerId::from_index(seed as usize % n);
            let route = o.route(origin, &key, &mut rng).expect("balanced grid always routes");
            prop_assert!(o.view(route.destination).is_responsible(&key));
            prop_assert!(route.messages() as usize <= topo.depth() + 1);
        }

        /// Insert/retrieve round-trips for arbitrary words across sizes.
        #[test]
        fn store_round_trip(n in 1usize..128, seed in 0u64..20, words in proptest::collection::vec("[a-z]{1,10}", 1..20)) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let topo = Topology::balanced(n, 2, &mut rng);
            let mut o: Overlay<String> = Overlay::new(&topo);
            let h = HashKind::OrderPreserving.build();
            for w in &words {
                let key = h.hash(w, 24);
                o.update(PeerId(0), UpdateOp::Insert, key, w.clone(), &mut rng).expect("update");
            }
            for w in &words {
                let key = h.hash(w, 24);
                let (values, _) = o.retrieve(PeerId::from_index(n / 2), &key, &mut rng).expect("retrieve");
                prop_assert!(values.contains(w), "lost {w}");
            }
        }
    }
}
