//! Key hashing: the order-preserving hash of §2.2 plus a uniform baseline.
//!
//! GridVine generates binary overlay keys "using an order-preserving hash
//! function Hash() on the data" so that lexicographically close values land
//! on nearby leaves of the virtual binary tree — the property that lets
//! `%Aspergillus%`-style constrained searches and range scans stay local.
//!
//! [`OrderPreservingHash`] interprets a string as a fraction in `[0, 1)`
//! over a 7-bit character alphabet and emits the first `depth` bits of the
//! binary expansion of that fraction. This is exactly order-preserving:
//! `a <= b` (byte-wise, after clamping to the alphabet) implies
//! `hash(a) <= hash(b)` as bit strings of equal length.
//!
//! [`UniformHash`] (FNV-1a) is the classic DHT choice and serves as the
//! ablation baseline in experiment A1: it balances load perfectly on
//! skewed key sets but destroys locality.

use crate::bits::BitString;
use serde::{Deserialize, Serialize};

/// A function from application-level string keys to overlay bit keys.
pub trait KeyHasher {
    /// Hash `data` to a key of exactly `depth` bits.
    fn hash(&self, data: &str, depth: usize) -> BitString;
}

/// Which hasher a deployment uses (serializable for experiment configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashKind {
    OrderPreserving,
    Uniform,
}

impl HashKind {
    pub fn build(self) -> Box<dyn KeyHasher + Send + Sync> {
        match self {
            HashKind::OrderPreserving => Box::new(OrderPreservingHash::default()),
            HashKind::Uniform => Box::new(UniformHash),
        }
    }
}

/// Order-preserving hash over the printable-ASCII alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderPreservingHash {
    /// Alphabet size; characters are clamped into `[0, radix)` after
    /// subtracting the offset. 96 covers printable ASCII (0x20..0x7F).
    radix: u32,
    offset: u32,
}

impl Default for OrderPreservingHash {
    fn default() -> Self {
        OrderPreservingHash {
            radix: 96,
            offset: 0x20,
        }
    }
}

impl OrderPreservingHash {
    pub fn new(radix: u32, offset: u32) -> Self {
        assert!(radix >= 2, "radix must be at least 2");
        OrderPreservingHash { radix, offset }
    }

    #[inline]
    fn digit(&self, byte: u8) -> u32 {
        (byte as u32)
            .saturating_sub(self.offset)
            .min(self.radix - 1)
    }
}

impl KeyHasher for OrderPreservingHash {
    fn hash(&self, data: &str, depth: usize) -> BitString {
        // Long-division style binary expansion of the fraction
        //   sum_i digit_i / radix^(i+1)
        // We keep the current interval [lo, hi) over u128 to avoid
        // floating-point rounding breaking the order-preserving property.
        const ONE: u128 = 1 << 100; // fixed-point unit
        let mut lo: u128 = 0;
        let mut width: u128 = ONE;
        for &b in data.as_bytes() {
            let d = self.digit(b) as u128;
            width /= self.radix as u128;
            if width == 0 {
                break; // interval exhausted: further characters don't matter
            }
            lo += d * width;
        }
        // Emit `depth` bits of lo as a fraction of ONE.
        let mut key = BitString::with_capacity(depth);
        let mut acc = lo;
        let mut unit = ONE;
        for _ in 0..depth {
            unit /= 2;
            if acc >= unit {
                key.push(true);
                acc -= unit;
            } else {
                key.push(false);
            }
        }
        key
    }
}

/// FNV-1a based uniform hash (ablation baseline; destroys order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniformHash;

impl KeyHasher for UniformHash {
    fn hash(&self, data: &str, depth: usize) -> BitString {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in data.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // FNV-1a's high bits avalanche poorly for short suffix changes;
        // finish with a SplitMix64-style mix so every input bit reaches
        // every output bit.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        // Fold to the requested depth (≤ 64 bits per chunk).
        if depth <= 64 {
            BitString::from_u64(h >> (64 - depth.max(1)).min(63), depth)
        } else {
            let mut key = BitString::with_capacity(depth);
            let mut state = h;
            while key.len() < depth {
                state = state
                    .rotate_left(31)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x2545_F491_4F6C_DD1D);
                let take = (depth - key.len()).min(64);
                for i in (64 - take..64).rev() {
                    key.push((state >> i) & 1 == 1);
                }
            }
            key
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_hash_is_order_preserving_on_examples() {
        let h = OrderPreservingHash::default();
        let words = [
            "",
            "A",
            "AB",
            "Aspergillus",
            "B",
            "EMBL#Organism",
            "EMP#SystematicName",
            "a",
            "zzz",
        ];
        for w in words.windows(2) {
            let ka = h.hash(w[0], 32);
            let kb = h.hash(w[1], 32);
            assert!(ka <= kb, "{} -> {ka} should be <= {} -> {kb}", w[0], w[1]);
        }
    }

    #[test]
    fn op_hash_fixed_depth() {
        let h = OrderPreservingHash::default();
        for depth in [1, 8, 17, 32, 64] {
            assert_eq!(h.hash("protein", depth).len(), depth);
        }
    }

    #[test]
    fn op_hash_empty_string_is_all_zeroes() {
        let h = OrderPreservingHash::default();
        assert_eq!(h.hash("", 8).to_string(), "00000000");
    }

    #[test]
    fn op_hash_deterministic() {
        let h = OrderPreservingHash::default();
        assert_eq!(h.hash("EMBL#Organism", 32), h.hash("EMBL#Organism", 32));
    }

    #[test]
    fn op_hash_distinguishes_close_strings() {
        // Each character consumes log2(96) ≈ 6.6 bits of resolution, so a
        // difference at position 9 needs ≥ 60 emitted bits to show up.
        let h = OrderPreservingHash::default();
        assert_ne!(h.hash("protein_a", 64), h.hash("protein_b", 64));
        assert_ne!(h.hash("prot_a", 48), h.hash("prot_b", 48));
    }

    #[test]
    fn op_hash_long_common_prefix_shares_key_prefix() {
        let h = OrderPreservingHash::default();
        let a = h.hash("EMBL#OrganismClassification", 32);
        let b = h.hash("EMBL#OrganismSpecies", 32);
        // Shared 13-char prefix => deep shared key prefix (locality).
        assert!(
            a.common_prefix_len(&b) >= 16,
            "lcp {}",
            a.common_prefix_len(&b)
        );
    }

    #[test]
    fn uniform_hash_fixed_depth_and_deterministic() {
        let h = UniformHash;
        for depth in [1, 16, 32, 64, 80, 150] {
            let k = h.hash("EMBL#Organism", depth);
            assert_eq!(k.len(), depth);
            assert_eq!(k, h.hash("EMBL#Organism", depth));
        }
    }

    #[test]
    fn uniform_hash_scatters_close_strings() {
        let h = UniformHash;
        let a = h.hash("predicate_001", 32);
        let b = h.hash("predicate_002", 32);
        // Overwhelmingly likely to diverge within the first few bits.
        assert!(a.common_prefix_len(&b) < 16);
    }

    #[test]
    fn hash_kind_builds_working_hashers() {
        for kind in [HashKind::OrderPreserving, HashKind::Uniform] {
            let h = kind.build();
            assert_eq!(h.hash("x", 16).len(), 16);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The defining property: string order implies key order.
        #[test]
        fn op_hash_monotone(a in "[ -~]{0,24}", b in "[ -~]{0,24}") {
            let h = OrderPreservingHash::default();
            let ka = h.hash(&a, 48);
            let kb = h.hash(&b, 48);
            match a.as_bytes().cmp(b.as_bytes()) {
                std::cmp::Ordering::Less => prop_assert!(ka <= kb),
                std::cmp::Ordering::Greater => prop_assert!(ka >= kb),
                std::cmp::Ordering::Equal => prop_assert_eq!(ka, kb),
            }
        }

        /// Both hashers always emit exactly `depth` bits.
        #[test]
        fn depth_respected(s in "[ -~]{0,40}", depth in 1usize..128) {
            prop_assert_eq!(OrderPreservingHash::default().hash(&s, depth).len(), depth);
            prop_assert_eq!(UniformHash.hash(&s, depth).len(), depth);
        }

        /// Uniform hash spreads mass: over random strings, the first bit
        /// is roughly fair. (Statistical smoke test with fixed corpus size.)
        #[test]
        fn uniform_first_bit_balanced(seed_strings in proptest::collection::hash_set("[a-z]{6,12}", 64)) {
            let h = UniformHash;
            let ones = seed_strings.iter().filter(|s| h.hash(s, 16).bit(0)).count();
            // Binomial(64, 0.5): reject only wildly unbalanced outcomes.
            prop_assert!((12..=52).contains(&ones), "ones = {ones}");
        }
    }
}
