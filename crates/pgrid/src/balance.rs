//! Storage load-balance statistics.
//!
//! P-Grid's stated goal at the overlay layer is "index load-balancing and
//! efficient routing of messages" (§2). These statistics quantify the
//! load-balancing half: given the per-peer item counts of an overlay,
//! compute dispersion measures used by experiment A1 (order-preserving
//! vs uniform hash under skewed key popularity).

use serde::{Deserialize, Serialize};

/// Dispersion measures over a load vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadStats {
    pub peers: usize,
    pub total_items: usize,
    pub mean: f64,
    pub max: usize,
    pub min: usize,
    /// Gini coefficient in [0, 1): 0 = perfectly even.
    pub gini: f64,
    /// max / mean — the classic DHT imbalance factor.
    pub imbalance: f64,
    /// Fraction of peers storing nothing.
    pub empty_fraction: f64,
}

impl LoadStats {
    /// Compute the statistics from per-peer item counts.
    ///
    /// # Panics
    /// Panics if `loads` is empty.
    pub fn compute(loads: &[usize]) -> LoadStats {
        assert!(!loads.is_empty(), "load vector must be non-empty");
        let n = loads.len();
        let total: usize = loads.iter().sum();
        let mean = total as f64 / n as f64;
        let max = *loads.iter().max().expect("non-empty");
        let min = *loads.iter().min().expect("non-empty");
        let empty = loads.iter().filter(|&&l| l == 0).count();

        // Gini via the sorted-rank formula.
        let gini = if total == 0 {
            0.0
        } else {
            let mut sorted: Vec<usize> = loads.to_vec();
            sorted.sort_unstable();
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * x as f64)
                .sum();
            weighted / (n as f64 * total as f64)
        };

        LoadStats {
            peers: n,
            total_items: total,
            mean,
            max,
            min,
            gini,
            imbalance: if mean > 0.0 { max as f64 / mean } else { 0.0 },
            empty_fraction: empty as f64 / n as f64,
        }
    }
}

impl std::fmt::Display for LoadStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peers={} items={} mean={:.1} max={} min={} gini={:.3} imbalance={:.2} empty={:.1}%",
            self.peers,
            self.total_items,
            self.mean,
            self.max,
            self.min,
            self.gini,
            self.imbalance,
            self.empty_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_load_has_zero_gini() {
        let s = LoadStats::compute(&[5, 5, 5, 5]);
        assert!(s.gini.abs() < 1e-12);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.empty_fraction, 0.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn concentrated_load_has_high_gini() {
        let s = LoadStats::compute(&[100, 0, 0, 0]);
        assert!(s.gini > 0.7, "gini {}", s.gini);
        assert_eq!(s.imbalance, 4.0);
        assert_eq!(s.empty_fraction, 0.75);
    }

    #[test]
    fn all_empty_is_balanced() {
        let s = LoadStats::compute(&[0, 0, 0]);
        assert_eq!(s.gini, 0.0);
        assert_eq!(s.imbalance, 0.0);
        assert_eq!(s.total_items, 0);
    }

    #[test]
    fn gini_orders_by_inequality() {
        let even = LoadStats::compute(&[10, 10, 10, 10]).gini;
        let mild = LoadStats::compute(&[13, 11, 9, 7]).gini;
        let harsh = LoadStats::compute(&[37, 1, 1, 1]).gini;
        assert!(even < mild && mild < harsh);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vector_rejected() {
        let _ = LoadStats::compute(&[]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Gini is always in [0, 1) and scale-invariant.
        #[test]
        fn gini_bounds_and_scale(loads in proptest::collection::vec(0usize..100, 1..50), k in 1usize..5) {
            let s = LoadStats::compute(&loads);
            prop_assert!((0.0..1.0).contains(&s.gini), "gini {}", s.gini);
            let scaled: Vec<usize> = loads.iter().map(|l| l * k).collect();
            let s2 = LoadStats::compute(&scaled);
            prop_assert!((s.gini - s2.gini).abs() < 1e-9);
        }

        /// max ≥ mean ≥ min, and totals add up.
        #[test]
        fn summary_sanity(loads in proptest::collection::vec(0usize..1000, 1..60)) {
            let s = LoadStats::compute(&loads);
            prop_assert!(s.max as f64 >= s.mean - 1e-9);
            prop_assert!(s.mean >= s.min as f64 - 1e-9);
            prop_assert_eq!(s.total_items, loads.iter().sum::<usize>());
        }
    }
}
