//! Decentralized P-Grid construction by random pairwise exchanges.
//!
//! P-Grid is "a self-organizing and distributed access structure" (§2.1):
//! the virtual binary tree is *not* assigned by any coordinator but
//! emerges from random bilateral interactions. This module simulates that
//! construction faithfully at the protocol level:
//!
//! * two peers with **equal paths** that jointly hold more than
//!   `split_threshold` data keys **split**: one appends `0`, the other
//!   `1`, they partition their data along the new bit and reference each
//!   other at the new level (the `path·0` / `path·1` step of §2.1);
//! * two peers with equal paths but little data become **replicas** and
//!   synchronize their data (the σ(p) sets);
//! * a peer whose path is the *immediate* prefix of its partner's
//!   **specializes** to the sibling half, which keeps key-space coverage
//!   complete at every step;
//! * peers with **diverging paths** exchange routing references at the
//!   divergence level, and recursively introduce each other to their own
//!   references so deeper levels populate too.
//!
//! Random meetings alone can leave stragglers (a peer stuck at a short
//! path with no immediate-prefix partner left). [`ExchangeBuilder::finalize`]
//! runs the same *local* repair rule a live P-Grid applies lazily —
//! extend toward the uncovered child, register with the sibling — until
//! the path set is prefix-free, then returns a validated [`Topology`].

use crate::bits::BitString;
use crate::topology::{PeerId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tunables for the exchange process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExchangeConfig {
    /// Two equal-path peers split when they jointly hold more than this
    /// many keys in their region.
    pub split_threshold: usize,
    /// Paths never grow beyond this depth.
    pub max_depth: usize,
    /// Meetings to run, as a multiple of the peer count.
    pub rounds_per_peer: usize,
    /// Cap on references kept per level.
    pub refs_per_level: usize,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            split_threshold: 16,
            max_depth: 16,
            rounds_per_peer: 60,
            refs_per_level: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct BuilderPeer {
    path: BitString,
    /// Data keys this peer currently holds (drives adaptive splitting).
    keys: Vec<BitString>,
    /// refs[l] = known peers on the other side at level l.
    refs: Vec<Vec<PeerId>>,
}

impl BuilderPeer {
    fn add_ref(&mut self, level: usize, peer: PeerId, cap: usize) {
        while self.refs.len() <= level {
            self.refs.push(Vec::new());
        }
        let bucket = &mut self.refs[level];
        if !bucket.contains(&peer) && bucket.len() < cap {
            bucket.push(peer);
        }
    }
}

/// Simulates the decentralized construction process.
#[derive(Debug, Clone)]
pub struct ExchangeBuilder {
    peers: Vec<BuilderPeer>,
    cfg: ExchangeConfig,
    splits: u64,
    replications: u64,
    specializations: u64,
    repairs: u64,
}

impl ExchangeBuilder {
    /// Start with `n` peers at the root path; `keys[i]` is the data
    /// sample peer `i` brings into the network.
    ///
    /// # Panics
    /// Panics if `n == 0` or `keys.len() != n`.
    pub fn new(n: usize, keys: Vec<Vec<BitString>>, cfg: ExchangeConfig) -> ExchangeBuilder {
        assert!(n > 0, "need at least one peer");
        assert_eq!(keys.len(), n, "one key sample per peer");
        let peers = keys
            .into_iter()
            .map(|k| BuilderPeer {
                path: BitString::empty(),
                keys: k,
                refs: Vec::new(),
            })
            .collect();
        ExchangeBuilder {
            peers,
            cfg,
            splits: 0,
            replications: 0,
            specializations: 0,
            repairs: 0,
        }
    }

    /// Number of splits performed so far.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Number of replica merges performed so far.
    pub fn replications(&self) -> u64 {
        self.replications
    }

    /// Number of repair extensions applied by `finalize`.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Run `rounds_per_peer * n` random bilateral meetings.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.peers.len();
        if n < 2 {
            return;
        }
        let meetings = self.cfg.rounds_per_peer * n;
        for _ in 0..meetings {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n - 1);
            if b >= a {
                b += 1;
            }
            self.meet(PeerId::from_index(a), PeerId::from_index(b), rng);
        }
    }

    /// One bilateral meeting.
    pub fn meet<R: Rng + ?Sized>(&mut self, a: PeerId, b: PeerId, rng: &mut R) {
        let (ai, bi) = (a.index(), b.index());
        let pa = self.peers[ai].path.clone();
        let pb = self.peers[bi].path.clone();
        let l = pa.common_prefix_len(&pb);

        if pa == pb {
            let combined = self.peers[ai].keys.len() + self.peers[bi].keys.len();
            if combined > self.cfg.split_threshold && pa.len() < self.cfg.max_depth {
                self.split(a, b);
            } else {
                self.replicate(a, b);
            }
        } else if l == pa.len() && pb.len() == pa.len() + 1 {
            // pa is the immediate prefix of pb: a specializes to the
            // sibling half; coverage of the region is preserved (b keeps
            // its half, a takes the other).
            self.specialize(a, b);
        } else if l == pb.len() && pa.len() == pb.len() + 1 {
            self.specialize(b, a);
        } else if l < pa.len() && l < pb.len() {
            // Diverging paths: exchange references at the divergence
            // level, then introduce each other onward (the recursive
            // phase of the exchange algorithm).
            let cap = self.cfg.refs_per_level;
            self.peers[ai].add_ref(l, b, cap);
            self.peers[bi].add_ref(l, a, cap);
            self.introduce(a, b, rng);
        }
        // Deep prefix relations (gap > 1) only exchange what is safe:
        // nothing structural, and no reference (levels don't align).
    }

    fn split(&mut self, a: PeerId, b: PeerId) {
        let (ai, bi) = (a.index(), b.index());
        let base = self.peers[ai].path.clone();
        let pa = base.child(false);
        let pb = base.child(true);
        // Pool both key sets, partition along the new bit.
        let mut pool = std::mem::take(&mut self.peers[ai].keys);
        pool.append(&mut self.peers[bi].keys);
        pool.sort();
        pool.dedup();
        let split_level = base.len();
        let (ones, zeros): (Vec<BitString>, Vec<BitString>) = pool
            .into_iter()
            .partition(|k| k.len() > split_level && k.bit(split_level));
        self.peers[ai].path = pa;
        self.peers[bi].path = pb;
        self.peers[ai].keys = zeros;
        self.peers[bi].keys = ones;
        let level = base.len();
        let cap = self.cfg.refs_per_level;
        self.peers[ai].add_ref(level, b, cap);
        self.peers[bi].add_ref(level, a, cap);
        self.splits += 1;
    }

    fn replicate(&mut self, a: PeerId, b: PeerId) {
        let (ai, bi) = (a.index(), b.index());
        let mut union = self.peers[ai].keys.clone();
        union.extend(self.peers[bi].keys.iter().cloned());
        union.sort();
        union.dedup();
        self.peers[ai].keys = union.clone();
        self.peers[bi].keys = union;
        // Replicas share routing knowledge too.
        let refs_b = self.peers[bi].refs.clone();
        let cap = self.cfg.refs_per_level;
        for (l, bucket) in refs_b.iter().enumerate() {
            for r in bucket {
                if *r != a {
                    self.peers[ai].add_ref(l, *r, cap);
                }
            }
        }
        let refs_a = self.peers[ai].refs.clone();
        for (l, bucket) in refs_a.iter().enumerate() {
            for r in bucket {
                if *r != b {
                    self.peers[bi].add_ref(l, *r, cap);
                }
            }
        }
        self.replications += 1;
    }

    /// `shallow` (path = P) specializes against `deep` (path = P·b):
    /// shallow takes P·¬b.
    fn specialize(&mut self, shallow: PeerId, deep: PeerId) {
        let si = shallow.index();
        let di = deep.index();
        let level = self.peers[si].path.len();
        let deep_bit = self.peers[di].path.bit(level);
        let new_path = self.peers[si].path.child(!deep_bit);
        // Hand over the keys that now belong to the deep peer's half.
        let np = new_path.clone();
        let (keep, give): (Vec<BitString>, Vec<BitString>) =
            std::mem::take(&mut self.peers[si].keys)
                .into_iter()
                .partition(|k| np.is_prefix_of(k));
        self.peers[si].path = new_path;
        self.peers[si].keys = keep;
        for k in give {
            if !self.peers[di].keys.contains(&k) {
                self.peers[di].keys.push(k);
            }
        }
        let cap = self.cfg.refs_per_level;
        self.peers[si].add_ref(level, deep, cap);
        self.peers[di].add_ref(level, shallow, cap);
        self.specializations += 1;
    }

    /// After a divergent meeting, each peer hands the other a reference
    /// drawn from its own table that is useful on the other side.
    fn introduce<R: Rng + ?Sized>(&mut self, a: PeerId, b: PeerId, rng: &mut R) {
        let cap = self.cfg.refs_per_level;
        for (me, other) in [(a, b), (b, a)] {
            let candidates: Vec<PeerId> = self.peers[other.index()]
                .refs
                .iter()
                .flatten()
                .copied()
                .filter(|p| *p != me)
                .collect();
            if let Some(&c) = candidates.choose(rng) {
                let my_path = self.peers[me.index()].path.clone();
                let cp = self.peers[c.index()].path.clone();
                let l = my_path.common_prefix_len(&cp);
                if l < my_path.len() && l < cp.len() {
                    self.peers[me.index()].add_ref(l, c, cap);
                }
            }
        }
    }

    /// Resolve residual prefix overlaps, then emit a validated topology.
    ///
    /// The repair rule is local: a peer that discovers another peer
    /// deeper inside its own region extends its path one bit toward the
    /// child that nobody else covers (or the emptier child when both are
    /// covered), registering with its new sibling. This is the lazy
    /// self-repair a deployed P-Grid performs when routing detects
    /// overlap.
    pub fn finalize<R: Rng + ?Sized>(mut self, rng: &mut R) -> Topology {
        loop {
            let paths: BTreeSet<BitString> = self.peers.iter().map(|p| p.path.clone()).collect();
            // Find a peer whose path is a proper prefix of another path.
            let offender = self.peers.iter().position(|p| {
                paths
                    .iter()
                    .any(|q| p.path.len() < q.len() && p.path.is_prefix_of(q))
            });
            let Some(i) = offender else { break };
            let me = self.peers[i].path.clone();
            if me.len() >= self.cfg.max_depth {
                break; // give up extending; validation will report it
            }
            let covered = |child: &BitString| {
                paths
                    .iter()
                    .any(|q| q != &me && (child.is_prefix_of(q) || q.is_prefix_of(child)))
            };
            let c0 = me.child(false);
            let c1 = me.child(true);
            let target = match (covered(&c0), covered(&c1)) {
                (false, true) => c0,
                (true, false) => c1,
                _ => {
                    // Both covered (redundant) or both uncovered (we are
                    // the sole cover; keep both by conceptually sending a
                    // replica — model as extending to the less populated
                    // side; the other side keeps coverage via deeper
                    // peers or a sibling replica created below).
                    let pop0 = self
                        .peers
                        .iter()
                        .filter(|p| c0.is_prefix_of(&p.path))
                        .count();
                    let pop1 = self
                        .peers
                        .iter()
                        .filter(|p| c1.is_prefix_of(&p.path))
                        .count();
                    if pop0 <= pop1 {
                        c0
                    } else {
                        c1
                    }
                }
            };
            let (keep, _give): (Vec<BitString>, Vec<BitString>) =
                std::mem::take(&mut self.peers[i].keys)
                    .into_iter()
                    .partition(|k| target.is_prefix_of(k));
            self.peers[i].keys = keep;
            self.peers[i].path = target;
            self.repairs += 1;
        }

        // Coverage repair: any hole gets a surplus replica reassigned.
        loop {
            let holes = self.coverage_holes();
            let Some(hole) = holes.into_iter().next() else {
                break;
            };
            // A donor is any peer whose path has another peer on it.
            let mut donor = None;
            for (i, p) in self.peers.iter().enumerate() {
                let twins = self
                    .peers
                    .iter()
                    .enumerate()
                    .filter(|(j, q)| *j != i && q.path == p.path)
                    .count();
                if twins > 0 {
                    donor = Some(i);
                    break;
                }
            }
            let Some(d) = donor else { break };
            self.peers[d].path = hole;
            self.peers[d].keys.clear();
            self.peers[d].refs.clear();
            self.repairs += 1;
        }

        // Make sure every peer can route at every level: sample missing
        // references from the global path map (models the reference
        // gossip that accompanies normal traffic).
        let paths: Vec<BitString> = self.peers.iter().map(|p| p.path.clone()).collect();
        let cap = self.cfg.refs_per_level;
        for i in 0..self.peers.len() {
            let my = paths[i].clone();
            for l in 0..my.len() {
                let have = self.peers[i].refs.get(l).map(Vec::len).unwrap_or(0);
                if have > 0 {
                    continue;
                }
                let sib = my.sibling_at(l);
                let mut pool: Vec<PeerId> = paths
                    .iter()
                    .enumerate()
                    .filter(|(j, q)| *j != i && (sib.is_prefix_of(q) || q.is_prefix_of(&sib)))
                    .map(|(j, _)| PeerId::from_index(j))
                    .collect();
                pool.shuffle(rng);
                pool.truncate(cap);
                for p in pool {
                    self.peers[i].add_ref(l, p, cap);
                }
            }
        }

        let routing: Vec<Vec<Vec<PeerId>>> = self.peers.iter().map(|p| p.refs.clone()).collect();
        Topology::from_paths_and_routing(paths, routing)
    }

    /// Maximal uncovered regions of the key space (empty when coverage
    /// is complete).
    fn coverage_holes(&self) -> Vec<BitString> {
        let paths: BTreeSet<BitString> = self.peers.iter().map(|p| p.path.clone()).collect();
        let mut holes = Vec::new();
        let mut stack = vec![BitString::empty()];
        while let Some(region) = stack.pop() {
            if paths.iter().any(|p| p.is_prefix_of(&region)) {
                continue; // fully covered
            }
            let has_inner = paths.iter().any(|p| region.is_prefix_of(p));
            if !has_inner {
                holes.push(region);
                continue;
            }
            stack.push(region.child(false));
            stack.push(region.child(true));
        }
        holes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{KeyHasher, UniformHash};
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn uniform_keys(n_peers: usize, keys_per_peer: usize, seed: u64) -> Vec<Vec<BitString>> {
        let h = UniformHash;
        (0..n_peers)
            .map(|i| {
                (0..keys_per_peer)
                    .map(|j| h.hash(&format!("key-{seed}-{i}-{j}"), 24))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn construction_produces_valid_topology() {
        let n = 64;
        let mut r = rng(1);
        let mut b = ExchangeBuilder::new(n, uniform_keys(n, 32, 1), ExchangeConfig::default());
        b.run(&mut r);
        assert!(b.splits() > 0, "network should have split");
        let topo = b.finalize(&mut r);
        topo.validate().expect("constructed topology is valid");
        assert!(topo.depth() >= 2, "depth {}", topo.depth());
    }

    #[test]
    fn construction_is_deterministic_given_seed() {
        let build = |seed| {
            let n = 32;
            let mut r = rng(seed);
            let mut b = ExchangeBuilder::new(n, uniform_keys(n, 16, 9), ExchangeConfig::default());
            b.run(&mut r);
            let topo = b.finalize(&mut r);
            (0..n)
                .map(|i| topo.path(PeerId::from_index(i)).to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(5), build(5));
    }

    #[test]
    fn split_threshold_controls_depth() {
        let n = 32;
        let deep_cfg = ExchangeConfig {
            split_threshold: 4,
            ..ExchangeConfig::default()
        };
        let shallow_cfg = ExchangeConfig {
            split_threshold: 10_000,
            ..ExchangeConfig::default()
        };
        let mut r1 = rng(3);
        let mut deep = ExchangeBuilder::new(n, uniform_keys(n, 64, 3), deep_cfg);
        deep.run(&mut r1);
        let deep_topo = deep.finalize(&mut r1);

        let mut r2 = rng(3);
        let mut shallow = ExchangeBuilder::new(n, uniform_keys(n, 64, 3), shallow_cfg);
        shallow.run(&mut r2);
        let shallow_topo = shallow.finalize(&mut r2);

        assert!(
            deep_topo.depth() > shallow_topo.depth(),
            "deep {} vs shallow {}",
            deep_topo.depth(),
            shallow_topo.depth()
        );
        // With an enormous threshold nobody splits: everyone replicates
        // at the root.
        assert_eq!(shallow_topo.depth(), 0);
    }

    #[test]
    fn skewed_data_yields_unbalanced_trie() {
        // All keys on the 1-side: only that side should deepen.
        let n = 48;
        let keys: Vec<Vec<BitString>> = (0..n)
            .map(|i| {
                (0..48u64)
                    .map(|j| BitString::from_u64((1 << 23) | (i as u64 * 48 + j), 24))
                    .collect()
            })
            .collect();
        let mut r = rng(4);
        let mut b = ExchangeBuilder::new(n, keys, ExchangeConfig::default());
        b.run(&mut r);
        let topo = b.finalize(&mut r);
        topo.validate().expect("valid");
        let max_depth_under = |bit: &str| {
            topo.groups()
                .filter(|(p, _)| BitString::parse(bit).is_prefix_of(p))
                .map(|(p, _)| p.len())
                .max()
                .unwrap_or(0)
        };
        assert!(
            max_depth_under("1") > max_depth_under("0"),
            "1-side {} vs 0-side {}",
            max_depth_under("1"),
            max_depth_under("0")
        );
    }

    #[test]
    fn constructed_overlay_routes() {
        use crate::overlay::Overlay;
        let n = 64;
        let mut r = rng(6);
        let mut b = ExchangeBuilder::new(n, uniform_keys(n, 32, 6), ExchangeConfig::default());
        b.run(&mut r);
        let topo = b.finalize(&mut r);
        topo.validate().expect("valid");
        let mut o: Overlay<u8> = Overlay::new(&topo);
        let h = UniformHash;
        let mut ok = 0;
        let trials = 100;
        for i in 0..trials {
            let key = h.hash(&format!("probe-{i}"), 24);
            if let Ok(route) = o.route(PeerId::from_index(i % n), &key, &mut r) {
                assert!(o.view(route.destination).is_responsible(&key));
                ok += 1;
            }
        }
        assert!(ok >= trials * 95 / 100, "only {ok}/{trials} routed");
    }

    #[test]
    fn single_peer_network_is_trivially_valid() {
        let mut r = rng(7);
        let mut b = ExchangeBuilder::new(1, vec![vec![]], ExchangeConfig::default());
        b.run(&mut r);
        let topo = b.finalize(&mut r);
        topo.validate().expect("valid");
        assert_eq!(topo.depth(), 0);
    }
}
