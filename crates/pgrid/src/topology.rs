//! The logical P-Grid trie: peer paths, replica sets and routing tables.
//!
//! A [`Topology`] is the global view of a constructed P-Grid network —
//! which peer owns which path π(p), who replicates whom (σ(p)), and which
//! routing references each peer holds at each level of its path. Real
//! peers only ever see their own slice ([`Topology::view`]); the global
//! object exists so tests and experiments can validate invariants and
//! compute ground truth.
//!
//! Invariants (checked by [`Topology::validate`]):
//!
//! * every peer has a path; the set of **distinct** paths is prefix-free
//!   (no path is a proper prefix of another), and
//! * the distinct paths cover the whole key space: Σ 2^(−|π|) = 1, so
//!   every key has exactly one responsible path;
//! * every replica set contains every peer with that path;
//! * a routing reference of peer `p` at level `l` points to a peer whose
//!   path agrees with π(p) on the first `l` bits and differs at bit `l`.

use crate::bits::BitString;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Logical peer identifier; dense, convertible to a `netsim` node index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(pub u32);

impl PeerId {
    #[inline]
    pub fn from_index(i: usize) -> PeerId {
        PeerId(u32::try_from(i).expect("peer index fits in u32"))
    }

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Errors detected by [`Topology::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two distinct paths where one is a prefix of the other.
    PrefixOverlap {
        shorter: BitString,
        longer: BitString,
    },
    /// The distinct paths do not cover the key space.
    IncompleteCoverage {
        covered_fraction_num: u64,
        covered_fraction_den: u64,
    },
    /// A routing reference violates the level agreement rule.
    BadReference {
        peer: PeerId,
        level: usize,
        target: PeerId,
    },
    /// A replica set disagrees with path equality.
    BadReplicaSet { peer: PeerId },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PrefixOverlap { shorter, longer } => {
                write!(f, "path {shorter} is a prefix of path {longer}")
            }
            TopologyError::IncompleteCoverage {
                covered_fraction_num,
                covered_fraction_den,
            } => write!(
                f,
                "paths cover {covered_fraction_num}/{covered_fraction_den} of the key space"
            ),
            TopologyError::BadReference {
                peer,
                level,
                target,
            } => {
                write!(
                    f,
                    "peer {peer} level-{level} reference to {target} is invalid"
                )
            }
            TopologyError::BadReplicaSet { peer } => {
                write!(f, "replica set of {peer} is inconsistent")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A peer's private view of the overlay: its path, replicas and routing
/// references — everything the routing algorithm may legally consult.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerView {
    pub id: PeerId,
    pub path: BitString,
    /// σ(p): other peers with the same path.
    pub replicas: Vec<PeerId>,
    /// `refs[l]`: peers on the other side of the tree at level `l`
    /// (their paths agree with ours on `l` bits and differ at bit `l`).
    pub refs: Vec<Vec<PeerId>>,
}

impl PeerView {
    /// Whether this peer is responsible for `key`.
    pub fn is_responsible(&self, key: &BitString) -> bool {
        self.path.is_prefix_of(key)
    }

    /// Greedy prefix-routing decision for `key`: `None` when this peer is
    /// responsible, otherwise the candidate references to forward to.
    pub fn forwarding_level(&self, key: &BitString) -> Option<usize> {
        if self.is_responsible(key) {
            return None;
        }
        Some(self.path.common_prefix_len(key))
    }

    /// Candidates for forwarding a message about `key`, or an empty slice
    /// when the routing table has a hole at the needed level.
    pub fn candidates(&self, key: &BitString) -> &[PeerId] {
        match self.forwarding_level(key) {
            None => &[],
            Some(l) => self.refs.get(l).map(Vec::as_slice).unwrap_or(&[]),
        }
    }
}

/// Global view of a constructed P-Grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    paths: Vec<BitString>,
    /// peers per distinct path, i.e. the replica sets keyed by path.
    groups: BTreeMap<BitString, Vec<PeerId>>,
    /// routing[peer][level] = referenced peers on the other side.
    routing: Vec<Vec<Vec<PeerId>>>,
}

impl Topology {
    /// Build a balanced P-Grid over `n` peers with paths of depth
    /// ⌊log₂ n⌋ and `refs_per_level` sampled references per level.
    ///
    /// With `n` not a power of two, the surplus peers become replicas,
    /// mirroring how a real P-Grid absorbs population growth.
    ///
    /// # Panics
    /// Panics if `n == 0` or `refs_per_level == 0`.
    pub fn balanced<R: Rng + ?Sized>(n: usize, refs_per_level: usize, rng: &mut R) -> Topology {
        assert!(n > 0, "need at least one peer");
        assert!(refs_per_level > 0, "need at least one reference per level");
        let depth = if n <= 1 { 0 } else { n.ilog2() as usize };
        let leaves = 1usize << depth;
        let paths: Vec<BitString> = (0..n)
            .map(|i| BitString::from_u64((i % leaves) as u64, depth))
            .collect();
        Topology::from_paths(paths, refs_per_level, rng)
    }

    /// Build from explicit per-peer paths (used by the construction
    /// algorithm and by data-adapted topologies).
    pub fn from_paths<R: Rng + ?Sized>(
        paths: Vec<BitString>,
        refs_per_level: usize,
        rng: &mut R,
    ) -> Topology {
        let mut groups: BTreeMap<BitString, Vec<PeerId>> = BTreeMap::new();
        for (i, p) in paths.iter().enumerate() {
            groups
                .entry(p.clone())
                .or_default()
                .push(PeerId::from_index(i));
        }
        let mut topo = Topology {
            paths,
            groups,
            routing: Vec::new(),
        };
        topo.rebuild_routing(refs_per_level, rng);
        topo
    }

    /// Build a data-adapted (possibly unbalanced) trie: split any region
    /// holding more than `max_load` of the given keys, then spread the
    /// `n` peers over the resulting leaf regions proportionally to load.
    /// This models P-Grid's storage load balancing (§2 "index
    /// load-balancing").
    pub fn adapted<R: Rng + ?Sized>(
        keys: &[BitString],
        n: usize,
        max_load: usize,
        max_depth: usize,
        refs_per_level: usize,
        rng: &mut R,
    ) -> Topology {
        assert!(n > 0 && max_load > 0);
        // Recursively split the key space on load.
        let mut leaves: Vec<(BitString, usize)> = Vec::new();
        let mut stack = vec![BitString::empty()];
        while let Some(region) = stack.pop() {
            let load = keys.iter().filter(|k| region.is_prefix_of(k)).count();
            if load > max_load && region.len() < max_depth {
                stack.push(region.child(false));
                stack.push(region.child(true));
            } else {
                leaves.push((region, load));
            }
        }
        leaves.sort_by(|a, b| a.0.cmp(&b.0));
        // Assign peers to leaves proportionally to load (every leaf gets
        // at least one peer so coverage stays complete).
        let total_load: usize = leaves.iter().map(|(_, l)| l.max(&1)).sum();
        let mut assignment: Vec<BitString> = Vec::with_capacity(n);
        let mut counts: Vec<usize> = leaves
            .iter()
            .map(|(_, l)| ((*l).max(1) * n / total_load).max(1))
            .collect();
        // Adjust rounding drift.
        while counts.iter().sum::<usize>() > n.max(leaves.len()) {
            let i = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .expect("non-empty");
            if counts[i] > 1 {
                counts[i] -= 1;
            } else {
                break;
            }
        }
        while counts.iter().sum::<usize>() < n {
            let i = counts
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .expect("non-empty");
            counts[i] += 1;
        }
        for ((path, _), c) in leaves.iter().zip(&counts) {
            for _ in 0..*c {
                assignment.push(path.clone());
            }
        }
        assignment.truncate(n.max(leaves.len()));
        Topology::from_paths(assignment, refs_per_level, rng)
    }

    /// Build from explicit paths *and* explicit routing tables, as
    /// produced by the decentralized construction in [`crate::construct`].
    /// Illegal references (wrong side, wrong level) are dropped rather
    /// than trusted.
    pub fn from_paths_and_routing(
        paths: Vec<BitString>,
        routing: Vec<Vec<Vec<PeerId>>>,
    ) -> Topology {
        assert_eq!(paths.len(), routing.len(), "one routing table per peer");
        let mut groups: BTreeMap<BitString, Vec<PeerId>> = BTreeMap::new();
        for (i, p) in paths.iter().enumerate() {
            groups
                .entry(p.clone())
                .or_default()
                .push(PeerId::from_index(i));
        }
        let mut sanitized = Vec::with_capacity(routing.len());
        for (i, levels) in routing.into_iter().enumerate() {
            let path = &paths[i];
            let mut clean: Vec<Vec<PeerId>> = vec![Vec::new(); path.len()];
            for (l, refs) in levels.into_iter().enumerate().take(path.len()) {
                let sib = path.sibling_at(l);
                for r in refs {
                    let tp = &paths[r.index()];
                    if (sib.is_prefix_of(tp) || tp.is_prefix_of(&sib)) && !clean[l].contains(&r) {
                        clean[l].push(r);
                    }
                }
            }
            sanitized.push(clean);
        }
        Topology {
            paths,
            groups,
            routing: sanitized,
        }
    }

    /// Re-sample all routing tables with `refs_per_level` entries per
    /// level.
    pub fn rebuild_routing<R: Rng + ?Sized>(&mut self, refs_per_level: usize, rng: &mut R) {
        let n = self.paths.len();
        let mut routing = Vec::with_capacity(n);
        for i in 0..n {
            let path = &self.paths[i];
            let mut levels = Vec::with_capacity(path.len());
            for l in 0..path.len() {
                let sibling = path.sibling_at(l);
                // Peers whose path starts with (or is a prefix of) the
                // sibling region.
                let mut pool: Vec<PeerId> = self
                    .groups
                    .iter()
                    .filter(|(p, _)| sibling.is_prefix_of(p) || p.is_prefix_of(&sibling))
                    .flat_map(|(_, peers)| peers.iter().copied())
                    .collect();
                pool.shuffle(rng);
                pool.truncate(refs_per_level);
                levels.push(pool);
            }
            routing.push(levels);
        }
        self.routing = routing;
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Path of a peer.
    pub fn path(&self, peer: PeerId) -> &BitString {
        &self.paths[peer.index()]
    }

    /// Maximum path depth in the network (|Π| in the paper's O(log |Π|)).
    pub fn depth(&self) -> usize {
        self.paths.iter().map(BitString::len).max().unwrap_or(0)
    }

    /// Distinct paths with their replica groups.
    pub fn groups(&self) -> impl Iterator<Item = (&BitString, &[PeerId])> {
        self.groups.iter().map(|(p, g)| (p, g.as_slice()))
    }

    /// All peers responsible for `key` (the replica set of the covering
    /// path); empty only if coverage is incomplete.
    pub fn responsible(&self, key: &BitString) -> &[PeerId] {
        self.groups
            .iter()
            .find(|(p, _)| p.is_prefix_of(key))
            .map(|(_, g)| g.as_slice())
            .unwrap_or(&[])
    }

    /// A peer's private view (path + replicas + routing refs).
    pub fn view(&self, peer: PeerId) -> PeerView {
        let path = self.paths[peer.index()].clone();
        let replicas = self
            .groups
            .get(&path)
            .map(|g| g.iter().copied().filter(|p| *p != peer).collect())
            .unwrap_or_default();
        PeerView {
            id: peer,
            path,
            replicas,
            refs: self.routing[peer.index()].clone(),
        }
    }

    /// Check all structural invariants.
    pub fn validate(&self) -> Result<(), TopologyError> {
        // Prefix-freeness of distinct paths.
        let distinct: Vec<&BitString> = self.groups.keys().collect();
        for (i, a) in distinct.iter().enumerate() {
            for b in distinct.iter().skip(i + 1) {
                if a.is_prefix_of(b) {
                    return Err(TopologyError::PrefixOverlap {
                        shorter: (*a).clone(),
                        longer: (*b).clone(),
                    });
                }
                if b.is_prefix_of(a) {
                    return Err(TopologyError::PrefixOverlap {
                        shorter: (*b).clone(),
                        longer: (*a).clone(),
                    });
                }
            }
        }
        // Coverage: Σ 2^(depth - |π|) over distinct paths must be 2^depth.
        let depth = self.depth();
        if depth <= 63 {
            let den: u64 = 1u64 << depth;
            let num: u64 = distinct.iter().map(|p| 1u64 << (depth - p.len())).sum();
            if num != den {
                return Err(TopologyError::IncompleteCoverage {
                    covered_fraction_num: num,
                    covered_fraction_den: den,
                });
            }
        }
        // Routing reference legality.
        for (i, levels) in self.routing.iter().enumerate() {
            let peer = PeerId::from_index(i);
            let path = &self.paths[i];
            for (l, refs) in levels.iter().enumerate() {
                for target in refs {
                    let tp = &self.paths[target.index()];
                    let sib = path.sibling_at(l);
                    if !(sib.is_prefix_of(tp) || tp.is_prefix_of(&sib)) {
                        return Err(TopologyError::BadReference {
                            peer,
                            level: l,
                            target: *target,
                        });
                    }
                }
            }
        }
        // Replica sets.
        for (path, group) in &self.groups {
            for p in group {
                if &self.paths[p.index()] != path {
                    return Err(TopologyError::BadReplicaSet { peer: *p });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn balanced_power_of_two_has_one_peer_per_leaf() {
        let t = Topology::balanced(8, 2, &mut rng());
        assert_eq!(t.len(), 8);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.groups().count(), 8);
        t.validate().expect("valid topology");
    }

    #[test]
    fn balanced_non_power_of_two_creates_replicas() {
        let t = Topology::balanced(11, 2, &mut rng());
        assert_eq!(t.len(), 11);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.groups().count(), 8);
        let replicated: usize = t.groups().filter(|(_, g)| g.len() > 1).count();
        assert_eq!(replicated, 3);
        t.validate().expect("valid topology");
    }

    #[test]
    fn single_peer_owns_everything() {
        let t = Topology::balanced(1, 1, &mut rng());
        assert_eq!(t.depth(), 0);
        let key = BitString::parse("010101");
        assert_eq!(t.responsible(&key), &[PeerId(0)]);
        t.validate().expect("valid topology");
    }

    #[test]
    fn responsible_matches_prefix() {
        let t = Topology::balanced(16, 2, &mut rng());
        let key = BitString::parse("01100110");
        let peers = t.responsible(&key);
        assert!(!peers.is_empty());
        for p in peers {
            assert!(t.path(*p).is_prefix_of(&key));
        }
    }

    #[test]
    fn views_have_legal_references() {
        let t = Topology::balanced(32, 3, &mut rng());
        for i in 0..32 {
            let v = t.view(PeerId::from_index(i));
            assert_eq!(v.refs.len(), v.path.len());
            for (l, refs) in v.refs.iter().enumerate() {
                assert!(!refs.is_empty(), "level {l} of peer {i} is empty");
                for r in refs {
                    let tp = t.path(*r);
                    assert_eq!(v.path.common_prefix_len(tp), l);
                }
            }
        }
    }

    #[test]
    fn view_replicas_exclude_self() {
        let t = Topology::balanced(12, 2, &mut rng());
        for i in 0..12 {
            let v = t.view(PeerId::from_index(i));
            assert!(!v.replicas.contains(&v.id));
        }
    }

    #[test]
    fn candidates_empty_when_responsible() {
        let t = Topology::balanced(8, 2, &mut rng());
        let v = t.view(PeerId(0));
        let mut own_key = v.path.clone();
        own_key.push(true);
        assert!(v.is_responsible(&own_key));
        assert!(v.candidates(&own_key).is_empty());
        assert_eq!(v.forwarding_level(&own_key), None);
    }

    #[test]
    fn adapted_splits_hot_regions() {
        // 90 % of keys start with 1, spread uniformly within each side:
        // the 1-side should need deeper splits.
        let mut keys = Vec::new();
        for i in 0..900u64 {
            keys.push(BitString::from_u64((1 << 15) | ((i * 36) & 0x7FFF), 16));
        }
        for i in 0..100u64 {
            keys.push(BitString::from_u64((i * 327) & 0x7FFF, 16));
        }
        let t = Topology::adapted(&keys, 64, 50, 12, 2, &mut rng());
        t.validate().expect("valid adapted topology");
        let depth_of = |prefix: &str| {
            t.groups()
                .filter(|(p, _)| BitString::parse(prefix).is_prefix_of(p))
                .map(|(p, _)| p.len())
                .max()
                .unwrap_or(0)
        };
        assert!(
            depth_of("1") > depth_of("0"),
            "hot side should split deeper: {} vs {}",
            depth_of("1"),
            depth_of("0")
        );
    }

    #[test]
    fn validate_catches_prefix_overlap() {
        let paths = vec![BitString::parse("0"), BitString::parse("01")];
        let t = Topology::from_paths(paths, 1, &mut rng());
        assert!(matches!(
            t.validate(),
            Err(TopologyError::PrefixOverlap { .. })
        ));
    }

    #[test]
    fn validate_catches_incomplete_coverage() {
        let paths = vec![BitString::parse("00"), BitString::parse("01")];
        let t = Topology::from_paths(paths, 1, &mut rng());
        assert!(matches!(
            t.validate(),
            Err(TopologyError::IncompleteCoverage { .. })
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        /// Balanced topologies of any size validate and give every key a
        /// responsible replica group.
        #[test]
        fn balanced_always_valid(n in 1usize..200, seed in 0u64..50, key_bits in "[01]{20}") {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let t = Topology::balanced(n, 2, &mut rng);
            prop_assert!(t.validate().is_ok());
            let key = BitString::parse(&key_bits);
            prop_assert!(!t.responsible(&key).is_empty());
        }

        /// Every peer is in the replica group of its own path.
        #[test]
        fn groups_partition_peers(n in 1usize..100, seed in 0u64..20) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let t = Topology::balanced(n, 2, &mut rng);
            let total: usize = t.groups().map(|(_, g)| g.len()).sum();
            prop_assert_eq!(total, n);
        }
    }
}
