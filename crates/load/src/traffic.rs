//! The open-loop traffic driver over the concurrent-session
//! multiplexer.
//!
//! [`run_open_loop`] merges an [`ArrivalProcess`] with the
//! [`SessionPool`]'s event stream in simulated-time order: arrivals
//! earlier than the pool's next event are admitted (or queued, or
//! rejected) first; otherwise the pool advances one delivered reply.
//! Admission control is a concurrency cap plus a bounded FIFO wait
//! queue; per-session budgets (overlay messages, simulated-time
//! deadline) cancel through the pool's drop-cancels-replies path, so a
//! cancelled session's still-scheduled replies vanish and its charged
//! work stays charged exactly once. Origins are assigned round-robin
//! over the configured origin set and the pool replenishes windows
//! round-robin across sessions, so no origin can starve another — the
//! [`LoadReport`] records the per-origin slices to prove it.

use crate::arrival::ArrivalProcess;
use crate::report::{LatencySummary, LoadReport, OriginStats};
use gridvine_core::pool::{PoolEvent, SessionId, SessionPool};
use gridvine_core::{GridVineSystem, QueryOptions, QueryPlan, Strategy};
use gridvine_netsim::{SimDuration, SimTime};
use gridvine_pgrid::PeerId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Tunables of one open-loop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadConfig {
    /// Total sessions the arrival process submits.
    pub sessions: usize,
    /// The arrival process (open loop: submission never waits for
    /// completions).
    pub arrivals: ArrivalProcess,
    /// Distinct origin peers, assigned round-robin (`PeerId(i %
    /// origins)`); must not exceed the system's peer count.
    pub origins: usize,
    /// Admission cap: at most this many sessions live in the pool.
    pub max_concurrent: usize,
    /// Per-origin cap on concurrently live sessions beside the global
    /// `max_concurrent` cap (`None` = no per-origin limit). An arrival
    /// whose origin is at quota waits in the FIFO queue even when
    /// global slots are free, and promotion skips entries whose origin
    /// is still at quota — so one hot origin cannot monopolize the
    /// admission slots.
    #[serde(default)]
    pub origin_quota: Option<usize>,
    /// Bounded FIFO wait queue behind the cap; an arrival finding the
    /// queue full is rejected outright (0 = queue-or-reject degenerates
    /// to plain reject).
    pub queue_capacity: usize,
    /// Cancel a session once its charged overlay messages exceed this.
    pub message_budget: Option<u64>,
    /// Cancel a session once simulated time passes `submit + deadline`.
    pub deadline: Option<SimDuration>,
    /// Per-session scheduler window (in-flight subqueries).
    pub window: usize,
    /// Reformulation strategy for every session.
    pub strategy: Strategy,
    /// Seed of the arrival process.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            sessions: 100,
            arrivals: ArrivalProcess::Poisson { rate: 50.0 },
            origins: 8,
            max_concurrent: 16,
            origin_quota: None,
            queue_capacity: 32,
            message_budget: None,
            deadline: None,
            window: 4,
            strategy: Strategy::Iterative,
            seed: 1,
        }
    }
}

/// Bookkeeping of one submitted-and-opened session.
struct Track {
    submit: SimTime,
    origin: usize,
}

/// Drive `plans` through `sys` open-loop under `cfg` (plans are
/// assigned round-robin when fewer than `cfg.sessions`). Deterministic:
/// the same system, plans and config produce the identical
/// [`LoadReport`] transcript.
pub fn run_open_loop(
    sys: &mut GridVineSystem,
    plans: &[QueryPlan],
    cfg: &LoadConfig,
) -> LoadReport {
    assert!(cfg.origins >= 1, "need at least one origin");
    assert!(cfg.max_concurrent >= 1, "need at least one admission slot");
    assert!(
        cfg.origin_quota.is_none_or(|q| q >= 1),
        "per-origin quota must admit at least one session"
    );
    assert!(!plans.is_empty(), "need at least one plan");
    let opts = QueryOptions::new()
        .strategy(cfg.strategy)
        .window(cfg.window);
    let instants = cfg.arrivals.instants(cfg.sessions, cfg.seed);

    let mut pool = SessionPool::new();
    let mut track: HashMap<SessionId, Track> = HashMap::new();
    // (submit instant, origin index, plan index) of arrivals waiting
    // behind the admission cap.
    let mut waiting: VecDeque<(SimTime, usize, usize)> = VecDeque::new();

    let mut report = LoadReport::default();
    let mut latencies: Vec<SimDuration> = Vec::new();
    let mut waits: Vec<SimDuration> = Vec::new();
    let mut origin_submitted = vec![0usize; cfg.origins];
    let mut origin_completed = vec![0usize; cfg.origins];
    let mut origin_latency = vec![SimDuration::ZERO; cfg.origins];
    let mut makespan = SimTime::ZERO;

    // Open one session; on refusal (invalid plan) no session exists.
    let admit = |sys: &mut GridVineSystem,
                 pool: &mut SessionPool,
                 track: &mut HashMap<SessionId, Track>,
                 report: &mut LoadReport,
                 submit: SimTime,
                 origin: usize,
                 plan: usize,
                 at: SimTime| {
        let plan = &plans[plan % plans.len()];
        match pool.open_at(sys, PeerId(origin as u32), plan, &opts, at) {
            Ok(id) => {
                track.insert(id, Track { submit, origin });
            }
            Err(_) => report.refused += 1,
        }
    };

    // True when `origin` may take another live session under the
    // per-origin quota (always true without one).
    let under_quota = |pool: &SessionPool, track: &HashMap<SessionId, Track>, origin: usize| {
        cfg.origin_quota.is_none_or(|q| {
            pool.live_sessions()
                .filter(|id| track[id].origin == origin)
                .count()
                < q
        })
    };

    // Settle one pool event plus the budget/deadline scans and waiting
    // promotions it unlocks. Returns the event instant.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        ev: PoolEvent,
        sys: &mut GridVineSystem,
        pool: &mut SessionPool,
        cfg: &LoadConfig,
        track: &HashMap<SessionId, Track>,
        report: &mut LoadReport,
        latencies: &mut Vec<SimDuration>,
        origin_completed: &mut [usize],
        origin_latency: &mut [SimDuration],
    ) -> SimTime {
        let t = ev.at();
        match ev {
            PoolEvent::Delivered { session, .. } => {
                if let Some(budget) = cfg.message_budget {
                    let over = pool
                        .session_stats(session)
                        .is_some_and(|s| s.messages > budget);
                    if over && pool.cancel(sys, session) {
                        report.cancelled_budget += 1;
                        if let Some(o) = pool.take_outcome(session) {
                            report.messages += o.stats.messages;
                        }
                    }
                }
            }
            PoolEvent::Finished { session, at } => {
                let tr = &track[&session];
                let latency = at.saturating_since(tr.submit);
                report.completed += 1;
                latencies.push(latency);
                origin_completed[tr.origin] += 1;
                origin_latency[tr.origin] += latency;
                if let Some(o) = pool.take_outcome(session) {
                    report.rows += o.rows.len();
                    report.messages += o.stats.messages;
                }
            }
            PoolEvent::Failed { session, .. } => {
                report.failed += 1;
                if let Some(o) = pool.take_outcome(session) {
                    report.messages += o.stats.messages;
                }
            }
        }
        // Deadline scan at the new simulated frontier.
        if let Some(deadline) = cfg.deadline {
            let expired: Vec<SessionId> = pool
                .live_sessions()
                .filter(|id| track[id].submit + deadline <= t)
                .collect();
            for id in expired {
                if pool.cancel(sys, id) {
                    report.cancelled_deadline += 1;
                    if let Some(o) = pool.take_outcome(id) {
                        report.messages += o.stats.messages;
                    }
                }
            }
        }
        t
    }

    // Main merge loop: arrivals and pool events in simulated-time order.
    for (i, &at) in instants.iter().enumerate() {
        // Settle everything the pool has scheduled before this arrival.
        while let Some(t) = pool.next_instant(sys) {
            if t > at {
                break;
            }
            let ev = pool.step(sys).expect("next_instant promised an event");
            let t = settle(
                ev,
                sys,
                &mut pool,
                cfg,
                &track,
                &mut report,
                &mut latencies,
                &mut origin_completed,
                &mut origin_latency,
            );
            makespan = makespan.max(t);
            // Freed capacity promotes waiting arrivals, FIFO among the
            // origins currently under quota.
            while pool.len() < cfg.max_concurrent {
                let Some(pos) = waiting
                    .iter()
                    .position(|&(_, o, _)| under_quota(&pool, &track, o))
                else {
                    break;
                };
                let (submit, origin, plan) = waiting.remove(pos).expect("position is in range");
                report.queued += 1;
                waits.push(t.saturating_since(submit));
                admit(
                    sys,
                    &mut pool,
                    &mut track,
                    &mut report,
                    submit,
                    origin,
                    plan,
                    t.max(submit),
                );
            }
        }
        // Admission control for the arrival itself.
        let origin = i % cfg.origins;
        report.submitted += 1;
        origin_submitted[origin] += 1;
        if pool.len() < cfg.max_concurrent && under_quota(&pool, &track, origin) {
            report.admitted += 1;
            admit(sys, &mut pool, &mut track, &mut report, at, origin, i, at);
        } else if waiting.len() < cfg.queue_capacity {
            waiting.push_back((at, origin, i));
        } else {
            report.rejected += 1;
        }
        makespan = makespan.max(at);
    }
    // Arrivals exhausted: drain the pool (and the wait queue) dry.
    while let Some(ev) = pool.step(sys) {
        let t = settle(
            ev,
            sys,
            &mut pool,
            cfg,
            &track,
            &mut report,
            &mut latencies,
            &mut origin_completed,
            &mut origin_latency,
        );
        makespan = makespan.max(t);
        while pool.len() < cfg.max_concurrent {
            let Some(pos) = waiting
                .iter()
                .position(|&(_, o, _)| under_quota(&pool, &track, o))
            else {
                break;
            };
            let (submit, origin, plan) = waiting.remove(pos).expect("position is in range");
            report.queued += 1;
            waits.push(t.saturating_since(submit));
            admit(
                sys,
                &mut pool,
                &mut track,
                &mut report,
                submit,
                origin,
                plan,
                t.max(submit),
            );
        }
    }

    report.latency = LatencySummary::from_samples(&mut latencies);
    report.queue_wait = LatencySummary::from_samples(&mut waits);
    report.makespan = makespan.saturating_since(SimTime::ZERO);
    report.per_origin = (0..cfg.origins)
        .map(|o| OriginStats {
            origin: o,
            submitted: origin_submitted[o],
            completed: origin_completed[o],
            mean_latency: if origin_completed[o] == 0 {
                SimDuration::ZERO
            } else {
                SimDuration(origin_latency[o].0 / origin_completed[o] as u64)
            },
        })
        .collect();
    debug_assert_eq!(sys.pending_events(), 0, "drained pool leaves no residue");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvine_core::GridVineConfig;
    use gridvine_rdf::{Term, Triple, TriplePatternQuery};
    use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

    fn seeded_system() -> GridVineSystem {
        let mut sys = GridVineSystem::new(GridVineConfig::default());
        let p = PeerId(0);
        sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))
            .unwrap();
        sys.insert_schema(p, Schema::new("EMP", ["SystematicName"]))
            .unwrap();
        sys.insert_mapping(
            p,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        )
        .unwrap();
        sys.insert_triple(
            p,
            Triple::new(
                "seq:A78712",
                "EMBL#Organism",
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
        sys
    }

    fn plans() -> Vec<QueryPlan> {
        vec![QueryPlan::search(TriplePatternQuery::example_aspergillus())]
    }

    #[test]
    fn open_loop_is_deterministic() {
        let cfg = LoadConfig {
            sessions: 40,
            ..LoadConfig::default()
        };
        let a = run_open_loop(&mut seeded_system(), &plans(), &cfg);
        let b = run_open_loop(&mut seeded_system(), &plans(), &cfg);
        assert_eq!(format!("{a}"), format!("{b}"));
        assert_eq!(a.submitted, 40);
        assert_eq!(
            a.completed
                + a.failed
                + a.cancelled_deadline
                + a.cancelled_budget
                + a.rejected
                + a.refused,
            40
        );
    }

    #[test]
    fn admission_cap_rejects_under_overload() {
        let cfg = LoadConfig {
            sessions: 60,
            arrivals: ArrivalProcess::Deterministic {
                gap: SimDuration::from_micros(1),
            },
            max_concurrent: 2,
            queue_capacity: 2,
            ..LoadConfig::default()
        };
        let r = run_open_loop(&mut seeded_system(), &plans(), &cfg);
        assert!(r.rejected > 0, "overload must reject: {r}");
        assert_eq!(
            r.completed
                + r.failed
                + r.cancelled_deadline
                + r.cancelled_budget
                + r.rejected
                + r.refused,
            60
        );
    }

    #[test]
    fn deadline_cancels_and_leaves_no_residue() {
        let cfg = LoadConfig {
            sessions: 30,
            arrivals: ArrivalProcess::Deterministic {
                gap: SimDuration::from_micros(10),
            },
            deadline: Some(SimDuration::from_micros(1)),
            ..LoadConfig::default()
        };
        let mut sys = seeded_system();
        let r = run_open_loop(&mut sys, &plans(), &cfg);
        assert!(r.cancelled_deadline > 0, "tight deadline must cancel: {r}");
        assert_eq!(sys.pending_events(), 0);
    }

    #[test]
    fn budget_cancels_expensive_sessions() {
        let cfg = LoadConfig {
            sessions: 20,
            message_budget: Some(1),
            ..LoadConfig::default()
        };
        let mut sys = seeded_system();
        let r = run_open_loop(&mut sys, &plans(), &cfg);
        assert!(r.cancelled_budget > 0, "1-message budget must cancel: {r}");
        assert_eq!(sys.pending_events(), 0);
    }

    #[test]
    fn origin_quota_queues_and_conserves() {
        let base = LoadConfig {
            sessions: 48,
            origins: 4,
            max_concurrent: 8,
            queue_capacity: 48,
            arrivals: ArrivalProcess::Deterministic {
                gap: SimDuration::from_micros(1),
            },
            ..LoadConfig::default()
        };
        let quota = LoadConfig {
            origin_quota: Some(1),
            ..base.clone()
        };
        let r = run_open_loop(&mut seeded_system(), &plans(), &quota);
        // The quota forces queueing even while global slots are free,
        // and every session still lands in exactly one bucket.
        let free = run_open_loop(&mut seeded_system(), &plans(), &base);
        assert!(r.queued > free.queued, "quota must queue: {r} vs {free}");
        assert_eq!(
            r.completed
                + r.failed
                + r.cancelled_deadline
                + r.cancelled_budget
                + r.rejected
                + r.refused,
            48
        );
        assert_eq!(r.completed, 48, "generous queue completes everything: {r}");
        assert!(
            (r.fairness() - 1.0).abs() < 1e-12,
            "round-robin under quota stays fair: {}",
            r.fairness()
        );
    }

    #[test]
    fn fairness_across_origins_is_high_when_unloaded() {
        let cfg = LoadConfig {
            sessions: 32,
            origins: 4,
            arrivals: ArrivalProcess::Deterministic {
                gap: SimDuration::from_secs(1),
            },
            ..LoadConfig::default()
        };
        let r = run_open_loop(&mut seeded_system(), &plans(), &cfg);
        assert_eq!(r.completed, 32);
        assert!(
            (r.fairness() - 1.0).abs() < 1e-12,
            "fairness {}",
            r.fairness()
        );
    }
}
