//! # gridvine-load
//!
//! Open-loop traffic generation for the GridVine PDMS — the
//! latency-under-load companion to the single-query experiment
//! harness.
//!
//! The paper's deployment (§2.3) reports per-query latency CDFs from a
//! live multi-peer system where queries *overlap*: many origins submit
//! concurrently and the mediation layer serves them interleaved. The
//! per-query executor measures a session in isolation; this crate
//! reproduces the overlapped regime on the simulated clock:
//!
//! * [`arrival::ArrivalProcess`] — seeded Poisson or deterministic
//!   arrival instants (open loop: submission pressure is independent
//!   of completions, so queueing is visible instead of self-throttled);
//! * [`traffic::run_open_loop`] — merges arrivals with the
//!   [`SessionPool`](gridvine_core::pool::SessionPool) event stream in
//!   simulated-time order, applying admission control (a concurrency
//!   cap plus a bounded FIFO wait queue, reject beyond), per-session
//!   budgets (overlay-message cap, simulated-time deadline) enforced
//!   through the pool's cancel path, and round-robin origin assignment;
//! * [`report::LoadReport`] — the run's accounting: every submitted
//!   session lands in exactly one terminal bucket, the headline is the
//!   completion-latency CDF (p50/p95/p99 from real per-session
//!   completion instants under contention), plus queue-wait
//!   percentiles and per-origin fairness slices.
//!
//! Plug a wide-area latency model into the scheduler via
//! [`GridVineConfig::latency`](gridvine_core::GridVineConfig) (e.g.
//! [`LatencyConfig::planetlab_2007`](gridvine_netsim::LatencyConfig))
//! to measure the CDF over regional WAN delays rather than the flat
//! per-message model. Everything is deterministic: the same system,
//! plans and [`traffic::LoadConfig`] produce an identical transcript —
//! CI runs the open-loop example twice and diffs the output.
//!
//! ```
//! use gridvine_core::{GridVineConfig, GridVineSystem, QueryPlan};
//! use gridvine_load::prelude::*;
//! use gridvine_netsim::SimDuration;
//! use gridvine_pgrid::PeerId;
//! use gridvine_rdf::{Term, Triple, TriplePatternQuery};
//! use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
//!
//! let mut sys = GridVineSystem::new(GridVineConfig::default());
//! let p = PeerId(0);
//! sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))?;
//! sys.insert_schema(p, Schema::new("EMP", ["SystematicName"]))?;
//! sys.insert_mapping(p, "EMBL", "EMP", MappingKind::Equivalence, Provenance::Manual,
//!     vec![Correspondence::new("Organism", "SystematicName")])?;
//! sys.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
//!     Term::literal("Aspergillus niger")))?;
//!
//! let plans = vec![QueryPlan::search(TriplePatternQuery::example_aspergillus())];
//! let cfg = LoadConfig {
//!     sessions: 50,
//!     arrivals: ArrivalProcess::Poisson { rate: 200.0 },
//!     origins: 4,
//!     max_concurrent: 8,
//!     ..LoadConfig::default()
//! };
//! let report = run_open_loop(&mut sys, &plans, &cfg);
//! assert_eq!(report.submitted, 50);
//! assert!(report.latency.p99 >= report.latency.p50);
//! # Ok::<(), gridvine_core::SystemError>(())
//! ```

pub mod arrival;
pub mod report;
pub mod traffic;

/// Glob-import surface.
pub mod prelude {
    pub use crate::arrival::ArrivalProcess;
    pub use crate::report::{LatencySummary, LoadReport, OriginStats};
    pub use crate::traffic::{run_open_loop, LoadConfig};
}

pub use arrival::ArrivalProcess;
pub use report::{LatencySummary, LoadReport, OriginStats};
pub use traffic::{run_open_loop, LoadConfig};
