//! Seeded open-loop arrival processes.
//!
//! An open-loop driver submits sessions at instants drawn from an
//! arrival process *regardless* of how fast the system drains them —
//! load is controlled by the process, not by completions, which is
//! what exposes queueing behaviour (closed-loop drivers self-throttle
//! and hide it). Both processes here are deterministic in
//! `(process, n, seed)`.

use gridvine_netsim::rng;
use gridvine_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How session arrival instants are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` sessions per simulated second
    /// (independent exponential inter-arrival gaps) — the classical
    /// open-loop model of independent clients.
    Poisson { rate: f64 },
    /// A fixed inter-arrival gap (a paced submission script); consumes
    /// no randomness.
    Deterministic { gap: SimDuration },
}

impl ArrivalProcess {
    /// The first `n` arrival instants, in nondecreasing order, starting
    /// one gap after the simulation epoch.
    pub fn instants(&self, n: usize, seed: u64) -> Vec<SimTime> {
        let mut r = rng::derive(seed, 0x0A1C);
        let mut at = SimTime::ZERO;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let gap = match *self {
                ArrivalProcess::Poisson { rate } => {
                    SimDuration::from_secs_f64(rng::exponential(&mut r, rate))
                }
                ArrivalProcess::Deterministic { gap } => gap,
            };
            at += gap;
            out.push(at);
        }
        out
    }

    /// Mean sessions per simulated second the process targets.
    pub fn rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Deterministic { gap } => {
                if gap.0 == 0 {
                    f64::INFINITY
                } else {
                    1.0 / gap.as_secs_f64()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_gaps_are_exact() {
        let p = ArrivalProcess::Deterministic {
            gap: SimDuration::from_millis(10),
        };
        let xs = p.instants(4, 7);
        assert_eq!(
            xs,
            vec![
                SimTime(10_000),
                SimTime(20_000),
                SimTime(30_000),
                SimTime(40_000)
            ]
        );
    }

    #[test]
    fn poisson_is_seeded_and_monotone() {
        let p = ArrivalProcess::Poisson { rate: 100.0 };
        let a = p.instants(50, 3);
        let b = p.instants(50, 3);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let c = p.instants(50, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 200.0 };
        let xs = p.instants(4000, 11);
        let span = xs.last().unwrap().as_secs_f64();
        let empirical = 4000.0 / span;
        assert!(
            (empirical - 200.0).abs() < 20.0,
            "empirical rate {empirical}"
        );
    }
}
