//! Load-test reporting: admission accounting, origin fairness and the
//! latency CDF under load.

use gridvine_netsim::SimDuration;
use std::fmt;

/// Nearest-rank percentiles over a latency sample set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    pub count: usize,
    pub p50: SimDuration,
    pub p95: SimDuration,
    pub p99: SimDuration,
    pub max: SimDuration,
}

impl LatencySummary {
    /// Summarize (sorts the samples in place). An empty sample set
    /// yields the all-zero summary.
    pub fn from_samples(samples: &mut [SimDuration]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let pick = |q: f64| {
            let rank = ((samples.len() as f64) * q).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        LatencySummary {
            count: samples.len(),
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms",
            self.count,
            self.p50.as_micros() as f64 / 1000.0,
            self.p95.as_micros() as f64 / 1000.0,
            self.p99.as_micros() as f64 / 1000.0,
            self.max.as_micros() as f64 / 1000.0,
        )
    }
}

/// Per-origin slice of the run (fairness accounting).
#[derive(Debug, Clone, Default)]
pub struct OriginStats {
    /// Origin peer index.
    pub origin: usize,
    pub submitted: usize,
    pub completed: usize,
    /// Mean completion latency of this origin's completed sessions.
    pub mean_latency: SimDuration,
}

/// Outcome of one open-loop run (see
/// [`run_open_loop`](crate::traffic::run_open_loop)): every submitted
/// session is accounted to exactly one of admitted-path ×
/// terminal-state, and the headline is the completion-latency CDF under
/// load, measured submit → final reply on the simulated clock.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Sessions the arrival process submitted.
    pub submitted: usize,
    /// Admitted straight into the pool on arrival.
    pub admitted: usize,
    /// Admitted after waiting in the bounded queue.
    pub queued: usize,
    /// Turned away (queue full at arrival).
    pub rejected: usize,
    /// Invalid plans refused at open (no session was created).
    pub refused: usize,
    /// Drained to completion.
    pub completed: usize,
    /// Ended with a unit failure.
    pub failed: usize,
    /// Cancelled at their simulated-time deadline.
    pub cancelled_deadline: usize,
    /// Cancelled on exceeding their message budget.
    pub cancelled_budget: usize,
    /// Solution rows delivered by completed sessions.
    pub rows: usize,
    /// Overlay messages charged across all sessions, including
    /// cancelled ones (work done before the cancel stays charged).
    pub messages: u64,
    /// Last simulated event instant of the run.
    pub makespan: SimDuration,
    /// Completion latency (submit → final reply) of completed sessions.
    pub latency: LatencySummary,
    /// Queue wait (submit → admission) of queued-then-admitted sessions.
    pub queue_wait: LatencySummary,
    /// Per-origin fairness slices, origin order.
    pub per_origin: Vec<OriginStats>,
}

impl LoadReport {
    /// Fraction of submitted sessions that completed.
    pub fn delivered_fraction(&self) -> f64 {
        if self.submitted == 0 {
            return 1.0;
        }
        self.completed as f64 / self.submitted as f64
    }

    /// Jain-style min/max fairness over per-origin completions:
    /// 1.0 = every origin completed equally many sessions, 0.0 = some
    /// origin was starved entirely (1.0 when nothing completed).
    pub fn fairness(&self) -> f64 {
        let max = self.per_origin.iter().map(|o| o.completed).max();
        let min = self.per_origin.iter().map(|o| o.completed).min();
        match (min, max) {
            (Some(min), Some(max)) if max > 0 => min as f64 / max as f64,
            _ => 1.0,
        }
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "submitted {} | admitted {} + queued {} + rejected {} + refused {}",
            self.submitted, self.admitted, self.queued, self.rejected, self.refused
        )?;
        writeln!(
            f,
            "completed {} | failed {} | cancelled: deadline {} budget {}",
            self.completed, self.failed, self.cancelled_deadline, self.cancelled_budget
        )?;
        writeln!(
            f,
            "rows {} | messages {} | makespan {:.3}s | delivered {:.3} | fairness {:.3}",
            self.rows,
            self.messages,
            self.makespan.as_secs_f64(),
            self.delivered_fraction(),
            self.fairness()
        )?;
        writeln!(f, "latency    {}", self.latency)?;
        writeln!(f, "queue wait {}", self.queue_wait)?;
        for o in &self.per_origin {
            writeln!(
                f,
                "  origin {:>3}: submitted {:>5} completed {:>5} mean {:.3}ms",
                o.origin,
                o.submitted,
                o.completed,
                o.mean_latency.as_micros() as f64 / 1000.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut xs: Vec<SimDuration> = (1..=100).map(SimDuration::from_millis).collect();
        let s = LatencySummary::from_samples(&mut xs);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, SimDuration::from_millis(50));
        assert_eq!(s.p95, SimDuration::from_millis(95));
        assert_eq!(s.p99, SimDuration::from_millis(99));
        assert_eq!(s.max, SimDuration::from_millis(100));
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_samples(&mut []);
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn fairness_bounds() {
        let mut r = LoadReport::default();
        assert_eq!(r.fairness(), 1.0);
        r.per_origin = vec![
            OriginStats {
                completed: 4,
                ..OriginStats::default()
            },
            OriginStats {
                completed: 2,
                ..OriginStats::default()
            },
        ];
        assert!((r.fairness() - 0.5).abs() < 1e-12);
    }
}
