//! The concurrent-session multiplexer: many [`QuerySession`](super::session::QuerySession)-shaped
//! executions from many origins, interleaved on the shared per-peer
//! event queues under one simulated clock.
//!
//! A standalone [`QuerySession`](super::session::QuerySession) borrows
//! the system mutably, so only one can run at a time. The
//! [`SessionPool`] lifts that restriction without forking the
//! scheduler: it owns the *state* of every in-flight session (a
//! [`SessionCore`](super::session) each — plan progress, window,
//! per-session stats, in-flight counter) and lends the system to one
//! session at a time, in a deterministic discipline:
//!
//! 1. **Replenish** every live session's window, round-robin in
//!    admission order, one unit per session per round. Each session's
//!    units are still issued in its own canonical order — the
//!    interleaving decides only *whose* unit is issued next, and all
//!    logical state (routing RNG, message charging, row admission)
//!    evolves at issue exactly as in the standalone scheduler.
//! 2. **Reap** sessions with nothing left in flight: a parked unit
//!    failure surfaces as [`PoolEvent::Failed`], a drained plan as
//!    [`PoolEvent::Finished`] (its [`QueryOutcome`] becomes available
//!    through [`SessionPool::take_outcome`]).
//! 3. **Deliver** the globally earliest scheduled reply across the
//!    live origins' queues (ties break by origin index, then FIFO
//!    within a queue) to its owning session — replies carry their
//!    [`SessionId`], since sessions issuing from the same origin share
//!    that origin's queue.
//!
//! A pool holding exactly one session performs the identical
//! (replenish, deliver) sequence the standalone session loop does, so
//! rows, messages, per-unit stats deltas and the system RNG stream are
//! bit-identical — `tests/load_protocol.rs` pins this property for
//! windows 1 and 4. Cancelling a session
//! ([`SessionPool::cancel`]) drops exactly its queued replies
//! (other sessions' survive) and writes its simulated clock back to
//! the origin peer, so rejected or deadline-cancelled sessions leave
//! `pending_events() == 0` residue and keep their partial stats
//! retrievable.
//!
//! See the lifecycle diagram in the [`super::sched`] module docs.

use super::exec::{ExecStats, QueryOptions, QueryOutcome};
use super::session::ResultEvent;
use super::session::SessionCore;
use super::{GridVineSystem, PeerId, SystemError};
use crate::plan::QueryPlan;
use gridvine_netsim::SimTime;

/// Identity of one pooled session, allocated by the system
/// monotonically across its lifetime (never reused). Tags every
/// scheduled reply so sessions sharing an origin queue stay disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub(crate) u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One observable step of the pool (see [`SessionPool::step`]).
#[derive(Debug)]
pub enum PoolEvent {
    /// A reply landed: the events one delivered unit produced, at its
    /// simulated completion instant.
    Delivered {
        session: SessionId,
        at: SimTime,
        events: Vec<ResultEvent>,
    },
    /// The session drained completely (plan done, every reply
    /// delivered); its outcome awaits [`SessionPool::take_outcome`].
    Finished { session: SessionId, at: SimTime },
    /// A unit of the session failed; everything it produced before the
    /// failure was already delivered. Its partial outcome awaits
    /// [`SessionPool::take_outcome`].
    Failed {
        session: SessionId,
        at: SimTime,
        error: SystemError,
    },
}

impl PoolEvent {
    /// The session this event belongs to.
    pub fn session(&self) -> SessionId {
        match self {
            PoolEvent::Delivered { session, .. }
            | PoolEvent::Finished { session, .. }
            | PoolEvent::Failed { session, .. } => *session,
        }
    }

    /// The simulated instant this event occurred at.
    pub fn at(&self) -> SimTime {
        match self {
            PoolEvent::Delivered { at, .. }
            | PoolEvent::Finished { at, .. }
            | PoolEvent::Failed { at, .. } => *at,
        }
    }
}

/// The concurrent-session multiplexer (see the [module docs](self)).
#[derive(Default)]
pub struct SessionPool {
    /// In-flight sessions, admission order (the round-robin order).
    live: Vec<SessionCore>,
    /// Finished, failed or cancelled sessions awaiting
    /// [`SessionPool::take_outcome`].
    done: Vec<SessionCore>,
}

impl SessionPool {
    pub fn new() -> SessionPool {
        SessionPool::default()
    }

    /// Admit a session on `plan` from `origin`, starting at the origin
    /// peer's current clock. Issues no subquery (identical validation
    /// and laziness to [`GridVineSystem::open`]).
    pub fn open(
        &mut self,
        sys: &mut GridVineSystem,
        origin: PeerId,
        plan: &QueryPlan,
        options: &QueryOptions,
    ) -> Result<SessionId, SystemError> {
        let at = sys.exec_state(origin).clock;
        self.open_at(sys, origin, plan, options, at)
    }

    /// Admit a session whose scheduler epoch is `at` (an open-loop
    /// arrival instant): its first units are sent no earlier than
    /// `max(at, origin clock)`.
    pub fn open_at(
        &mut self,
        sys: &mut GridVineSystem,
        origin: PeerId,
        plan: &QueryPlan,
        options: &QueryOptions,
        at: SimTime,
    ) -> Result<SessionId, SystemError> {
        let started_at = sys.exec_state(origin).clock.max(at);
        let core = SessionCore::open(sys, origin, plan, options, started_at)?;
        let id = core.id;
        self.live.push(core);
        Ok(id)
    }

    /// Replenish every live session's window, round-robin in admission
    /// order, one unit per session per round (idempotent: a second call
    /// with no intervening delivery issues nothing).
    fn replenish_all(&mut self, sys: &mut GridVineSystem) {
        loop {
            let mut issued = false;
            for core in self.live.iter_mut() {
                if core.wants_issue() {
                    core.issue_one(sys);
                    issued = true;
                }
            }
            if !issued {
                break;
            }
        }
    }

    /// The simulated instant the next [`SessionPool::step`] event will
    /// carry, or `None` once no session is live. Replenishes the
    /// windows (the same work `step` would do first), so an open-loop
    /// driver can merge pool events with an external arrival stream in
    /// time order: admit arrivals earlier than this instant, step
    /// otherwise.
    pub fn next_instant(&mut self, sys: &mut GridVineSystem) -> Option<SimTime> {
        if self.live.is_empty() {
            return None;
        }
        self.replenish_all(sys);
        let mut best: Option<SimTime> = None;
        for core in &self.live {
            // A session with nothing in flight is reaped immediately,
            // at the instant its last reply was delivered; otherwise
            // its origin queue holds its next reply.
            let t = if core.inflight == 0 {
                Some(core.sim_now())
            } else {
                sys.exec_state(core.origin).queue.peek_time()
            };
            if let Some(t) = t {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        }
        best
    }

    /// Advance the pool by one observable event, or `None` once no
    /// session is live. Drive to completion with
    /// `while pool.step(&mut sys).is_some() {}`.
    pub fn step(&mut self, sys: &mut GridVineSystem) -> Option<PoolEvent> {
        loop {
            if self.live.is_empty() {
                return None;
            }
            // 1. Replenish windows round-robin, one unit per session
            //    per round, admission order.
            self.replenish_all(sys);
            // 2. Reap sessions with nothing in flight, admission order.
            for i in 0..self.live.len() {
                let core = &mut self.live[i];
                if core.inflight > 0 {
                    continue;
                }
                if !core.error_events.is_empty() {
                    // Events a failing unit produced before erroring
                    // surface before the failure itself.
                    let events = std::mem::take(&mut core.error_events);
                    return Some(PoolEvent::Delivered {
                        session: core.id,
                        at: core.sim_now(),
                        events,
                    });
                }
                if let Some(error) = core.error.take() {
                    let mut core = self.live.remove(i);
                    let (session, at) = (core.id, core.sim_now());
                    core.cancel(sys); // clock writeback; queue already empty
                    self.done.push(core);
                    return Some(PoolEvent::Failed { session, at, error });
                }
                if !core.has_work() && core.delivered.is_empty() {
                    let mut core = self.live.remove(i);
                    let (session, at) = (core.id, core.sim_now());
                    core.cancel(sys);
                    self.done.push(core);
                    return Some(PoolEvent::Finished { session, at });
                }
            }
            // 3. Deliver the globally earliest reply across the live
            //    origins' queues; ties break by origin index (within a
            //    queue, FIFO by schedule order).
            let mut best: Option<(SimTime, PeerId)> = None;
            for core in &self.live {
                if let Some(at) = sys.exec_state(core.origin).queue.peek_time() {
                    let candidate = (at, core.origin);
                    if best.is_none_or(|b| (candidate.0, candidate.1.index()) < (b.0, b.1.index()))
                    {
                        best = Some(candidate);
                    }
                }
            }
            let Some((_, origin)) = best else {
                // Unreachable: after replenish, every live session is
                // either reaped above or has a scheduled reply.
                debug_assert!(false, "live sessions with no scheduled replies");
                return None;
            };
            let (at, reply) = sys
                .exec_state_mut(origin)
                .queue
                .pop()
                .expect("peeked queue is non-empty");
            let Some(core) = self.live.iter_mut().find(|c| c.id == reply.session) else {
                debug_assert!(false, "reply for a session no longer live");
                continue;
            };
            let session = core.id;
            if let Some(events) = core.deliver(at, reply) {
                return Some(PoolEvent::Delivered {
                    session,
                    at,
                    events,
                });
            }
            // A duplicated reply's second copy: dropped, go around.
        }
    }

    /// Cancel a live session: its still-queued replies are dropped
    /// (other sessions' survive on the shared queues), its simulated
    /// clock writes back to the origin peer, and its partial outcome
    /// moves to the done list. Returns `false` if `id` is not live.
    pub fn cancel(&mut self, sys: &mut GridVineSystem, id: SessionId) -> bool {
        let Some(i) = self.live.iter().position(|c| c.id == id) else {
            return false;
        };
        let mut core = self.live.remove(i);
        core.cancel(sys);
        self.done.push(core);
        true
    }

    /// Cancel every live session (the pool analogue of dropping a
    /// standalone session): `pending_events()` returns to zero.
    pub fn shutdown(&mut self, sys: &mut GridVineSystem) {
        while let Some(id) = self.live.first().map(|c| c.id) {
            self.cancel(sys, id);
        }
    }

    /// Remove a finished / failed / cancelled session and return its
    /// [`QueryOutcome`] — rows in the canonical sorted order plus
    /// cumulative stats, exactly what `execute` returns for a drained
    /// single session.
    pub fn take_outcome(&mut self, id: SessionId) -> Option<QueryOutcome> {
        let i = self.done.iter().position(|c| c.id == id)?;
        let mut core = self.done.remove(i);
        Some(core.outcome())
    }

    /// Cumulative stats of a session, live or done.
    pub fn session_stats(&self, id: SessionId) -> Option<ExecStats> {
        self.live
            .iter()
            .chain(self.done.iter())
            .find(|c| c.id == id)
            .map(|c| c.stats())
    }

    /// Rows a session (live or done) has accumulated so far.
    pub fn session_rows(&self, id: SessionId) -> Option<usize> {
        self.live
            .iter()
            .chain(self.done.iter())
            .find(|c| c.id == id)
            .map(|c| c.rows().len())
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Ids of the live sessions, admission order.
    pub fn live_sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.live.iter().map(|c| c.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::QueryPlan;
    use crate::{GridVineConfig, GridVineSystem, QueryOptions};
    use gridvine_pgrid::PeerId;
    use gridvine_rdf::{Term, Triple, TriplePatternQuery};
    use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};

    fn seeded_system() -> GridVineSystem {
        let mut sys = GridVineSystem::new(GridVineConfig::default());
        let p = PeerId(0);
        sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))
            .unwrap();
        sys.insert_schema(p, Schema::new("EMP", ["SystematicName"]))
            .unwrap();
        sys.insert_mapping(
            p,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        )
        .unwrap();
        sys.insert_triple(
            p,
            Triple::new(
                "seq:A78712",
                "EMBL#Organism",
                Term::literal("Aspergillus niger"),
            ),
        )
        .unwrap();
        sys
    }

    #[test]
    fn pool_of_one_matches_execute() {
        let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
        for window in [1usize, 4] {
            let opts = QueryOptions::new().window(window);
            let mut a = seeded_system();
            let expected = a.execute(PeerId(3), &plan, &opts).unwrap();

            let mut b = seeded_system();
            let mut pool = SessionPool::new();
            let id = pool.open(&mut b, PeerId(3), &plan, &opts).unwrap();
            while pool.step(&mut b).is_some() {}
            let got = pool.take_outcome(id).expect("session finished");

            assert_eq!(expected.rows, got.rows);
            assert_eq!(expected.stats, got.stats);
            assert_eq!(b.pending_events(), 0);
        }
    }

    #[test]
    fn two_origins_interleave_and_both_finish() {
        let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
        let opts = QueryOptions::new().window(2);
        let mut sys = seeded_system();
        let mut pool = SessionPool::new();
        let s1 = pool.open(&mut sys, PeerId(3), &plan, &opts).unwrap();
        let s2 = pool.open(&mut sys, PeerId(5), &plan, &opts).unwrap();
        let mut finished = Vec::new();
        while let Some(ev) = pool.step(&mut sys) {
            if let PoolEvent::Finished { session, .. } = ev {
                finished.push(session);
            }
        }
        assert_eq!(finished.len(), 2);
        let o1 = pool.take_outcome(s1).unwrap();
        let o2 = pool.take_outcome(s2).unwrap();
        assert_eq!(o1.rows.len(), 1);
        assert_eq!(o1.rows, o2.rows);
        assert_eq!(sys.pending_events(), 0);
    }

    #[test]
    fn cancel_drops_only_that_sessions_replies() {
        let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
        let opts = QueryOptions::new().window(4);
        let mut sys = seeded_system();
        let mut pool = SessionPool::new();
        let s1 = pool.open(&mut sys, PeerId(3), &plan, &opts).unwrap();
        let s2 = pool.open(&mut sys, PeerId(3), &plan, &opts).unwrap();
        // One step issues work for both sessions on the shared queue.
        let _ = pool.step(&mut sys);
        assert!(pool.cancel(&mut sys, s1));
        // The cancelled session keeps its partial stats; the survivor
        // still completes with the full result.
        assert!(pool.session_stats(s1).is_some());
        while pool.step(&mut sys).is_some() {}
        let o2 = pool.take_outcome(s2).unwrap();
        assert_eq!(o2.rows.len(), 1);
        assert_eq!(sys.pending_events(), 0);
    }

    #[test]
    fn session_ids_are_unique_and_display() {
        let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
        let opts = QueryOptions::new();
        let mut sys = seeded_system();
        let mut pool = SessionPool::new();
        let a = pool.open(&mut sys, PeerId(3), &plan, &opts).unwrap();
        let b = pool.open(&mut sys, PeerId(4), &plan, &opts).unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(format!("{a}"), "s0");
        pool.shutdown(&mut sys);
        assert!(pool.is_empty());
        assert_eq!(sys.pending_events(), 0);
    }
}
