//! # gridvine-core
//!
//! The GridVine Peer Data Management System — the paper's primary
//! contribution, assembled from the substrate crates:
//!
//! * [`gridvine_netsim`] simulates the Internet layer,
//! * [`gridvine_pgrid`] provides the structured overlay layer,
//! * [`gridvine_rdf`] and [`gridvine_semantic`] provide the semantic
//!   mediation layer's data model and self-organizing logic.
//!
//! The query surface is a **logical plan → pull-based session**
//! pipeline: a [`plan::QueryPlan`] names the shape of one `SearchFor`
//! (pattern lookup, object-prefix range sweep, reformulation closure,
//! conjunctive join);
//! [`GridVineSystem::open`](system::GridVineSystem::open) turns it into
//! an incremental [`session::QuerySession`] that advances one routed
//! subquery per pull and yields [`session::ResultEvent`]s (row batches,
//! schema hops with path quality, stats deltas) with genuine early
//! termination, while
//! [`GridVineSystem::execute`](system::GridVineSystem::execute) is the
//! blocking drain of such a session under [`exec::QueryOptions`]
//! (strategy, join mode, TTL, result limit), returning a uniform
//! [`exec::QueryOutcome`]. Repeated iterative plans over an unchanged
//! mapping network replay an epoch-keyed reformulation-closure cache
//! instead of re-walking the BFS. The four historical entry points
//! (`resolve_pattern`, `resolve_object_prefix`, `search`,
//! `search_conjunctive`) completed their deprecation cycle and are
//! deleted — see [`session`] for the migration table.
//!
//! Two execution modes cover the paper's experiments:
//!
//! * [`system::GridVineSystem`] — the *synchronous* PDMS over the
//!   logical overlay with exact message accounting: all `Update`
//!   variants of Figure 1 (`data`, `schema`, `mapping`,
//!   `connectivity`), plan execution with **iterative** and
//!   **recursive** reformulation and two conjunctive join policies,
//!   and the full self-organization loop ([`selforg`]): connectivity
//!   monitoring via `Hash(Domain)`, automatic mapping creation from
//!   shared instance references, Bayesian deprecation, and composition
//!   repair of deprecated links.
//! * [`harness::Deployment`] — the *asynchronous* deployment over the
//!   discrete-event simulator, charging wide-area latency per message;
//!   one plan-driven loop ([`harness::Deployment::run_plans`])
//!   reproduces the §2.3 latency CDF claim and disseminates
//!   reformulated and conjunctive queries over the simulated WAN.
//!
//! ```
//! use gridvine_core::prelude::*;
//! use gridvine_rdf::{Term, Triple, TriplePatternQuery};
//! use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
//! use gridvine_pgrid::PeerId;
//!
//! let mut sys = GridVineSystem::new(GridVineConfig::default());
//! let p = PeerId(0);
//! sys.insert_schema(p, Schema::new("EMBL", ["Organism"])).unwrap();
//! sys.insert_schema(p, Schema::new("EMP", ["SystematicName"])).unwrap();
//! sys.insert_mapping(p, "EMBL", "EMP", MappingKind::Equivalence, Provenance::Manual,
//!     vec![Correspondence::new("Organism", "SystematicName")]).unwrap();
//! sys.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
//!     Term::literal("Aspergillus niger"))).unwrap();
//! sys.insert_triple(p, Triple::new("seq:NEN94295-05", "EMP#SystematicName",
//!     Term::literal("Aspergillus oryzae"))).unwrap();
//!
//! let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
//! let out = sys.execute(PeerId(3), &plan, &QueryOptions::default()).unwrap();
//! assert_eq!(out.rows.len(), 2); // both records, across schemas
//! ```

pub mod harness;
pub mod item;
pub mod plan;
pub mod selforg;
pub mod system;

pub use system::exec;
pub use system::place;
pub use system::pool;
pub use system::session;

/// Glob-import surface.
pub mod prelude {
    pub use crate::harness::{
        BatchReport, ConjunctiveWanReport, Deployment, DeploymentConfig, ReformulatedBatchReport,
        WanBatchOptions, WanBatchReport,
    };
    pub use crate::item::{KeySpace, MediationItem};
    pub use crate::plan::QueryPlan;
    pub use crate::selforg::{RoundReport, SelfOrgConfig};
    pub use crate::system::conjunctive::JoinMode;
    pub use crate::system::exec::{ExecStats, QueryOptions, QueryOutcome};
    pub use crate::system::place::{HeatSpike, PlacementPolicy, PlacementRule, SpikeAction};
    pub use crate::system::pool::{PoolEvent, SessionId, SessionPool};
    pub use crate::system::session::{QuerySession, ResultEvent};
    pub use crate::system::{
        apply_mapping, AssessmentReport, CommitRecovery, GridVineConfig, GridVineSystem, Strategy,
        SystemError,
    };
}

pub use harness::{
    BatchReport, ConjunctiveWanReport, Deployment, DeploymentConfig, ReformulatedBatchReport,
    WanBatchOptions, WanBatchReport,
};
pub use item::{KeySpace, MediationItem};
pub use plan::QueryPlan;
pub use selforg::{RoundReport, SelfOrgConfig};
pub use system::conjunctive::JoinMode;
pub use system::exec::{ExecStats, QueryOptions, QueryOutcome};
pub use system::place::{HeatSpike, PlacementPolicy, PlacementRule, SpikeAction};
pub use system::pool::{PoolEvent, SessionId, SessionPool};
pub use system::session::{QuerySession, ResultEvent};
pub use system::{
    apply_mapping, AssessmentReport, CommitRecovery, GridVineConfig, GridVineSystem, Strategy,
    SystemError,
};
