//! # gridvine-core
//!
//! The GridVine Peer Data Management System — the paper's primary
//! contribution, assembled from the substrate crates:
//!
//! * [`gridvine_netsim`] simulates the Internet layer,
//! * [`gridvine_pgrid`] provides the structured overlay layer,
//! * [`gridvine_rdf`] and [`gridvine_semantic`] provide the semantic
//!   mediation layer's data model and self-organizing logic.
//!
//! Two execution modes cover the paper's experiments:
//!
//! * [`system::GridVineSystem`] — the *synchronous* PDMS over the
//!   logical overlay with exact message accounting: all `Update`
//!   variants of Figure 1 (`data`, `schema`, `mapping`,
//!   `connectivity`), `SearchFor` with **iterative** and **recursive**
//!   reformulation — single-pattern, prefix-range
//!   ([`GridVineSystem::resolve_object_prefix`](system::GridVineSystem::resolve_object_prefix))
//!   and conjunctive
//!   ([`GridVineSystem::search_conjunctive`](system::GridVineSystem::search_conjunctive),
//!   under two join policies) — and the full self-organization loop
//!   ([`selforg`]): connectivity monitoring via `Hash(Domain)`,
//!   automatic mapping creation from shared instance references,
//!   Bayesian deprecation, and composition repair of deprecated links.
//! * [`harness::Deployment`] — the *asynchronous* deployment over the
//!   discrete-event simulator, charging wide-area latency per message;
//!   reproduces the §2.3 latency CDF claim and disseminates
//!   reformulated and conjunctive queries over the simulated WAN.
//!
//! ```
//! use gridvine_core::prelude::*;
//! use gridvine_rdf::{Term, Triple, TriplePatternQuery};
//! use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
//! use gridvine_pgrid::PeerId;
//!
//! let mut sys = GridVineSystem::new(GridVineConfig::default());
//! let p = PeerId(0);
//! sys.insert_schema(p, Schema::new("EMBL", ["Organism"])).unwrap();
//! sys.insert_schema(p, Schema::new("EMP", ["SystematicName"])).unwrap();
//! sys.insert_mapping(p, "EMBL", "EMP", MappingKind::Equivalence, Provenance::Manual,
//!     vec![Correspondence::new("Organism", "SystematicName")]).unwrap();
//! sys.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
//!     Term::literal("Aspergillus niger"))).unwrap();
//! sys.insert_triple(p, Triple::new("seq:NEN94295-05", "EMP#SystematicName",
//!     Term::literal("Aspergillus oryzae"))).unwrap();
//!
//! let q = TriplePatternQuery::example_aspergillus();
//! let out = sys.search(PeerId(3), &q, Strategy::Iterative).unwrap();
//! assert_eq!(out.results.len(), 2); // both records, across schemas
//! ```

pub mod harness;
pub mod item;
pub mod selforg;
pub mod system;

/// Glob-import surface.
pub mod prelude {
    pub use crate::harness::{
        BatchReport, ConjunctiveWanReport, Deployment, DeploymentConfig, ReformulatedBatchReport,
    };
    pub use crate::item::{KeySpace, MediationItem};
    pub use crate::selforg::{RoundReport, SelfOrgConfig};
    pub use crate::system::conjunctive::{ConjunctiveOutcome, JoinMode};
    pub use crate::system::{
        apply_mapping, GridVineConfig, GridVineSystem, SearchOutcome, Strategy, SystemError,
    };
}

pub use harness::{
    BatchReport, ConjunctiveWanReport, Deployment, DeploymentConfig, ReformulatedBatchReport,
};
pub use item::{KeySpace, MediationItem};
pub use selforg::{RoundReport, SelfOrgConfig};
pub use system::conjunctive::{ConjunctiveOutcome, JoinMode};
pub use system::{
    apply_mapping, GridVineConfig, GridVineSystem, SearchOutcome, Strategy, SystemError,
};
