//! The synchronous GridVine system: the full PDMS over the logical
//! overlay, with exact message accounting.
//!
//! [`GridVineSystem`] wires the three layers together (Figure 1): a
//! P-Grid [`Overlay`] at the overlay layer, [`MediationItem`]s in the
//! peers' stores, and the mediation-layer operations of §2.2–§3 —
//! `Update(data | schema | mapping | connectivity)` and
//! `SearchFor(query)` with iterative or recursive reformulation.
//!
//! Every operation is executed as hop-by-hop routing over peer-local
//! views, so the message counts are those of the distributed protocol;
//! the event-driven twin in [`crate::harness`] additionally charges
//! wall-clock latency.

use crate::item::{KeySpace, MediationItem};
use gridvine_netsim::churn::{ChurnEvent, ChurnKind};
use gridvine_netsim::{FaultConfig, LatencyConfig, LatencyModel, NodeId, SimDuration, SimTime};
use gridvine_pgrid::{
    BitString, HashKind, KeyHasher, Overlay, PeerId, RouteError, Topology, UpdateOp,
};
use gridvine_rdf::{SharedTermDict, Term, Triple, TriplePatternQuery, TripleStore};
use gridvine_semantic::{
    apply_quarantine, assess, BayesConfig, Correspondence, DegreeRecord, Injection, Mapping,
    MappingId, MappingKind, MappingRegistry, MappingStatus, Provenance, Schema, SchemaId,
    SemanticAdversary, SemanticFaultConfig, SemanticFaultCounters,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

// Child modules so conjunctive evaluation and the plan executor can
// reuse the system's private overlay/rng state without widening the
// public surface.
#[path = "conjunctive.rs"]
pub mod conjunctive;
#[path = "exec.rs"]
pub mod exec;
#[path = "place.rs"]
pub mod place;
#[path = "pool.rs"]
pub mod pool;
#[path = "sched.rs"]
pub mod sched;
#[path = "session.rs"]
pub mod session;

/// System-wide configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridVineConfig {
    /// Number of peers in the overlay.
    pub peers: usize,
    /// Routing references per level.
    pub refs_per_level: usize,
    /// Overlay key depth in bits.
    pub key_depth: usize,
    /// Which hash maps lexical values to keys.
    pub hash: HashKind,
    /// Reformulation TTL (mapping applications per query).
    pub ttl: usize,
    /// Application domain name (the `Hash(Domain)` aggregation point).
    pub domain: String,
    /// Capacity of each peer's bounded LRU reformulation-closure cache
    /// (see [`sched`](self) and `gridvine_semantic::ClosureCache`): at
    /// most this many fully-expanded closures are retained per peer,
    /// least-recently-used evicted first. Zero disables caching.
    pub closure_cache_capacity: usize,
    /// Message-fault process applied to the scheduler's
    /// subquery/reply exchanges (see [`sched`]): `loss` makes request
    /// attempts time out and retransmit with backoff, `duplication`
    /// delivers a unit's reply twice (deduplicated by request id),
    /// `reorder` adds reply delivery jitter. Per-link overrides are
    /// keyed by peer index (`from` = issuing peer, `to` =
    /// destination). Null by default — a null config consumes no
    /// fault randomness and is bit-identical to the fault-free
    /// scheduler.
    #[serde(default)]
    pub fault: FaultConfig,
    /// Mediation-layer fault process
    /// ([`gridvine_semantic::adversary`]): at the configured rates,
    /// each [`GridVineSystem::adversary_gossip`] round injects stale
    /// (epoch-lagged deprecated), corrupted (correspondence-permuted)
    /// or Byzantine (fabricated, from designated adversarial peers)
    /// mappings into the registry and publishes their DHT copies.
    /// Null by default — a null config consumes no adversary
    /// randomness and is bit-identical to the adversary-free system.
    #[serde(default)]
    pub semantic_fault: SemanticFaultConfig,
    /// Latency model of the session scheduler's subquery/reply
    /// exchanges ([`gridvine_netsim::latency`]): with a non-flat model
    /// a unit's latency is `PROCESSING` plus one origin→destination
    /// sample per overlay message it charged, so heterogeneous WAN
    /// distributions shape the clock (and the latency CDF under load)
    /// without touching the logical accounting. The default
    /// [`LatencyConfig::Flat`] keeps the classic
    /// `PROCESSING + messages × PER_MESSAGE` formula, builds no model
    /// and consumes no randomness — bit-identical to the pre-latency
    /// scheduler.
    #[serde(default)]
    pub latency: LatencyConfig,
    /// Replica-placement policy ([`place`]): per-predicate/key-prefix
    /// replication factors and latency targets, plus the heat-telemetry
    /// knobs. The default **null policy** keeps exactly-owner placement
    /// — no registry entries, no heat tracking, no extra RNG draws —
    /// and is bit-identical to the placement-free scheduler.
    #[serde(default)]
    pub placement: place::PlacementPolicy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GridVineConfig {
    fn default() -> Self {
        GridVineConfig {
            peers: 64,
            refs_per_level: 2,
            key_depth: 24,
            hash: HashKind::OrderPreserving,
            ttl: 10,
            domain: "protein-sequences".to_string(),
            closure_cache_capacity: 64,
            fault: FaultConfig::none(),
            semantic_fault: SemanticFaultConfig::none(),
            latency: LatencyConfig::Flat,
            placement: place::PlacementPolicy::default(),
            seed: 0x6B1D,
        }
    }
}

/// Running counters of the request/retry protocol (see the [`sched`]
/// module docs): accumulated system-wide, diffed per session into
/// [`exec::ExecStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ProtoCounters {
    pub(crate) requests: usize,
    pub(crate) sends: usize,
    pub(crate) timeouts: usize,
    pub(crate) retransmits: usize,
}

/// State of the subquery request/response protocol: the fault rates,
/// the active session's retry budget and clock, and the deterministic
/// RNG stream driving loss/duplication/reorder draws — independent
/// from the routing RNG, so enabling faults never perturbs route
/// selection (and a null config draws nothing at all).
pub(crate) struct ProtocolState {
    /// Fault process for subquery/reply exchanges
    /// ([`GridVineConfig::fault`]).
    pub(crate) fault: FaultConfig,
    /// Retransmit budget of the active session's requests (set from
    /// [`exec::QueryOptions::max_retries`] at open).
    pub(crate) max_retries: usize,
    /// The session clock at the unit currently being issued — the
    /// attempt-time base for churn-liveness checks.
    pub(crate) now: SimTime,
    /// Timeout/backoff delay accumulated by the unit being issued
    /// (reset per issue, folded into the unit's completion instant).
    pub(crate) delay: SimDuration,
    /// Destination of the unit currently being issued: the peer the
    /// last routed request of this unit went to (reset per issue).
    /// Non-flat latency models sample the origin→destination link for
    /// each of the unit's messages.
    pub(crate) unit_dest: Option<PeerId>,
    /// Next request id.
    next_request: u64,
    pub(crate) counters: ProtoCounters,
    rng: StdRng,
}

impl ProtocolState {
    fn new(config: &GridVineConfig) -> ProtocolState {
        config.fault.validate();
        ProtocolState {
            fault: config.fault.clone(),
            max_retries: exec::DEFAULT_MAX_RETRIES,
            now: SimTime::ZERO,
            delay: SimDuration::ZERO,
            unit_dest: None,
            next_request: 0,
            counters: ProtoCounters::default(),
            rng: gridvine_netsim::rng::derive(config.seed, 0xB0FF),
        }
    }

    /// The effective loss rate from `from` to `to` (directional
    /// per-link overrides first, then the base rate).
    fn loss_rate(&self, from: PeerId, to: PeerId) -> f64 {
        for l in &self.fault.links {
            if l.from == from.index() && l.to == to.index() {
                return l.loss;
            }
        }
        self.fault.loss
    }

    /// One jitter draw, bounded by the config's `reorder_jitter`.
    fn jitter(&mut self) -> SimDuration {
        let max = self.fault.reorder_jitter.0;
        if max == 0 {
            return SimDuration::ZERO;
        }
        SimDuration(self.rng.gen_range(0..=max))
    }

    /// Backoff delay charged after the timeout of attempt `attempt`
    /// (0-based): `RETRY_TIMEOUT << attempt` plus jitter up to half
    /// that.
    fn backoff(&mut self, attempt: usize) -> SimDuration {
        let base = sched::RETRY_TIMEOUT.0 << attempt.min(10);
        SimDuration(base + self.rng.gen_range(0..=base / 2))
    }

    /// Reply-side fault draws for one completed unit: extra reorder
    /// jitter on the reply's delivery, and — when the duplication draw
    /// hits — the trailing delay of a duplicate copy. Draws are gated
    /// on non-zero rates so the null config consumes no randomness.
    pub(crate) fn reply_fate(&mut self) -> (SimDuration, Option<SimDuration>) {
        let mut jitter = SimDuration::ZERO;
        if self.fault.reorder > 0.0 && self.rng.gen::<f64>() < self.fault.reorder {
            jitter = self.jitter();
        }
        let duplicate =
            if self.fault.duplication > 0.0 && self.rng.gen::<f64>() < self.fault.duplication {
                Some(self.jitter())
            } else {
                None
            };
        (jitter, duplicate)
    }

    /// Allocate the next request id.
    pub(crate) fn next_request_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }
}

/// How a query is disseminated through the mapping network (§4: "In
/// reformulating queries, we support two approaches: iterative, where a
/// peer iteratively looks for paths of mappings and reformulates the
/// query by itself, and recursive, where the successive reformulations
/// are delegated to intermediate peers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    Iterative,
    Recursive,
}

/// Errors surfaced by mediation-layer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    Route(RouteError),
    /// The query has no routable constant (§2.3 requires one).
    NotRoutable,
    /// The query predicate does not name a schema.
    NoQuerySchema,
    /// The routed destination peer is crashed: the request was sent
    /// (and charged) but no response will ever come back.
    PeerDown(PeerId),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Route(e) => write!(f, "routing failed: {e}"),
            SystemError::NotRoutable => write!(f, "query has no routable constant term"),
            SystemError::NoQuerySchema => write!(f, "query predicate does not name a schema"),
            SystemError::PeerDown(p) => write!(f, "destination peer {p} is down"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<RouteError> for SystemError {
    fn from(e: RouteError) -> SystemError {
        SystemError::Route(e)
    }
}

/// What one [`GridVineSystem::assessment_pass`] did.
#[derive(Debug, Clone, Default)]
pub struct AssessmentReport {
    /// Mapping cycles found and probed (one routed probe each).
    pub cycles_probed: usize,
    /// Mappings left quarantined by this pass (fresh quarantines and
    /// re-confirmed paroles alike).
    pub quarantined: Vec<MappingId>,
    /// Previously quarantined mappings the cycle evidence cleared:
    /// paroled into this assessment and left active.
    pub reactivated: Vec<MappingId>,
    /// The pass's charged work: probe messages/requests/latency plus
    /// the DHT refreshes of changed mappings
    /// (`assessment_probes` / `quarantined_mappings` included).
    pub stats: exec::ExecStats,
    /// Simulated time the pass advanced the origin peer's clock by.
    pub elapsed: SimDuration,
}

/// What one [`GridVineSystem::recover_mapping_commits`] scan repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitRecovery {
    /// Missing DHT copies re-inserted for live registry mappings.
    pub repaired_copies: usize,
    /// Orphaned DHT copies (retracted registry entries) deleted.
    pub orphans_removed: usize,
}

/// The synchronous GridVine PDMS.
pub struct GridVineSystem {
    config: GridVineConfig,
    hasher: Box<dyn KeyHasher + Send + Sync>,
    topology: Topology,
    overlay: Overlay<MediationItem>,
    /// Per-peer local triple databases `DB_p` (§2.2): every peer
    /// responsible for one of a triple's keys indexes it here, and
    /// destination-side resolution evaluates these indexed stores
    /// instead of scanning (and cloning) the overlay's key buckets.
    ///
    /// This is the **only** triple storage: overlay buckets hold no
    /// `MediationItem::Triple` copies (they keep schemas, mappings and
    /// connectivity records). Triple placement still routes through the
    /// overlay with full `Update` message accounting
    /// ([`Overlay::update_placement`]); the self-organization matcher
    /// reads these stores too, so per-peer triple memory is paid once.
    local_dbs: Vec<TripleStore>,
    /// Process-wide string pool shared by all peer databases: each
    /// distinct lexical is stored once no matter how many peers'
    /// `DB_p`s hold triples mentioning it.
    lexicon: SharedTermDict,
    /// The logical mediation state: schemas and mappings as stored in
    /// the DHT (kept in lock-step with the DHT copies by the insert /
    /// deprecate operations below).
    registry: MappingRegistry,
    /// Per-peer execution state: the simulated clock, the in-flight
    /// session's reply queue and the peer's bounded LRU
    /// reformulation-closure cache (see [`sched`]). The iterative
    /// strategy warms the origin's cache; the recursive strategy warms
    /// the delegate peer's.
    exec: Vec<sched::PeerExecState>,
    /// Peers currently crashed by failure injection: routed requests
    /// whose destination is down are charged but never answered
    /// ([`SystemError::PeerDown`]).
    crashed: BTreeSet<PeerId>,
    /// Request/retry protocol state (fault rates, retry budget,
    /// counters, its own RNG stream) — see [`sched`].
    pub(crate) proto: ProtocolState,
    /// Per-peer churn timelines installed by
    /// [`GridVineSystem::install_churn`]: sorted `(instant, down)`
    /// transitions; empty timelines mean always up.
    churn: Vec<Vec<(SimTime, bool)>>,
    /// The mediation-layer adversary
    /// ([`GridVineConfig::semantic_fault`]): its own RNG stream, so a
    /// null config leaves every other stream untouched.
    adversary: SemanticAdversary,
    /// One-shot failure-injection hook armed by
    /// [`GridVineSystem::arm_commit_crash`]: the named peer is crashed
    /// *between* the key-space writes of the next mapping commit,
    /// exercising the atomic-commit rollback path.
    commit_crash: Option<PeerId>,
    /// The scheduler's latency model ([`GridVineConfig::latency`]),
    /// built once at construction with its own derived seed. `None`
    /// under the flat default — [`GridVineSystem::unit_delay`] then
    /// uses the classic per-message formula and draws nothing.
    latency: Option<Box<dyn LatencyModel>>,
    /// Replica-placement runtime state ([`GridVineConfig::placement`]):
    /// the replica registry (extra holders beyond σ(key)), the windowed
    /// heat counters and the placement counters diffed per issued unit
    /// — see [`place`].
    pub(crate) place: place::PlacementState,
    /// Monotone session-id allocator shared by standalone sessions and
    /// pools (ids stay unique when both run against one system).
    next_session: u64,
    rng: StdRng,
}

impl GridVineSystem {
    /// Build a system with a balanced overlay.
    pub fn new(config: GridVineConfig) -> GridVineSystem {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let topology = Topology::balanced(config.peers, config.refs_per_level, &mut rng);
        debug_assert!(topology.validate().is_ok());
        let overlay = Overlay::new(&topology);
        GridVineSystem {
            hasher: config.hash.build(),
            local_dbs: (0..topology.len()).map(|_| TripleStore::new()).collect(),
            lexicon: SharedTermDict::new(),
            exec: (0..topology.len())
                .map(|_| sched::PeerExecState::new(config.closure_cache_capacity))
                .collect(),
            crashed: BTreeSet::new(),
            proto: ProtocolState::new(&config),
            churn: vec![Vec::new(); topology.len()],
            adversary: SemanticAdversary::new(config.semantic_fault.clone(), config.seed),
            commit_crash: None,
            latency: config
                .latency
                .build(gridvine_netsim::rng::derive_seed(config.seed, 0x1A7E)),
            place: place::PlacementState::new(config.placement.clone()),
            next_session: 0,
            topology,
            overlay,
            registry: MappingRegistry::new(),
            rng,
            config,
        }
    }

    /// Build over an explicit topology (e.g. one produced by the
    /// decentralized construction).
    pub fn with_topology(config: GridVineConfig, topology: Topology) -> GridVineSystem {
        let rng = StdRng::seed_from_u64(config.seed);
        let overlay = Overlay::new(&topology);
        GridVineSystem {
            hasher: config.hash.build(),
            local_dbs: (0..topology.len()).map(|_| TripleStore::new()).collect(),
            lexicon: SharedTermDict::new(),
            exec: (0..topology.len())
                .map(|_| sched::PeerExecState::new(config.closure_cache_capacity))
                .collect(),
            crashed: BTreeSet::new(),
            proto: ProtocolState::new(&config),
            churn: vec![Vec::new(); topology.len()],
            adversary: SemanticAdversary::new(config.semantic_fault.clone(), config.seed),
            commit_crash: None,
            latency: config
                .latency
                .build(gridvine_netsim::rng::derive_seed(config.seed, 0x1A7E)),
            place: place::PlacementState::new(config.placement.clone()),
            next_session: 0,
            topology,
            overlay,
            registry: MappingRegistry::new(),
            rng,
            config,
        }
    }

    pub fn config(&self) -> &GridVineConfig {
        &self.config
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    pub fn overlay(&self) -> &Overlay<MediationItem> {
        &self.overlay
    }

    /// The logical mediation state (schemas + mappings).
    pub fn registry(&self) -> &MappingRegistry {
        &self.registry
    }

    /// Number of memoized reformulation closures currently valid for
    /// the registry's epoch, summed over every peer's cache (0 right
    /// after any mapping mutation — a stale cache counts as empty even
    /// before its lazy clear).
    pub fn cached_closures(&self) -> usize {
        let epoch = self.registry.epoch();
        self.exec
            .iter()
            .map(|e| {
                if e.cache.epoch() == epoch {
                    e.cache.len()
                } else {
                    0
                }
            })
            .sum()
    }

    /// Lifetime closure-cache hit/miss/eviction counters, summed over
    /// every peer's cache.
    pub fn cache_counters(&self) -> gridvine_semantic::CacheCounters {
        let mut total = gridvine_semantic::CacheCounters::default();
        for e in &self.exec {
            let c = e.cache.counters();
            total.hits += c.hits;
            total.misses += c.misses;
            total.evictions += c.evictions;
        }
        total
    }

    /// Scheduled-but-undelivered replies across every peer's event
    /// queue. Non-zero only while a session holds subqueries in
    /// flight; dropping a session cancels its queued events, so this
    /// returns to zero.
    pub fn pending_events(&self) -> usize {
        self.exec.iter().map(|e| e.queue.len()).sum()
    }

    /// One peer's execution state (clock, reply queue, closure cache).
    pub(crate) fn exec_state_mut(&mut self, peer: PeerId) -> &mut sched::PeerExecState {
        &mut self.exec[peer.index()]
    }

    pub(crate) fn exec_state(&self, peer: PeerId) -> &sched::PeerExecState {
        &self.exec[peer.index()]
    }

    /// Failure injection: crash a peer. Requests routed *to* it are
    /// charged but never answered ([`SystemError::PeerDown`]); closure
    /// walks record the failure in `ExecStats::failures` and continue.
    /// Routing *through* a crashed peer is not modeled — the overlay's
    /// reference structure stands in for the live peers a real P-Grid
    /// would fail over to.
    pub fn crash_peer(&mut self, peer: PeerId) {
        self.crashed.insert(peer);
    }

    /// Bring a crashed peer back.
    pub fn recover_peer(&mut self, peer: PeerId) {
        self.crashed.remove(&peer);
    }

    /// Whether failure injection currently has this peer down.
    pub fn is_peer_up(&self, peer: PeerId) -> bool {
        !self.crashed.contains(&peer)
    }

    /// Install a pre-generated churn schedule
    /// ([`gridvine_netsim::churn`]) on the query path: a peer whose
    /// timeline marks it down at a request's attempt instant behaves
    /// like a crashed destination for that attempt — the request times
    /// out and is retransmitted with backoff — and serves again once
    /// its recovery instant passes, so a retrying unit survives a
    /// mid-flight failure. Node indexes map to peer indexes; events
    /// for out-of-range nodes are ignored. Replaces any previously
    /// installed schedule.
    pub fn install_churn(&mut self, events: &[ChurnEvent]) {
        for timeline in &mut self.churn {
            timeline.clear();
        }
        for ev in events {
            if let Some(timeline) = self.churn.get_mut(ev.node.index()) {
                timeline.push((ev.at, matches!(ev.kind, ChurnKind::Fail)));
            }
        }
        for timeline in &mut self.churn {
            timeline.sort_by_key(|&(at, _)| at);
        }
    }

    /// Whether the installed churn schedule has `peer` down at `at`
    /// (down iff the latest transition at or before `at` is a
    /// failure; peers start up).
    pub fn churn_down_at(&self, peer: PeerId, at: SimTime) -> bool {
        let timeline = &self.churn[peer.index()];
        let i = timeline.partition_point(|&(ev_at, _)| ev_at <= at);
        i > 0 && timeline[i - 1].1
    }

    /// Drive one logical request/response exchange with `dest` through
    /// the timeout–retry–backoff protocol (see the [`sched`] module
    /// docs). The route and its response charge already happened at
    /// the caller; this decides whether — and after how much retry
    /// delay — a reply arrives.
    ///
    /// A destination held down by [`GridVineSystem::crash_peer`] fails
    /// immediately (retransmitting to a peer that failure injection
    /// keeps down forever cannot help, and no fault draw is consumed,
    /// so crash-injection runs stay bit-identical to the pre-protocol
    /// scheduler). A churn-down destination times out per attempt and
    /// succeeds on the first attempt scheduled after its recovery.
    /// Exhausting the retry budget surfaces as
    /// [`SystemError::PeerDown`] — the same recorded failure the
    /// closure walks already survive.
    pub(crate) fn proto_request(&mut self, from: PeerId, dest: PeerId) -> Result<(), SystemError> {
        self.proto.counters.requests += 1;
        self.proto.counters.sends += 1;
        self.proto.unit_dest = Some(dest);
        if self.crashed.contains(&dest) {
            return Err(SystemError::PeerDown(dest));
        }
        let loss = self.proto.loss_rate(from, dest);
        for attempt in 0..=self.proto.max_retries {
            if attempt > 0 {
                self.proto.counters.sends += 1;
                self.proto.counters.retransmits += 1;
            }
            let at = self.proto.now + self.proto.delay;
            let up = !self.churn_down_at(dest, at);
            let lost = loss > 0.0 && self.proto.rng.gen::<f64>() < loss;
            if up && !lost {
                return Ok(());
            }
            self.proto.counters.timeouts += 1;
            let backoff = self.proto.backoff(attempt);
            self.proto.delay += backoff;
        }
        Err(SystemError::PeerDown(dest))
    }

    /// Allocate the next session id (see [`pool::SessionId`]): unique
    /// for the system's lifetime, shared by standalone sessions and
    /// pools.
    pub(crate) fn alloc_session_id(&mut self) -> pool::SessionId {
        let id = pool::SessionId(self.next_session);
        self.next_session += 1;
        id
    }

    /// Simulated latency of one issued unit that charged `messages`
    /// overlay messages from `origin`.
    ///
    /// Flat (default) config: the classic deterministic
    /// `PROCESSING + messages × PER_MESSAGE` formula. With a model from
    /// [`GridVineConfig::latency`]: `PROCESSING` plus one sampled
    /// origin→destination delay per message, where the destination is
    /// the peer the unit's last routed request went to
    /// (`ProtocolState::unit_dest`; local-only units fall back to the
    /// origin itself).
    pub(crate) fn unit_delay(&mut self, origin: PeerId, messages: u64) -> SimDuration {
        let Some(model) = self.latency.as_deref_mut() else {
            return sched::unit_latency(messages);
        };
        let dest = self.proto.unit_dest.unwrap_or(origin);
        let from = NodeId::from_index(origin.index());
        let to = NodeId::from_index(dest.index());
        let mut total = sched::PROCESSING;
        for _ in 0..messages {
            total += model.sample(from, to);
        }
        total
    }

    /// One peer's local triple database `DB_p`.
    pub fn peer_db(&self, peer: PeerId) -> &TripleStore {
        &self.local_dbs[peer.index()]
    }

    /// The process-wide string pool shared by every peer database.
    pub fn lexicon(&self) -> &SharedTermDict {
        &self.lexicon
    }

    /// Total overlay messages since construction (or the last reset).
    pub fn messages_sent(&self) -> u64 {
        self.overlay.messages_sent()
    }

    pub fn reset_messages(&mut self) {
        self.overlay.reset_messages();
    }

    /// A uniformly random peer (for issuing operations "from anywhere").
    pub fn random_peer(&mut self) -> PeerId {
        PeerId::from_index(self.rng.gen_range(0..self.config.peers))
    }

    fn keyspace(&self) -> KeySpace<'_> {
        KeySpace::new(self.hasher.as_ref(), self.config.key_depth)
    }

    /// Overlay key of a lexical value.
    pub fn key_of(&self, lexical: &str) -> BitString {
        self.keyspace().key_of(lexical)
    }

    // -----------------------------------------------------------------
    // Update operations (§2.2, §3, §3.1)
    // -----------------------------------------------------------------

    /// `Update(t)` — index the triple under subject, predicate and
    /// object keys (three overlay updates). Every peer that receives a
    /// copy (destination + replicas) indexes it in its local database
    /// `DB_p`, which is what destination-side resolution evaluates; the
    /// lexicals are canonicalized through the shared lexicon first so
    /// all peer databases share one buffer per distinct string.
    ///
    /// The routing and replica-propagation messages are charged exactly
    /// as a bucket-storing `Update` would ([`Overlay::update_placement`]),
    /// but no `MediationItem::Triple` is written into overlay buckets —
    /// `DB_p` is the single per-peer copy.
    pub fn insert_triple(&mut self, origin: PeerId, t: Triple) -> Result<(), SystemError> {
        let t = self.lexicon.canonical_triple(&t);
        let keys = self.keyspace().triple_keys(&t);
        for key in &keys {
            let route = self.overlay.update_placement(origin, key, &mut self.rng)?;
            let dest = route.destination;
            self.local_dbs[dest.index()].insert(t.clone());
            for r in self.overlay.view(dest).replicas.clone() {
                self.local_dbs[r.index()].insert(t.clone());
            }
        }
        // Placement-policy fan-out: keys covered by a rule propagate
        // the new triple to their registered extras and provision up to
        // the rule's factor (no-op, and zero cost, under the null
        // policy) — see [`place`]. Atomic like the mapping commit: a
        // fan-out cut short rolls its own copies back, and the σ writes
        // above are undone too, so no holder is ever missing rows its
        // registry entry promises.
        if let Err(e) = self.place_triple(origin, &t, &keys) {
            for key in &keys {
                for owner in self.topology.responsible(key).to_vec() {
                    self.local_dbs[owner.index()].remove(&t);
                }
            }
            return Err(e);
        }
        Ok(())
    }

    /// Bulk-load a schema's triples from an origin peer.
    pub fn insert_triples(
        &mut self,
        origin: PeerId,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Result<usize, SystemError> {
        let mut n = 0;
        for t in triples {
            self.insert_triple(origin, t)?;
            n += 1;
        }
        Ok(n)
    }

    /// `Update(Schema)` — store the definition at `Hash(Schema Name)`.
    pub fn insert_schema(&mut self, origin: PeerId, schema: Schema) -> Result<(), SystemError> {
        let key = self.keyspace().schema_key(&schema);
        self.overlay.update(
            origin,
            UpdateOp::Insert,
            key,
            MediationItem::Schema(schema.clone()),
            &mut self.rng,
        )?;
        self.registry.add_schema(schema);
        Ok(())
    }

    /// `Update(Schema Mapping)` — store at the source key space (and
    /// the target's, see [`KeySpace::mapping_keys`]).
    ///
    /// The commit is **atomic** across the mapping's key spaces: either
    /// every DHT copy is written and the registry keeps the entry, or —
    /// when any key-space write fails (its responsible peer is crashed,
    /// possibly mid-commit via [`GridVineSystem::arm_commit_crash`]) —
    /// the already-written copies are deleted, the registry entry is
    /// [retracted](MappingRegistry::retract) and `Err` is returned. A
    /// crash during commit can therefore never leave a mapping visible
    /// from one schema's key space but not the other's (the seed's
    /// one-way `mapping_keys` bug class); if even the rollback is cut
    /// short by the crash, [`GridVineSystem::recover_mapping_commits`]
    /// detects and repairs the half-committed item.
    pub fn insert_mapping(
        &mut self,
        origin: PeerId,
        source: impl Into<SchemaId>,
        target: impl Into<SchemaId>,
        kind: MappingKind,
        provenance: Provenance,
        correspondences: Vec<Correspondence>,
    ) -> Result<MappingId, SystemError> {
        let id = self
            .registry
            .add_mapping(source, target, kind, provenance, correspondences);
        let mapping = self.registry.mapping(id).expect("just added").clone();
        if let Err(e) = self.commit_mapping_copies(origin, &mapping) {
            self.registry.retract(id);
            return Err(e);
        }
        Ok(id)
    }

    /// Arm the one-shot commit-crash hook: the named peer is crashed
    /// between the key-space writes of the *next* multi-key mapping
    /// commit (failure injection for the atomic-commit tests; a real
    /// deployment's analogue is the committing peer failing mid-write).
    pub fn arm_commit_crash(&mut self, peer: PeerId) {
        self.commit_crash = Some(peer);
    }

    /// Store or delete one mediation-item copy. A write whose
    /// responsible destination peer is crashed fails with
    /// [`SystemError::PeerDown`] *before* any state lands — a down peer
    /// can never acknowledge the update (the failed attempt's wire cost
    /// is not modeled; the success path is bit-identical to a plain
    /// overlay update).
    fn mediation_update(
        &mut self,
        origin: PeerId,
        op: UpdateOp,
        key: BitString,
        item: MediationItem,
    ) -> Result<(), SystemError> {
        if let Some(&dest) = self.topology.responsible(&key).first() {
            if self.crashed.contains(&dest) {
                return Err(SystemError::PeerDown(dest));
            }
        }
        self.overlay.update(origin, op, key, item, &mut self.rng)?;
        Ok(())
    }

    /// Write all DHT copies of `mapping`, atomically: on any failed
    /// write the already-written copies are deleted (best effort — a
    /// rollback write to a crashed peer is skipped and left to the
    /// recovery scan) and the error is returned.
    fn commit_mapping_copies(
        &mut self,
        origin: PeerId,
        mapping: &Mapping,
    ) -> Result<(), SystemError> {
        let mut written: Vec<(BitString, bool)> = Vec::new();
        for (key, at_source) in self.keyspace().mapping_keys(mapping) {
            if !written.is_empty() {
                // Between the first and second key-space writes: the
                // armed crash hook fires here.
                if let Some(victim) = self.commit_crash.take() {
                    self.crash_peer(victim);
                }
            }
            let item = MediationItem::Mapping {
                mapping: mapping.clone(),
                at_source,
            };
            match self.mediation_update(origin, UpdateOp::Insert, key.clone(), item) {
                Ok(()) => written.push((key, at_source)),
                Err(e) => {
                    for (k, at_src) in written {
                        let _ = self.mediation_update(
                            origin,
                            UpdateOp::Delete,
                            k,
                            MediationItem::Mapping {
                                mapping: mapping.clone(),
                                at_source: at_src,
                            },
                        );
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Mark a mapping deprecated, refreshing its DHT copies.
    pub fn deprecate_mapping(
        &mut self,
        origin: PeerId,
        id: MappingId,
    ) -> Result<bool, SystemError> {
        let Some(old) = self.registry.mapping(id).cloned() else {
            return Ok(false);
        };
        if !self.registry.deprecate(id) {
            return Ok(false);
        }
        let new = self.registry.mapping(id).expect("exists").clone();
        self.replace_mapping_copies(origin, &old, &new)?;
        Ok(true)
    }

    /// Move a mapping to `Quarantined` (reversible containment — see
    /// [`MappingStatus`]), refreshing its DHT copies. Returns `false`
    /// for unknown ids.
    pub fn quarantine_mapping(
        &mut self,
        origin: PeerId,
        id: MappingId,
    ) -> Result<bool, SystemError> {
        let Some(old) = self.registry.mapping(id).cloned() else {
            return Ok(false);
        };
        if !self.registry.quarantine(id) {
            return Ok(false);
        }
        let new = self.registry.mapping(id).expect("exists").clone();
        self.replace_mapping_copies(origin, &old, &new)?;
        Ok(true)
    }

    /// Return a deprecated or quarantined mapping to `Active`,
    /// refreshing its DHT copies. Returns `false` for unknown ids.
    pub fn reactivate_mapping(
        &mut self,
        origin: PeerId,
        id: MappingId,
    ) -> Result<bool, SystemError> {
        let Some(old) = self.registry.mapping(id).cloned() else {
            return Ok(false);
        };
        if !self.registry.reactivate(id) {
            return Ok(false);
        }
        let new = self.registry.mapping(id).expect("exists").clone();
        self.replace_mapping_copies(origin, &old, &new)?;
        Ok(true)
    }

    /// Push updated mapping state (quality/status) to its DHT copies.
    pub fn refresh_mapping(
        &mut self,
        origin: PeerId,
        id: MappingId,
        old: &Mapping,
    ) -> Result<(), SystemError> {
        let Some(new) = self.registry.mapping(id).cloned() else {
            return Ok(());
        };
        self.replace_mapping_copies(origin, old, &new)
    }

    fn replace_mapping_copies(
        &mut self,
        origin: PeerId,
        old: &Mapping,
        new: &Mapping,
    ) -> Result<(), SystemError> {
        for (key, at_source) in self.keyspace().mapping_keys(old) {
            self.mediation_update(
                origin,
                UpdateOp::Delete,
                key.clone(),
                MediationItem::Mapping {
                    mapping: old.clone(),
                    at_source,
                },
            )?;
            self.mediation_update(
                origin,
                UpdateOp::Insert,
                key,
                MediationItem::Mapping {
                    mapping: new.clone(),
                    at_source,
                },
            )?;
        }
        Ok(())
    }

    /// Internal access for the self-organization driver.
    pub(crate) fn registry_mut(&mut self) -> &mut MappingRegistry {
        &mut self.registry
    }

    /// Lifetime injection counts of the semantic adversary
    /// ([`GridVineConfig::semantic_fault`]).
    pub fn semantic_fault_counters(&self) -> SemanticFaultCounters {
        self.adversary.counters()
    }

    /// One adversarial gossip round ([`GridVineConfig::semantic_fault`]):
    /// each fault dimension fires at its configured rate, registering
    /// injected mappings *and* publishing their DHT copies from
    /// `origin` — an injected edge is indistinguishable from an honest
    /// one to query reformulation until the Bayesian assessment
    /// quarantines it. A null config injects nothing, consumes no
    /// randomness and sends no messages.
    pub fn adversary_gossip(&mut self, origin: PeerId) -> Result<Vec<Injection>, SystemError> {
        let injected = self.adversary.gossip_round(&mut self.registry);
        for inj in &injected {
            let mapping = self
                .registry
                .mapping(inj.id)
                .expect("just injected")
                .clone();
            if let Err(e) = self.commit_mapping_copies(origin, &mapping) {
                self.registry.retract(inj.id);
                return Err(e);
            }
        }
        Ok(injected)
    }

    /// One periodic quality-assessment pass, run from `origin` as
    /// scheduler units on the simulated clock (see [`sched`]): every
    /// mapping cycle costs one routed *cycle probe* (a retrieve at the
    /// cycle's base schema key, driven through the retry protocol), so
    /// probes are charged as messages, requests and latency in
    /// [`exec::ExecStats`] exactly like subqueries. After probing, the
    /// Bayesian analysis (§3.2) runs and condemned non-manual mappings
    /// are **quarantined** — reversibly: previously quarantined edges
    /// are paroled into this assessment and stay active if the cycle
    /// evidence now clears them (`reactivated`). Changed mappings'
    /// DHT copies are refreshed, and every status transition bumps the
    /// registry epoch, so all closure caches self-invalidate.
    pub fn assessment_pass(
        &mut self,
        origin: PeerId,
        cfg: &BayesConfig,
    ) -> Result<AssessmentReport, SystemError> {
        let start_messages = self.overlay.messages_sent();
        let start_proto = self.proto.counters;
        let started_at = self.exec_state(origin).clock;
        let mut clock = started_at;
        let mut stats = exec::ExecStats::default();

        // Parole quarantined edges so the fresh cycle evidence judges
        // them again; snapshot everything for the DHT refresh diff.
        let before: Vec<Mapping> = self.registry.mappings().cloned().collect();
        let paroled: Vec<MappingId> = before
            .iter()
            .filter(|m| m.status == MappingStatus::Quarantined)
            .map(|m| m.id)
            .collect();
        for &id in &paroled {
            self.registry.reactivate(id);
        }

        // One cycle probe per mapping cycle: fetch the evidence at the
        // cycle's base schema key. A crashed destination is a recorded
        // failure, not an aborted pass. The pass cascades to a fixpoint:
        // identical wrong copies lend each other consistent
        // there-and-back cycles, so a single judgment can leave part of
        // a copy swarm standing — but once the weakest copies are
        // quarantined they drop out of the active evidence pool, and
        // re-probing the shrunken cycle set condemns the rest. Iterate
        // until a judgment condemns nothing new.
        let mut cycles_probed = 0usize;
        let mut quarantined: Vec<MappingId> = Vec::new();
        loop {
            let cycles = gridvine_semantic::bayes::find_cycles(&self.registry, cfg.max_cycle_len);
            for cycle in &cycles {
                let key = self.key_of(cycle.base.as_str());
                let msgs_before = self.overlay.messages_sent();
                self.proto.now = clock;
                self.proto.delay = SimDuration::ZERO;
                self.proto.unit_dest = None;
                stats.assessment_probes += 1;
                let probed = self
                    .route_retrieve(origin, &key)
                    .and_then(|dest| self.proto_request(origin, dest));
                match probed {
                    Ok(()) => {}
                    Err(SystemError::PeerDown(_)) => stats.failures += 1,
                    Err(e) => return Err(e),
                }
                let delta = self.overlay.messages_sent() - msgs_before;
                clock = clock + self.proto.delay + self.unit_delay(origin, delta);
            }
            cycles_probed += cycles.len();

            let assessment = assess(&self.registry, cfg);
            let newly = apply_quarantine(&mut self.registry, &assessment, cfg);
            if newly.is_empty() {
                break;
            }
            quarantined.extend(newly);
        }
        quarantined.sort();
        let reactivated: Vec<MappingId> = paroled
            .iter()
            .copied()
            .filter(|id| !quarantined.contains(id))
            .collect();
        stats.quarantined_mappings = quarantined.len();

        // Refresh the DHT copies of every mapping the pass changed
        // (status or posterior): each refresh is more charged work.
        for old in &before {
            let changed = self
                .registry
                .mapping(old.id)
                .map(|new| new != old)
                .unwrap_or(false);
            if changed {
                let msgs_before = self.overlay.messages_sent();
                self.proto.unit_dest = None;
                self.refresh_mapping(origin, old.id, old)?;
                let delta = self.overlay.messages_sent() - msgs_before;
                let d = self.unit_delay(origin, delta);
                clock += d;
            }
        }

        stats.messages = self.overlay.messages_sent() - start_messages;
        let c = self.proto.counters;
        stats.requests = c.requests - start_proto.requests;
        stats.sends = c.sends - start_proto.sends;
        stats.timeouts = c.timeouts - start_proto.timeouts;
        stats.retransmits = c.retransmits - start_proto.retransmits;
        self.exec_state_mut(origin).clock = clock;
        Ok(AssessmentReport {
            cycles_probed,
            quarantined,
            reactivated,
            stats,
            elapsed: clock.saturating_since(started_at),
        })
    }

    /// Recovery scan for half-committed mediation items: repairs
    /// registry mappings missing a DHT copy at one of their key spaces
    /// (re-inserting the current state) and deletes orphaned DHT
    /// mapping copies whose registry entry was retracted. Run it after
    /// recovering crashed peers; with the atomic commit path this is a
    /// no-op unless a crash cut a commit's rollback short.
    pub fn recover_mapping_commits(
        &mut self,
        origin: PeerId,
    ) -> Result<CommitRecovery, SystemError> {
        let mut report = CommitRecovery::default();
        // Direction 1: registry entries missing a DHT copy.
        let mappings: Vec<Mapping> = self.registry.mappings().cloned().collect();
        for m in &mappings {
            for (key, at_source) in self.keyspace().mapping_keys(m) {
                let present = self.items_at(&key).iter().any(|i| {
                    matches!(i, MediationItem::Mapping { mapping, at_source: a }
                        if mapping.id == m.id && *a == at_source)
                });
                if !present {
                    self.mediation_update(
                        origin,
                        UpdateOp::Insert,
                        key,
                        MediationItem::Mapping {
                            mapping: m.clone(),
                            at_source,
                        },
                    )?;
                    report.repaired_copies += 1;
                }
            }
        }
        // Direction 2: DHT copies whose registry entry is gone. Every
        // mapping copy lives at a schema's key space, so scanning the
        // registered schemas' keys covers all commit sites.
        let live: BTreeSet<MappingId> = self.registry.mappings().map(|m| m.id).collect();
        let schema_keys: Vec<BitString> = self
            .registry
            .schemas()
            .map(|s| self.key_of(s.id().as_str()))
            .collect();
        for key in schema_keys {
            let orphans: Vec<MediationItem> = self
                .items_at(&key)
                .into_iter()
                .filter(|i| {
                    matches!(i, MediationItem::Mapping { mapping, .. } if !live.contains(&mapping.id))
                })
                .collect();
            for item in orphans {
                self.mediation_update(origin, UpdateOp::Delete, key.clone(), item)?;
                report.orphans_removed += 1;
            }
        }
        Ok(report)
    }

    /// Internal: route a `Retrieve(key)` and charge its response
    /// message, returning the destination peer whose local state
    /// answers it (callers evaluate that peer's `DB_p` themselves; the
    /// accounting is exactly a bucket `Retrieve`'s).
    pub(crate) fn route_retrieve(
        &mut self,
        origin: PeerId,
        key: &BitString,
    ) -> Result<PeerId, SystemError> {
        let route = self.overlay.route(origin, key, &mut self.rng)?;
        self.overlay.charge_response(origin, route.destination);
        if self.crashed.contains(&route.destination) {
            return Err(SystemError::PeerDown(route.destination));
        }
        Ok(route.destination)
    }

    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// `Update(Domain Connectivity)` — every schema's responsible peer
    /// publishes `{Schema, InDegree, OutDegree}` under `Hash(Domain)`,
    /// replacing its previous record (§3.1). Returns records published.
    pub fn publish_connectivity(&mut self, origin: PeerId) -> Result<usize, SystemError> {
        let records = self.registry.degree_records();
        let domain_key = self.keyspace().domain_key(&self.config.domain);
        // Remove stale records for the same schemas, then insert fresh.
        let stale: Vec<MediationItem> = self
            .items_at(&domain_key)
            .into_iter()
            .filter(|i| matches!(i, MediationItem::Connectivity(_)))
            .collect();
        for s in stale {
            self.overlay.update(
                origin,
                UpdateOp::Delete,
                domain_key.clone(),
                s,
                &mut self.rng,
            )?;
        }
        let n = records.len();
        for r in records {
            self.overlay.update(
                origin,
                UpdateOp::Insert,
                domain_key.clone(),
                MediationItem::Connectivity(r),
                &mut self.rng,
            )?;
        }
        Ok(n)
    }

    /// Ask the domain peer for the connectivity indicator: one
    /// `Retrieve(Hash(Domain))` plus local aggregation (§3.1–3.2).
    pub fn connectivity_indicator(&mut self, origin: PeerId) -> Result<f64, SystemError> {
        let domain_key = self.keyspace().domain_key(&self.config.domain);
        let (items, _) = self.overlay.retrieve(origin, &domain_key, &mut self.rng)?;
        let records: Vec<DegreeRecord> = items
            .into_iter()
            .filter_map(|i| match i {
                MediationItem::Connectivity(r) => Some(r),
                _ => None,
            })
            .collect();
        Ok(gridvine_semantic::connectivity_indicator(&records))
    }

    /// Fetch the mappings stored at a schema's key space via the
    /// overlay: `Retrieve(Hash(schema))`.
    pub fn mappings_at_schema(
        &mut self,
        origin: PeerId,
        schema: &SchemaId,
    ) -> Result<Vec<Mapping>, SystemError> {
        let key = self.key_of(schema.as_str());
        let (items, route) = self.overlay.retrieve(origin, &key, &mut self.rng)?;
        // The retrieve was routed and charged; the retry protocol
        // decides whether the mapping list ever comes back.
        self.proto_request(origin, route.destination)?;
        Ok(items
            .into_iter()
            .filter_map(|i| match i {
                MediationItem::Mapping { mapping, .. } => Some(mapping),
                _ => None,
            })
            .collect())
    }

    fn items_at(&self, key: &BitString) -> Vec<MediationItem> {
        let peers = self.topology.responsible(key);
        peers
            .first()
            .map(|p| self.overlay.store(*p).get(key).to_vec())
            .unwrap_or_default()
    }

    // -----------------------------------------------------------------
    // SearchFor (§2.3, §3, §4) lives behind the logical-plan surface:
    // [`GridVineSystem::execute`] (blocking drain) and
    // [`GridVineSystem::open`] (pull-based session) in the [`exec`] and
    // [`session`] modules. The four historical entry points
    // (`resolve_pattern`, `resolve_object_prefix`, `search`,
    // `search_conjunctive`) completed their deprecation cycle and are
    // gone — see the migration table in [`session`].
    // -----------------------------------------------------------------
}

/// Apply one mapping to a query (predicate view unfolding) without a
/// registry — used on mapping lists fetched from the DHT.
pub fn apply_mapping(
    query: &TriplePatternQuery,
    mapping: &Mapping,
    dir: gridvine_semantic::Direction,
) -> Option<TriplePatternQuery> {
    let (schema, attr) = gridvine_semantic::query_schema(query).ok()?;
    if mapping.applicable_from(&schema) != Some(dir) {
        return None;
    }
    let new_attr = mapping.translate(&attr, dir)?;
    let dest = mapping.destination(dir);
    let pattern = gridvine_rdf::TriplePattern::new(
        query.pattern.subject.clone(),
        gridvine_rdf::PatternTerm::constant(Term::uri(format!("{dest}#{new_attr}"))),
        query.pattern.object.clone(),
    );
    TriplePatternQuery::new(query.distinguished.clone(), pattern).ok()
}

#[cfg(test)]
mod tests {
    use super::exec::{QueryOptions, QueryOutcome};
    use super::*;
    use crate::plan::QueryPlan;
    use gridvine_rdf::{PatternTerm, TriplePattern};

    /// The reformulated `SearchFor` as most tests drive it: a closure
    /// plan drained through `execute`.
    fn search(
        sys: &mut GridVineSystem,
        origin: PeerId,
        q: &TriplePatternQuery,
        strategy: Strategy,
    ) -> Result<QueryOutcome, SystemError> {
        sys.execute(
            origin,
            &QueryPlan::search(q.clone()),
            &QueryOptions::new().strategy(strategy),
        )
    }

    fn fig2_system() -> GridVineSystem {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("EMP", ["SystematicName"]))
            .unwrap();
        sys.insert_mapping(
            p0,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        )
        .unwrap();
        // Figure 2 data: two EMBL records, one EMP record.
        for (s, p, o) in [
            ("seq:A78712", "EMBL#Organism", "Aspergillus niger"),
            ("seq:A78767", "EMBL#Organism", "Aspergillus nidulans"),
            (
                "seq:NEN94295-05",
                "EMP#SystematicName",
                "Aspergillus oryzae",
            ),
            ("seq:X99999", "EMP#SystematicName", "Escherichia coli"),
        ] {
            sys.insert_triple(p0, Triple::new(s, p, Term::literal(o)))
                .unwrap();
        }
        sys
    }

    #[test]
    fn single_pattern_resolution() {
        let mut sys = fig2_system();
        let q = TriplePatternQuery::example_aspergillus();
        let out = sys
            .execute(
                PeerId(7),
                &QueryPlan::pattern(q.clone()),
                &QueryOptions::default(),
            )
            .unwrap();
        let results = out.terms(&q.distinguished);
        assert_eq!(results.len(), 2);
        assert!(results.contains(&Term::uri("seq:A78712")));
        assert!(out.stats.messages <= 2 * sys.topology().depth() as u64 + 2);
    }

    #[test]
    fn figure2_search_aggregates_across_schemas() {
        // Without mappings: 2 results. With the EMBL≡EMP mapping the
        // reformulated query finds the EMP record too (Figure 2).
        let mut sys = fig2_system();
        let q = TriplePatternQuery::example_aspergillus();
        for strategy in [Strategy::Iterative, Strategy::Recursive] {
            let out = search(&mut sys, PeerId(3), &q, strategy).unwrap();
            let results = out.terms(&q.distinguished);
            assert_eq!(results.len(), 3, "{strategy:?}: {results:?}");
            assert!(results.contains(&Term::uri("seq:NEN94295-05")));
            assert_eq!(out.stats.reformulations, 1);
            assert_eq!(out.stats.schemas_visited, 2);
            assert_eq!(
                out.accessions(),
                BTreeSet::from([
                    "A78712".to_string(),
                    "A78767".to_string(),
                    "NEN94295-05".to_string()
                ])
            );
            assert!(out.stats.messages > 0);
        }
    }

    #[test]
    fn deprecated_mapping_stops_reformulation() {
        let mut sys = fig2_system();
        let id = sys.registry().mappings().next().map(|m| m.id).unwrap();
        sys.deprecate_mapping(PeerId(0), id).unwrap();
        let q = TriplePatternQuery::example_aspergillus();
        let out = search(&mut sys, PeerId(3), &q, Strategy::Iterative).unwrap();
        assert_eq!(out.rows.len(), 2, "EMP record must be unreachable");
        assert_eq!(out.stats.reformulations, 0);
        // The DHT copies must reflect the deprecation too.
        let maps = sys
            .mappings_at_schema(PeerId(1), &SchemaId::new("EMBL"))
            .unwrap();
        assert!(maps.iter().all(|m| !m.is_active()));
    }

    #[test]
    fn ttl_zero_stops_all_reformulation() {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 16,
            ttl: 0,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("EMP", ["SystematicName"]))
            .unwrap();
        sys.insert_mapping(
            p0,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        )
        .unwrap();
        let q = TriplePatternQuery::example_aspergillus();
        let out = search(&mut sys, PeerId(1), &q, Strategy::Iterative).unwrap();
        assert_eq!(out.stats.reformulations, 0);
        assert_eq!(out.stats.schemas_visited, 1);
    }

    #[test]
    fn connectivity_round_trip_via_dht() {
        let mut sys = fig2_system();
        let n = sys.publish_connectivity(PeerId(0)).unwrap();
        assert_eq!(n, 2);
        let ci = sys.connectivity_indicator(PeerId(9)).unwrap();
        // Two schemas joined by an equivalence mapping: both (1,1) ⇒ 0.
        assert!((ci - 0.0).abs() < 1e-12);
        // Republishing replaces rather than duplicates.
        sys.publish_connectivity(PeerId(0)).unwrap();
        let ci2 = sys.connectivity_indicator(PeerId(9)).unwrap();
        assert_eq!(ci, ci2);
    }

    #[test]
    fn unroutable_query_reports_not_routable() {
        let mut sys = fig2_system();
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("p"),
                PatternTerm::constant(Term::literal("%wild%")),
            ),
        )
        .unwrap();
        assert!(matches!(
            sys.execute(
                PeerId(0),
                &QueryPlan::pattern(q.clone()),
                &QueryOptions::default()
            ),
            Err(SystemError::NotRoutable)
        ));
        assert!(matches!(
            search(&mut sys, PeerId(0), &q, Strategy::Iterative),
            Err(SystemError::NoQuerySchema)
        ));
    }

    #[test]
    fn recursive_uses_no_more_messages_than_iterative_on_chains() {
        // Chain of 5 schemas; the iterative origin pays a round trip per
        // schema, the recursive expansion forwards instead.
        let build = || {
            let mut sys = GridVineSystem::new(GridVineConfig {
                peers: 64,
                ..GridVineConfig::default()
            });
            let p0 = PeerId(0);
            for i in 0..5 {
                sys.insert_schema(p0, Schema::new(format!("S{i}").as_str(), [format!("a{i}")]))
                    .unwrap();
            }
            for i in 0..4 {
                sys.insert_mapping(
                    p0,
                    format!("S{i}").as_str(),
                    format!("S{}", i + 1).as_str(),
                    MappingKind::Equivalence,
                    Provenance::Manual,
                    vec![Correspondence::new(format!("a{i}"), format!("a{}", i + 1))],
                )
                .unwrap();
            }
            for i in 0..5 {
                sys.insert_triple(
                    p0,
                    Triple::new(
                        format!("seq:R{i}").as_str(),
                        format!("S{i}#a{i}").as_str(),
                        Term::literal("shared-value"),
                    ),
                )
                .unwrap();
            }
            sys
        };
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::constant(Term::uri("S0#a0")),
                PatternTerm::constant(Term::literal("shared-value")),
            ),
        )
        .unwrap();
        let mut iter_sys = build();
        let it = search(&mut iter_sys, PeerId(9), &q, Strategy::Iterative).unwrap();
        let mut rec_sys = build();
        let rec = search(&mut rec_sys, PeerId(9), &q, Strategy::Recursive).unwrap();
        assert_eq!(it.rows.len(), 5);
        assert_eq!(rec.rows.len(), 5);
        assert!(
            rec.stats.messages <= it.stats.messages,
            "recursive {} should not exceed iterative {}",
            rec.stats.messages,
            it.stats.messages
        );
    }

    #[test]
    fn object_prefix_range_search() {
        let mut sys = fig2_system();
        // (?x, ?p, "Aspergillus%") — rangeable on the object prefix,
        // across predicates of both schemas.
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("p"),
                PatternTerm::constant(Term::literal("Aspergillus%")),
            ),
        )
        .unwrap();
        let out = sys
            .execute(
                PeerId(9),
                &QueryPlan::object_prefix(q.clone()),
                &QueryOptions::default(),
            )
            .unwrap();
        let results = out.terms(&q.distinguished);
        // All three Aspergillus records, EMBL and EMP alike, found by
        // one range scan with no mappings involved.
        assert_eq!(results.len(), 3, "{results:?}");
        assert!(results.contains(&Term::uri("seq:NEN94295-05")));
        assert!(out.stats.messages > 0);
        // A plain pattern plan cannot route this query at all.
        assert!(matches!(
            sys.execute(PeerId(9), &QueryPlan::pattern(q), &QueryOptions::default()),
            Err(SystemError::NotRoutable)
        ));
    }

    #[test]
    fn object_prefix_requires_order_preserving_hash() {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 16,
            hash: HashKind::Uniform,
            ..GridVineConfig::default()
        });
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("p"),
                PatternTerm::constant(Term::literal("Asp%")),
            ),
        )
        .unwrap();
        assert!(matches!(
            sys.execute(
                PeerId(0),
                &QueryPlan::object_prefix(q),
                &QueryOptions::default()
            ),
            Err(SystemError::NotRoutable)
        ));
    }

    #[test]
    fn object_prefix_rejects_non_prefix_patterns() {
        let mut sys = fig2_system();
        for bad in ["%Aspergillus%", "Aspergillus", "%", "a%b%"] {
            let q = TriplePatternQuery::new(
                "x",
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::var("p"),
                    PatternTerm::constant(Term::literal(bad)),
                ),
            )
            .unwrap();
            assert!(
                matches!(
                    sys.execute(
                        PeerId(0),
                        &QueryPlan::object_prefix(q),
                        &QueryOptions::default()
                    ),
                    Err(SystemError::NotRoutable)
                ),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn crash_during_commit_never_leaves_a_half_committed_mapping() {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("EMP", ["SystematicName"]))
            .unwrap();
        for (s, p, o) in [
            ("seq:A78712", "EMBL#Organism", "Aspergillus niger"),
            ("seq:A78767", "EMBL#Organism", "Aspergillus nidulans"),
            (
                "seq:NEN94295-05",
                "EMP#SystematicName",
                "Aspergillus oryzae",
            ),
        ] {
            sys.insert_triple(p0, Triple::new(s, p, Term::literal(o)))
                .unwrap();
        }
        // Crash the target key space's responsible peer between the two
        // key-space writes: the commit must roll back entirely.
        let target_key = sys.key_of("EMP");
        let victim = *sys.topology().responsible(&target_key).first().unwrap();
        sys.arm_commit_crash(victim);
        let res = sys.insert_mapping(
            p0,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        );
        assert!(matches!(res, Err(SystemError::PeerDown(_))), "{res:?}");
        assert_eq!(sys.registry().mapping_count(), 0, "registry rolled back");
        // After recovery + scan, no copy survives at either key space
        // (the scan sweeps up whatever a cut-short rollback left).
        sys.recover_peer(victim);
        let rec = sys.recover_mapping_commits(p0).unwrap();
        assert_eq!(rec.repaired_copies, 0, "nothing half-live to repair");
        for schema in ["EMBL", "EMP"] {
            let maps = sys
                .mappings_at_schema(PeerId(1), &SchemaId::new(schema))
                .unwrap();
            assert!(maps.is_empty(), "{schema}: {maps:?}");
        }
        // And no query ever observes a one-way mapping: the EMP record
        // stays unreachable from the EMBL query.
        let q = TriplePatternQuery::example_aspergillus();
        let out = search(&mut sys, PeerId(3), &q, Strategy::Iterative).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.stats.reformulations, 0);
        // Rerunning the insert now commits both key spaces.
        sys.insert_mapping(
            p0,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        )
        .unwrap();
        let out = search(&mut sys, PeerId(3), &q, Strategy::Iterative).unwrap();
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn recovery_scan_repairs_a_manufactured_half_commit() {
        let mut sys = fig2_system();
        let m = sys.registry().mappings().next().unwrap().clone();
        // Manufacture the seed's one-way bug: delete the target-side
        // copy behind the commit path's back.
        let keys = sys.keyspace().mapping_keys(&m);
        assert_eq!(keys.len(), 2, "equivalence writes both key spaces");
        let (key, at_source) = keys[1].clone();
        sys.overlay
            .update(
                PeerId(0),
                UpdateOp::Delete,
                key,
                MediationItem::Mapping {
                    mapping: m.clone(),
                    at_source,
                },
                &mut sys.rng,
            )
            .unwrap();
        assert!(sys
            .mappings_at_schema(PeerId(1), &SchemaId::new("EMP"))
            .unwrap()
            .is_empty());
        let rec = sys.recover_mapping_commits(PeerId(0)).unwrap();
        assert_eq!(
            rec,
            CommitRecovery {
                repaired_copies: 1,
                orphans_removed: 0
            }
        );
        assert_eq!(
            sys.mappings_at_schema(PeerId(1), &SchemaId::new("EMP"))
                .unwrap()
                .len(),
            1
        );
        // Idempotent: a second scan finds nothing.
        assert_eq!(
            sys.recover_mapping_commits(PeerId(0)).unwrap(),
            CommitRecovery::default()
        );
    }

    /// Three schemas with a correct Manual chain and one wrong
    /// Automatic closure — the inconsistent triangle the Bayesian
    /// analysis condemns (§3.2).
    fn triangle_system() -> (GridVineSystem, MappingId) {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("A", ["xa", "wa"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("B", ["xb", "wb"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("C", ["xc", "wc"]))
            .unwrap();
        sys.insert_mapping(
            p0,
            "A",
            "B",
            MappingKind::Subsumption,
            Provenance::Manual,
            vec![Correspondence::new("xa", "xb")],
        )
        .unwrap();
        sys.insert_mapping(
            p0,
            "B",
            "C",
            MappingKind::Subsumption,
            Provenance::Manual,
            vec![Correspondence::new("xb", "xc")],
        )
        .unwrap();
        // The closure is wrong: xc should come back as xa, not wa.
        let bad = sys
            .insert_mapping(
                p0,
                "C",
                "A",
                MappingKind::Subsumption,
                Provenance::Automatic,
                vec![Correspondence::new("xc", "wa")],
            )
            .unwrap();
        (sys, bad)
    }

    #[test]
    fn assessment_pass_quarantines_and_charges_probes() {
        let (mut sys, bad) = triangle_system();
        let origin = PeerId(5);
        let clock_before = sys.exec_state(origin).clock;
        let cfg = gridvine_semantic::BayesConfig::default();
        let report = sys.assessment_pass(origin, &cfg).unwrap();
        assert!(report.cycles_probed >= 1);
        assert_eq!(report.stats.assessment_probes, report.cycles_probed);
        assert!(
            report.stats.messages > 0,
            "cycle probes cost overlay messages"
        );
        assert!(report.stats.requests >= report.cycles_probed);
        assert_eq!(report.stats.sends, report.stats.requests);
        assert!(report.elapsed > SimDuration::ZERO);
        assert!(sys.exec_state(origin).clock > clock_before);
        assert_eq!(report.quarantined, vec![bad]);
        assert_eq!(report.stats.quarantined_mappings, 1);
        assert_eq!(
            sys.registry().mapping(bad).unwrap().status,
            MappingStatus::Quarantined
        );
        // The DHT copies reflect the quarantine.
        let maps = sys
            .mappings_at_schema(PeerId(1), &SchemaId::new("C"))
            .unwrap();
        assert!(maps.iter().all(|m| !m.is_active()));
        // A second pass paroles and re-confirms: same quarantine set,
        // nothing reactivated, statuses unchanged.
        let again = sys.assessment_pass(origin, &cfg).unwrap();
        assert_eq!(again.quarantined, vec![bad]);
        assert!(again.reactivated.is_empty());
        assert_eq!(
            sys.registry().mapping(bad).unwrap().status,
            MappingStatus::Quarantined
        );
    }

    #[test]
    fn assessment_pass_reactivates_a_cleared_quarantine() {
        let (mut sys, bad) = triangle_system();
        let p0 = PeerId(0);
        // Quarantine a *good* manual edge by hand, and retire the bad
        // closure so the remaining evidence is clean.
        sys.deprecate_mapping(p0, bad).unwrap();
        let good = sys
            .registry()
            .mappings()
            .find(|m| m.is_active())
            .map(|m| m.id)
            .unwrap();
        assert!(sys.quarantine_mapping(p0, good).unwrap());
        assert!(!sys.registry().mapping(good).unwrap().is_active());
        let report = sys
            .assessment_pass(p0, &gridvine_semantic::BayesConfig::default())
            .unwrap();
        assert!(report.reactivated.contains(&good), "{report:?}");
        assert!(sys.registry().mapping(good).unwrap().is_active());
    }

    #[test]
    fn adversary_gossip_publishes_dht_copies() {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            semantic_fault: gridvine_semantic::SemanticFaultConfig::stale(1.0),
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("EMP", ["SystematicName"]))
            .unwrap();
        let id = sys
            .insert_mapping(
                p0,
                "EMBL",
                "EMP",
                MappingKind::Equivalence,
                Provenance::Manual,
                vec![Correspondence::new("Organism", "SystematicName")],
            )
            .unwrap();
        sys.deprecate_mapping(p0, id).unwrap();
        let injected = sys.adversary_gossip(p0).unwrap();
        assert_eq!(injected.len(), 1, "stale rate 1.0 with a candidate");
        assert_eq!(sys.semantic_fault_counters().stale, 1);
        // The injected copy is visible through the DHT, so query
        // reformulation would use it like any honest mapping.
        let maps = sys
            .mappings_at_schema(PeerId(1), &SchemaId::new("EMBL"))
            .unwrap();
        assert!(
            maps.iter().any(|m| m.id == injected[0].id && m.is_active()),
            "{maps:?}"
        );
    }

    #[test]
    fn null_adversary_gossip_is_free() {
        let mut sys = fig2_system();
        let before = sys.messages_sent();
        let epoch = sys.registry().epoch();
        for _ in 0..10 {
            assert!(sys.adversary_gossip(PeerId(0)).unwrap().is_empty());
        }
        assert_eq!(sys.messages_sent(), before);
        assert_eq!(sys.registry().epoch(), epoch);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sys = GridVineSystem::new(GridVineConfig {
                peers: 32,
                seed,
                ..GridVineConfig::default()
            });
            let p0 = PeerId(0);
            sys.insert_schema(p0, Schema::new("EMBL", ["Organism"]))
                .unwrap();
            sys.insert_triple(
                p0,
                Triple::new(
                    "seq:P1",
                    "EMBL#Organism",
                    Term::literal("Aspergillus niger"),
                ),
            )
            .unwrap();
            let q = TriplePatternQuery::example_aspergillus();
            let out = search(&mut sys, PeerId(5), &q, Strategy::Iterative).unwrap();
            (out.terms(&q.distinguished), out.stats.messages)
        };
        assert_eq!(run(1), run(1));
    }
}
