//! Pull-based query sessions: incremental `SearchFor` with genuine
//! early termination.
//!
//! GridVine's query model is inherently incremental — reformulations
//! fan out hop-by-hop through the mapping network and results trickle
//! back per destination peer — but a monolithic
//! [`GridVineSystem::execute`] drains the whole closure walk before
//! returning anything. A [`QuerySession`] exposes the walk itself:
//! [`GridVineSystem::open`] validates the plan and *performs no work*;
//! each [`QuerySession::next_event`] pull advances the underlying
//! [`ClosureWalk`](gridvine_semantic::ClosureWalk) (or prefix sweep,
//! or join pipeline) by **one routed
//! subquery** and yields the [`ResultEvent`]s that step produced.
//!
//! Early termination is structural, not cosmetic: a subquery is only
//! issued by a pull, so dropping the session — or hitting the
//! [`QueryOptions::limit`] result cap — stops the dissemination right
//! there and the remaining remote subqueries are *never sent*. A
//! `limit(k)` query over a deep mapping chain pays for the hops that
//! produced its `k` rows, not for the whole closure.
//!
//! ## Migration from the monolithic entry points
//!
//! The four legacy `SearchFor` methods (deleted in this release after
//! one deprecation cycle) map onto plans + sessions:
//!
//! | Removed entry point | Plan + session |
//! |---|---|
//! | `resolve_pattern(p, &q)` | `open(p, &QueryPlan::pattern(q), &opts)` |
//! | `resolve_object_prefix(p, &q)` | `open(p, &QueryPlan::object_prefix(q), &opts)` |
//! | `search(p, &q, strategy)` | `open(p, &QueryPlan::search(q), &opts.strategy(strategy))` |
//! | `search_conjunctive(p, &q, s, m)` | `open(p, &QueryPlan::conjunctive(q), &opts.strategy(s).join_mode(m))` |
//!
//! Draining a session and calling [`GridVineSystem::execute`] are the
//! same thing — `execute` *is* `open` + drain (+ the canonical result
//! sort) — so callers that want the old blocking behaviour keep using
//! `execute` and get identical results and message accounting.
//!
//! ## Events
//!
//! * [`ResultEvent::Rows`] — fresh **distinct** solution rows
//!   (projected onto the distinguished variables), in discovery order,
//!   streamed off the destination stores' cursor layer. A row is never
//!   repeated across batches.
//! * [`ResultEvent::SchemaHop`] — the closure walk resolved the query
//!   at a schema: mapping-path depth and path quality (the minimum
//!   mapping quality along the path, the confidence proxy of
//!   [`Reformulation::path_quality`](gridvine_semantic::Reformulation::path_quality)).
//!   Emitted by single-pattern closure plans; join plans run their
//!   per-pattern sweeps as whole units and report them via `Stats`.
//! * [`ResultEvent::Stats`] — the [`ExecStats`] *delta* of the step
//!   (messages, subqueries, reformulations, …) since the previous
//!   event. Summing the deltas of a drained session reproduces
//!   [`QueryOutcome::stats`]. Every step emits one, so progress is
//!   observable even while a hop returns no rows.
//!
//! ## The reformulation-closure cache
//!
//! Under the iterative strategy, the closure a pattern expands to
//! depends only on its predicate and the mapping network. The system
//! memoizes each fully-expanded closure in an epoch-keyed
//! [`ClosureCache`](gridvine_semantic::ClosureCache): while the
//! registry [`epoch`](gridvine_semantic::MappingRegistry::epoch) is
//! unchanged, a repeated plan replays the recorded hops — skipping the
//! BFS *and* its per-schema mapping-list retrieves — and a mapping
//! insert / deprecation / repair invalidates everything at once.
//! Early-terminated walks record nothing (a partial closure must never
//! be replayed as complete); the recursive strategy never consults the
//! cache, since delegating discovery to intermediate peers is that
//! strategy's point.
//!
//! ```
//! use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, ResultEvent};
//! use gridvine_pgrid::PeerId;
//! use gridvine_rdf::{Term, Triple, TriplePatternQuery};
//! use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
//!
//! let mut sys = GridVineSystem::new(GridVineConfig::default());
//! let p = PeerId(0);
//! sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))?;
//! sys.insert_schema(p, Schema::new("EMP", ["SystematicName"]))?;
//! sys.insert_mapping(p, "EMBL", "EMP", MappingKind::Equivalence, Provenance::Manual,
//!     vec![Correspondence::new("Organism", "SystematicName")])?;
//! sys.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
//!     Term::literal("Aspergillus niger")))?;
//!
//! let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
//! let mut session = sys.open(PeerId(3), &plan, &QueryOptions::default())?;
//! while let Some(event) = session.next_event()? {
//!     match event {
//!         ResultEvent::SchemaHop { schema, depth, quality } => {
//!             println!("answering in {schema} at depth {depth} (quality {quality})");
//!         }
//!         ResultEvent::Rows(batch) => println!("{} new rows", batch.len()),
//!         ResultEvent::Stats(delta) => println!("+{} messages", delta.messages),
//!     }
//! }
//! let outcome = session.into_outcome();
//! assert_eq!(outcome.rows.len(), 1);
//! # Ok::<(), gridvine_core::SystemError>(())
//! ```

use super::conjunctive::JoinMode;
use super::exec::{one_var_row, ClosureSweep, ExecStats, QueryOptions, QueryOutcome};
use super::*;
use crate::plan::{object_prefix_core, QueryPlan};
use gridvine_rdf::join::{hash_join_rows, TermInterner, VarTable, UNBOUND};
use gridvine_rdf::{Binding, ConjunctiveQuery};
use std::collections::{HashMap, VecDeque};

/// One increment of a [`QuerySession`] (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum ResultEvent {
    /// Fresh distinct solution rows, projected onto the distinguished
    /// variables, in discovery order.
    Rows(Vec<Binding>),
    /// The closure walk resolved the query at `schema`, reached over
    /// `depth` mapping applications with path quality `quality`.
    SchemaHop {
        schema: SchemaId,
        depth: usize,
        quality: f64,
    },
    /// Counter movement since the previous event.
    Stats(ExecStats),
}

/// How the accumulated rows are ordered by [`QuerySession::into_outcome`]
/// (the canonical order the drained `execute` promises).
enum RowOrder {
    /// Single-pattern plans: by the distinguished variable's term.
    ByTerm(String),
    /// Join plans: by the row's display form.
    ByDisplay,
}

/// Group queue of one bound-substitution pattern: rows agreeing on the
/// pattern's already-bound variables share one substituted instance.
struct Groups {
    bound_slots: Vec<(usize, String)>,
    queue: VecDeque<(usize, Vec<usize>)>,
}

/// Per-pattern progress of a join plan.
enum JoinPhase {
    /// Independent mode: one full network sweep per pattern, in written
    /// order; fold + project once the last sweep lands.
    Independent {
        next_pattern: usize,
        sets: Vec<Vec<Vec<u64>>>,
    },
    /// Bound substitution in the planner's order: one substituted-group
    /// resolution per pull; rows complete at the last pattern.
    Bound {
        oi: usize,
        groups: Option<Groups>,
        next: Vec<Vec<u64>>,
    },
}

/// Join-plan execution state: the hash-join binding engine of
/// [`gridvine_rdf::join`], advanced one unit of network work per pull.
struct JoinState<'a> {
    query: &'a ConjunctiveQuery,
    order: &'a [usize],
    vars: VarTable<'a>,
    interner: TermInterner,
    /// Partial solution rows (term-code vectors over the variable slots).
    rows: Vec<Vec<u64>>,
    phase: JoinPhase,
    /// π onto the distinguished variables: slots into `rows`' layout and
    /// the projected table; `seen` dedups on projected codes before any
    /// term is materialized.
    slots: Vec<usize>,
    proj: VarTable<'a>,
    seen: BTreeSet<Vec<u64>>,
}

enum State<'a> {
    Done,
    /// One routed lookup.
    Pattern {
        query: &'a TriplePatternQuery,
    },
    /// One peer-region probe per pull.
    Prefix {
        query: &'a TriplePatternQuery,
        probes: std::vec::IntoIter<BitString>,
        seen: BTreeSet<Term>,
    },
    /// One closure hop per pull.
    Closure {
        query: &'a TriplePatternQuery,
        sweep: Box<ClosureSweep<'a>>,
        seen: BTreeSet<Term>,
    },
    Join(Box<JoinState<'a>>),
}

/// A lazily-advancing handle on one executing [`QueryPlan`] — see the
/// [module docs](self) for the event protocol, early-termination
/// guarantees and the closure cache.
///
/// The session borrows the system mutably: queries run one at a time,
/// exactly as they did through `execute` (which is now a drain of this
/// handle).
pub struct QuerySession<'a> {
    sys: &'a mut GridVineSystem,
    origin: PeerId,
    strategy: Strategy,
    ttl: usize,
    limit: Option<usize>,
    start_messages: u64,
    /// Cumulative counters (messages tracked separately off the overlay
    /// counter).
    stats: ExecStats,
    /// The cumulative state already reported through `Stats` deltas.
    reported: ExecStats,
    /// Accumulated distinct solution rows, discovery order.
    rows: Vec<Binding>,
    order_by: RowOrder,
    events: VecDeque<ResultEvent>,
    /// A step failure waiting to surface once the events the failing
    /// step already produced have been delivered.
    error: Option<SystemError>,
    state: State<'a>,
}

impl GridVineSystem {
    /// Open a pull-based session on `plan` — the incremental
    /// counterpart of [`GridVineSystem::execute`].
    ///
    /// Validates the plan shape (the same errors `execute` reports:
    /// [`SystemError::NotRoutable`], [`SystemError::NoQuerySchema`])
    /// but issues **no** subquery: all network work happens inside
    /// [`QuerySession::next_event`] pulls, so a dropped session costs
    /// nothing further.
    pub fn open<'a>(
        &'a mut self,
        origin: PeerId,
        plan: &'a QueryPlan,
        options: &QueryOptions,
    ) -> Result<QuerySession<'a>, SystemError> {
        let ttl = options.ttl.unwrap_or(self.config.ttl);
        let state = match plan {
            QueryPlan::Pattern { query } => {
                if query.pattern.routing_constant().is_none() {
                    return Err(SystemError::NotRoutable);
                }
                State::Pattern { query }
            }
            QueryPlan::ObjectPrefix { query } => {
                if self.config.hash != HashKind::OrderPreserving {
                    return Err(SystemError::NotRoutable);
                }
                let Some(prefix) = object_prefix_core(&query.pattern) else {
                    return Err(SystemError::NotRoutable);
                };
                let key_prefix = self.keyspace().prefix_key(prefix);
                let probes: Vec<BitString> = self
                    .overlay
                    .range_regions(&key_prefix)
                    .into_iter()
                    .map(|region| {
                        if region.len() >= key_prefix.len() {
                            region
                        } else {
                            key_prefix.clone()
                        }
                    })
                    .collect();
                State::Prefix {
                    query,
                    probes: probes.into_iter(),
                    seen: BTreeSet::new(),
                }
            }
            QueryPlan::Closure { query } => {
                // The `SearchFor` contract requires a schema'd predicate
                // (§2.3); a schema-less pattern is an error here, not a
                // plain lookup.
                let (schema, attr) = gridvine_semantic::query_schema(query)
                    .map_err(|_| SystemError::NoQuerySchema)?;
                let sweep = ClosureSweep::open(
                    self,
                    origin,
                    &query.pattern,
                    schema,
                    attr,
                    options.strategy,
                    ttl,
                );
                State::Closure {
                    query,
                    sweep: Box::new(sweep),
                    seen: BTreeSet::new(),
                }
            }
            QueryPlan::Join { query, order } => {
                let vars = VarTable::from_patterns(&query.patterns);
                let mut slots = Vec::with_capacity(query.distinguished.len());
                let mut proj = VarTable::new();
                // `slots` and `proj` share one filtered name set so a
                // distinguished variable absent from every pattern is
                // skipped rather than misaligning names.
                for d in &query.distinguished {
                    if let Some(s) = vars.slot(d) {
                        slots.push(s);
                        proj.slot_of(d);
                    }
                }
                let rows = vec![vars.empty_row()];
                let phase = match options.join_mode {
                    JoinMode::Independent => JoinPhase::Independent {
                        next_pattern: 0,
                        sets: Vec::with_capacity(query.patterns.len()),
                    },
                    JoinMode::BoundSubstitution => JoinPhase::Bound {
                        oi: 0,
                        groups: None,
                        next: Vec::new(),
                    },
                };
                State::Join(Box::new(JoinState {
                    query,
                    order,
                    vars,
                    interner: TermInterner::new(),
                    rows,
                    phase,
                    slots,
                    proj,
                    seen: BTreeSet::new(),
                }))
            }
        };
        let order_by = match plan {
            QueryPlan::Join { .. } => RowOrder::ByDisplay,
            QueryPlan::Pattern { query }
            | QueryPlan::ObjectPrefix { query }
            | QueryPlan::Closure { query } => RowOrder::ByTerm(query.distinguished.clone()),
        };
        Ok(QuerySession {
            origin,
            strategy: options.strategy,
            ttl,
            limit: options.limit,
            start_messages: self.overlay.messages_sent(),
            stats: ExecStats::default(),
            reported: ExecStats::default(),
            rows: Vec::new(),
            order_by,
            events: VecDeque::new(),
            error: None,
            state,
            sys: self,
        })
    }
}

impl<'a> QuerySession<'a> {
    /// Advance by (at most) one routed subquery and return the next
    /// [`ResultEvent`], or `Ok(None)` once the plan is fully drained or
    /// the result limit terminated it. Errors end the session: events
    /// the failing step already produced (rows that *were* shipped and
    /// charged) are delivered first, then the error surfaces exactly
    /// once, then the session reports drained.
    pub fn next_event(&mut self) -> Result<Option<ResultEvent>, SystemError> {
        loop {
            if let Some(ev) = self.events.pop_front() {
                return Ok(Some(ev));
            }
            if let Some(e) = self.error.take() {
                return Err(e);
            }
            if matches!(self.state, State::Done) {
                return Ok(None);
            }
            if let Err(e) = self.step() {
                self.state = State::Done;
                self.error = Some(e);
            }
        }
    }

    /// Cumulative execution counters so far (messages included).
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats;
        s.messages = self.sys.overlay.messages_sent() - self.start_messages;
        s
    }

    /// Distinct solution rows accumulated so far, in discovery order.
    pub fn rows(&self) -> &[Binding] {
        &self.rows
    }

    /// The plan has no work left (drained, limit-terminated or failed).
    pub fn is_complete(&self) -> bool {
        matches!(self.state, State::Done) && self.events.is_empty()
    }

    /// Finish the session: the rows accumulated so far in the canonical
    /// order (sorted as `execute` returns them) plus cumulative stats.
    /// Valid at any point — after a full drain this is exactly the
    /// [`QueryOutcome`] `execute` would have returned.
    pub fn into_outcome(self) -> QueryOutcome {
        let mut stats = self.stats;
        stats.messages = self.sys.overlay.messages_sent() - self.start_messages;
        let mut rows = self.rows;
        match &self.order_by {
            RowOrder::ByTerm(var) => rows.sort_by(|a, b| a.get(var).cmp(&b.get(var))),
            RowOrder::ByDisplay => rows.sort_by_key(|b| b.to_string()),
        }
        QueryOutcome { rows, stats }
    }

    /// The result cap has been reached.
    fn limit_reached(&self) -> bool {
        self.limit.is_some_and(|k| self.rows.len() >= k)
    }

    /// Queue the step's `Stats` delta (always emitted: every step does
    /// accountable work, so a drain observes monotone progress).
    fn emit_stats_delta(&mut self) {
        let cur = self.stats();
        let delta = ExecStats {
            messages: cur.messages - self.reported.messages,
            subqueries: cur.subqueries - self.reported.subqueries,
            reformulations: cur.reformulations - self.reported.reformulations,
            schemas_visited: cur.schemas_visited - self.reported.schemas_visited,
            failures: cur.failures - self.reported.failures,
            bindings_shipped: cur.bindings_shipped - self.reported.bindings_shipped,
        };
        self.reported = cur;
        self.events.push_back(ResultEvent::Stats(delta));
    }

    /// Admit freshly-shipped bindings of a single-pattern plan: project
    /// onto the distinguished variable, dedup against `seen`, append to
    /// the session rows. Returns `(batch, limit_hit)`.
    fn admit_terms(
        &mut self,
        seen: &mut BTreeSet<Term>,
        var: &str,
        bindings: &[Binding],
    ) -> (Vec<Binding>, bool) {
        let mut batch = Vec::new();
        for b in bindings {
            let Some(t) = b.get(var) else { continue };
            if !seen.insert(t.clone()) {
                continue;
            }
            let row = one_var_row(var, t.clone());
            self.rows.push(row.clone());
            batch.push(row);
            if self.limit_reached() {
                return (batch, true);
            }
        }
        (batch, false)
    }

    /// Perform one unit of work and queue its events.
    fn step(&mut self) -> Result<(), SystemError> {
        if self.limit_reached() {
            self.state = State::Done;
            return Ok(());
        }
        let mut state = std::mem::replace(&mut self.state, State::Done);
        let result = match &mut state {
            State::Done => Ok(true),
            State::Pattern { query } => self.step_pattern(query),
            State::Prefix {
                query,
                probes,
                seen,
            } => self.step_prefix(query, probes, seen),
            State::Closure { query, sweep, seen } => self.step_closure(query, sweep, seen),
            State::Join(join) => self.step_join(join),
        };
        match result {
            Ok(done) => {
                if !done {
                    self.state = state;
                }
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// [`QueryPlan::Pattern`]: the single routed lookup.
    fn step_pattern(&mut self, query: &TriplePatternQuery) -> Result<bool, SystemError> {
        self.stats.subqueries += 1;
        let bindings = self.sys.resolve_pattern_once(self.origin, &query.pattern)?;
        self.stats.bindings_shipped += bindings.len();
        let mut seen = BTreeSet::new();
        let (batch, _) = self.admit_terms(&mut seen, &query.distinguished, &bindings);
        if !batch.is_empty() {
            self.events.push_back(ResultEvent::Rows(batch));
        }
        self.emit_stats_delta();
        Ok(true)
    }

    /// [`QueryPlan::ObjectPrefix`]: probe the next peer region of the
    /// prefix's bit-region (same regions, routes and response charges
    /// as a range `Retrieve`).
    fn step_prefix(
        &mut self,
        query: &TriplePatternQuery,
        probes: &mut std::vec::IntoIter<BitString>,
        seen: &mut BTreeSet<Term>,
    ) -> Result<bool, SystemError> {
        let Some(probe) = probes.next() else {
            return Ok(true);
        };
        let dest = self.sys.route_retrieve(self.origin, &probe)?;
        self.stats.subqueries += 1;
        let db = &self.sys.local_dbs[dest.index()];
        let bindings: Vec<Binding> = db.match_pattern_iter(&query.pattern).collect();
        self.stats.bindings_shipped += bindings.len();
        let (batch, limit_hit) = self.admit_terms(seen, &query.distinguished, &bindings);
        if !batch.is_empty() {
            self.events.push_back(ResultEvent::Rows(batch));
        }
        self.emit_stats_delta();
        Ok(limit_hit || probes.as_slice().is_empty())
    }

    /// [`QueryPlan::Closure`]: one hop of the reformulation closure —
    /// resolve the (possibly reformulated) pattern at its destination
    /// via the shared [`ClosureSweep`], then expand it (mapping
    /// discovery — skipped outright when the result limit terminates
    /// the walk at this hop, so the discovery messages are never sent).
    fn step_closure(
        &mut self,
        query: &TriplePatternQuery,
        sweep: &mut ClosureSweep<'_>,
        seen: &mut BTreeSet<Term>,
    ) -> Result<bool, SystemError> {
        let Some(hop) = sweep.resolve_next(self.sys, self.origin)? else {
            return Ok(true);
        };
        hop.charge(&mut self.stats);
        self.events.push_back(ResultEvent::SchemaHop {
            schema: hop.schema,
            depth: hop.depth,
            quality: hop.quality,
        });
        let mut limit_hit = false;
        if let Some(bindings) = hop.bindings {
            self.stats.bindings_shipped += bindings.len();
            let (batch, hit) = self.admit_terms(seen, &query.distinguished, &bindings);
            limit_hit = hit;
            if !batch.is_empty() {
                self.events.push_back(ResultEvent::Rows(batch));
            }
        }
        if limit_hit {
            // A truncated walk neither expands nor commits to the
            // cache.
            sweep.discard_pending();
            self.emit_stats_delta();
            return Ok(true);
        }
        sweep.expand_pending(self.sys, self.origin, self.strategy, self.ttl)?;
        self.emit_stats_delta();
        Ok(sweep.is_exhausted())
    }

    /// Project completed join rows onto the distinguished variables,
    /// dedup on codes, admit fresh rows. Returns `(batch, limit_hit)`.
    fn admit_join_rows(
        join: &mut JoinState<'_>,
        completed: &[Vec<u64>],
        rows: &mut Vec<Binding>,
        limit: Option<usize>,
    ) -> (Vec<Binding>, bool) {
        let mut batch = Vec::new();
        for row in completed {
            let projected: Vec<u64> = join.slots.iter().map(|&s| row[s]).collect();
            if !join.seen.insert(projected.clone()) {
                continue;
            }
            let b = join.interner.decode(&projected, &join.proj);
            rows.push(b.clone());
            batch.push(b);
            if limit.is_some_and(|k| rows.len() >= k) {
                return (batch, true);
            }
        }
        (batch, false)
    }

    /// [`QueryPlan::Join`]: one unit of join work — a full pattern
    /// sweep (independent mode) or one substituted-group resolution
    /// (bound substitution).
    fn step_join(&mut self, join: &mut JoinState<'a>) -> Result<bool, SystemError> {
        match &mut join.phase {
            JoinPhase::Independent { .. } => self.step_join_independent(join),
            JoinPhase::Bound { .. } => self.step_join_bound(join),
        }
    }

    /// Independent mode: sweep the next pattern (written order — the
    /// order its message accounting is defined over); after the last
    /// sweep, fold the binding sets through the hash-join engine and
    /// emit the projected rows.
    fn step_join_independent(&mut self, join: &mut JoinState<'a>) -> Result<bool, SystemError> {
        let done = {
            let JoinState {
                query,
                interner,
                vars,
                rows: partial,
                phase,
                ..
            } = &mut *join;
            let JoinPhase::Independent { next_pattern, sets } = phase else {
                unreachable!("phase checked by step_join");
            };
            let pattern = &query.patterns[*next_pattern];
            let net =
                self.sys
                    .sweep_pattern_network(self.origin, pattern, self.strategy, self.ttl)?;
            net.charge(&mut self.stats);
            sets.push(
                net.bindings
                    .iter()
                    .map(|b| interner.encode(b, vars))
                    .collect(),
            );
            *next_pattern += 1;
            if *next_pattern < query.patterns.len() {
                None
            } else {
                // All sweeps landed: fold + project locally.
                let mut rows = std::mem::take(partial);
                for set in sets.iter() {
                    rows = hash_join_rows(&rows, set);
                    if rows.is_empty() {
                        break;
                    }
                }
                Some(rows)
            }
        };
        let Some(completed) = done else {
            self.emit_stats_delta();
            return Ok(false);
        };
        let (batch, _) = Self::admit_join_rows(join, &completed, &mut self.rows, self.limit);
        if !batch.is_empty() {
            self.events.push_back(ResultEvent::Rows(batch));
        }
        self.emit_stats_delta();
        Ok(true)
    }

    /// Bound substitution: resolve one substituted instance (one group
    /// of rows agreeing on the pattern's bound variables). Rows
    /// complete at the last pattern of the planner's order — reaching
    /// the result limit there skips every remaining group, so the
    /// leftover subqueries are never issued.
    fn step_join_bound(&mut self, join: &mut JoinState<'a>) -> Result<bool, SystemError> {
        // Phase bookkeeping (split out so the phase borrow never
        // overlaps the interner/row borrows below).
        let (pattern_index, last) = {
            let JoinPhase::Bound { oi, .. } = &join.phase else {
                unreachable!("phase checked by step_join");
            };
            (join.order[*oi], *oi + 1 == join.order.len())
        };
        let pattern = &join.query.patterns[pattern_index];
        // Rows agreeing on the pattern's already-bound variables
        // produce the same substituted instance — group by those codes
        // so each instance is resolved once.
        if matches!(&join.phase, JoinPhase::Bound { groups: None, .. }) {
            let bound_slots: Vec<(usize, String)> = pattern
                .variables()
                .iter()
                .filter_map(|v| {
                    let slot = join.vars.slot(v)?;
                    (join.rows[0][slot] != UNBOUND).then(|| (slot, v.to_string()))
                })
                .collect();
            let mut by_key: HashMap<Vec<u64>, usize> = HashMap::new();
            let mut queue: Vec<(usize, Vec<usize>)> = Vec::new();
            for (i, row) in join.rows.iter().enumerate() {
                let key: Vec<u64> = bound_slots.iter().map(|&(s, _)| row[s]).collect();
                match by_key.get(&key) {
                    Some(&g) => queue[g].1.push(i),
                    None => {
                        by_key.insert(key, queue.len());
                        queue.push((i, vec![i]));
                    }
                }
            }
            let JoinPhase::Bound { groups, .. } = &mut join.phase else {
                unreachable!("phase unchanged");
            };
            *groups = Some(Groups {
                bound_slots,
                queue: queue.into(),
            });
        }
        let popped = {
            let JoinPhase::Bound {
                groups: Some(g), ..
            } = &mut join.phase
            else {
                unreachable!("groups just built");
            };
            g.queue
                .pop_front()
                .map(|(rep, members)| (rep, members, g.bound_slots.clone()))
        };
        let mut limit_hit = false;
        if let Some((rep, members, bound_slots)) = popped {
            let mut seed = Binding::new();
            for (slot, name) in &bound_slots {
                seed.bind(
                    name.clone(),
                    join.interner.term(join.rows[rep][*slot]).clone(),
                );
            }
            let sub = pattern.substitute(&seed);
            match self
                .sys
                .sweep_pattern_network(self.origin, &sub, self.strategy, self.ttl)
            {
                Ok(net) => {
                    net.charge(&mut self.stats);
                    // The substituted instance's matches bind only the
                    // pattern's remaining variables: merge each into
                    // every member row.
                    let fragments: Vec<Vec<u64>> = net
                        .bindings
                        .iter()
                        .map(|b| join.interner.encode(b, &join.vars))
                        .collect();
                    let mut appended: Vec<Vec<u64>> = Vec::new();
                    for &i in &members {
                        let member = std::slice::from_ref(&join.rows[i]);
                        let joined = hash_join_rows(member, &fragments);
                        if last {
                            let (batch, hit) =
                                Self::admit_join_rows(join, &joined, &mut self.rows, self.limit);
                            if !batch.is_empty() {
                                self.events.push_back(ResultEvent::Rows(batch));
                            }
                            if hit {
                                limit_hit = true;
                                break;
                            }
                        } else {
                            appended.extend(joined);
                        }
                    }
                    if !appended.is_empty() {
                        let JoinPhase::Bound { next, .. } = &mut join.phase else {
                            unreachable!("phase unchanged");
                        };
                        next.extend(appended);
                    }
                }
                Err(SystemError::NotRoutable) => {
                    self.stats.failures += 1;
                }
                Err(e) => return Err(e),
            }
        }
        self.emit_stats_delta();
        if limit_hit {
            return Ok(true);
        }
        let JoinPhase::Bound { oi, groups, next } = &mut join.phase else {
            unreachable!("phase unchanged");
        };
        if groups.as_ref().is_some_and(|g| !g.queue.is_empty()) {
            return Ok(false);
        }
        // Pattern finished: advance (or end — either out of patterns,
        // or no partial row survived, so no later pattern can produce
        // rows and their subqueries are skipped, as the monolithic
        // executor's early-exit did).
        join.rows = std::mem::take(next);
        *groups = None;
        *oi += 1;
        Ok(*oi >= join.order.len() || join.rows.is_empty())
    }
}

impl Iterator for QuerySession<'_> {
    type Item = Result<ResultEvent, SystemError>;

    /// Iterator adapter over [`QuerySession::next_event`]: yields
    /// `Err` once on failure, then ends.
    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}
