//! Pull-based query sessions: incremental `SearchFor` with genuine
//! early termination, scheduled on the simulated clock.
//!
//! GridVine's query model is inherently incremental — reformulations
//! fan out hop-by-hop through the mapping network and results trickle
//! back per destination peer — but a monolithic
//! [`GridVineSystem::execute`] drains the whole closure walk before
//! returning anything. A [`QuerySession`] exposes the walk itself:
//! [`GridVineSystem::open`] validates the plan and *performs no work*;
//! [`QuerySession::next_event`] pulls advance the underlying
//! [`ClosureWalk`](gridvine_semantic::ClosureWalk) (or prefix sweep,
//! or join pipeline) and yield the [`ResultEvent`]s it produces.
//!
//! ## The scheduler seam
//!
//! Since PR 5 the session is **message-driven** (see
//! [`crate::system::sched`]): each routed subquery is a unit issued as
//! a `Subquery` at a send instant and answered by a `Reply` scheduled
//! on a per-peer [`EventQueue`](gridvine_netsim::EventQueue) at
//! `send + latency`, with up to [`QueryOptions::window`] units in
//! flight at once. Units are issued in one canonical order — the
//! `window = 1` order, where every pull advances exactly one routed
//! subquery, as PR 4 did — and all logical state (routing and its RNG
//! draws, message charging, row admission, closure expansion, cache
//! recording) evolves at issue. The clock models *when* replies land:
//! event delivery order, simulated first-result latency and the
//! [`ExecStats::max_in_flight`] high-water mark. Row multiset and
//! message count are therefore identical for every window size, by
//! construction. Dependencies serialize through per-unit ready times:
//! a closure hop's subquery can only be sent once the mapping
//! discovery that revealed it completed; a bound-join pattern's groups
//! wait for their predecessor pattern's rows; prefix probes and warm
//! cache replays are fully independent and pipeline `window`-wide.
//!
//! Early termination is structural, not cosmetic: a subquery is only
//! issued by a pull, so dropping the session — or hitting the
//! [`QueryOptions::limit`] result cap — stops the dissemination right
//! there: the remaining remote subqueries are *never sent*, and every
//! reply still queued on the scheduler is cancelled
//! ([`GridVineSystem::pending_events`] returns to zero).
//!
//! ## Concurrency
//!
//! A `QuerySession` borrows the system mutably and runs alone, but the
//! state behind it (`SessionCore`) is owned — it holds no borrow of
//! the plan or the system — so a
//! [`SessionPool`](crate::system::pool::SessionPool) can keep many of
//! them in flight at once, from many origins, interleaved on the
//! shared per-peer event queues under one clock. See the
//! [`crate::system::pool`] module docs for the multiplexer lifecycle;
//! a pool holding one session reproduces this module's standalone loop
//! bit-for-bit.
//!
//! ## Migration from the monolithic entry points
//!
//! The four legacy `SearchFor` methods (deleted after one deprecation
//! cycle) map onto plans + sessions:
//!
//! | Removed entry point | Plan + session |
//! |---|---|
//! | `resolve_pattern(p, &q)` | `open(p, &QueryPlan::pattern(q), &opts)` |
//! | `resolve_object_prefix(p, &q)` | `open(p, &QueryPlan::object_prefix(q), &opts)` |
//! | `search(p, &q, strategy)` | `open(p, &QueryPlan::search(q), &opts.strategy(strategy))` |
//! | `search_conjunctive(p, &q, s, m)` | `open(p, &QueryPlan::conjunctive(q), &opts.strategy(s).join_mode(m))` |
//!
//! Draining a session and calling [`GridVineSystem::execute`] are the
//! same thing — `execute` *is* `open` + drain (+ the canonical result
//! sort) — so callers that want the old blocking behaviour keep using
//! `execute` and get identical results and message accounting.
//!
//! ## Events
//!
//! * [`ResultEvent::Rows`] — fresh **distinct** solution rows
//!   (projected onto the distinguished variables), in discovery order,
//!   streamed off the destination stores' cursor layer. A row is never
//!   repeated across batches.
//! * [`ResultEvent::SchemaHop`] — the closure walk resolved the query
//!   at a schema: mapping-path depth and path quality (the minimum
//!   mapping quality along the path, the confidence proxy of
//!   [`Reformulation::path_quality`](gridvine_semantic::Reformulation::path_quality)).
//!   Emitted by single-pattern closure plans; join plans run their
//!   per-pattern sweeps as whole units and report them via `Stats`.
//! * [`ResultEvent::Stats`] — the [`ExecStats`] *delta* of the unit
//!   (messages, subqueries, reformulations, …) since the previous
//!   unit. Summing the deltas of a drained session reproduces
//!   [`QueryOutcome::stats`]. Every unit emits one, so progress is
//!   observable even while a hop returns no rows.
//!
//! ## The reformulation-closure caches
//!
//! Under the iterative strategy, the closure a pattern expands to
//! depends only on its predicate and the mapping network. Each peer
//! memoizes the closures it expanded in a **bounded LRU**, epoch-keyed
//! [`ClosureCache`](gridvine_semantic::ClosureCache) (capacity
//! [`GridVineConfig::closure_cache_capacity`](crate::GridVineConfig)):
//! while the registry
//! [`epoch`](gridvine_semantic::MappingRegistry::epoch) is unchanged,
//! a repeated plan from the same origin replays the recorded hops —
//! skipping the BFS *and* its per-schema mapping-list retrieves — and
//! a mapping insert / deprecation / repair invalidates everything at
//! once. The recursive strategy caches at the **delegate** peer (the
//! intermediate peer serving the first mapping discovery): a later
//! recursive walk reaching the same delegate replays the closure tail
//! and skips every deeper mapping fetch. Early-terminated walks record
//! nothing (a partial closure must never be replayed as complete).
//!
//! ```
//! use gridvine_core::{GridVineConfig, GridVineSystem, QueryOptions, QueryPlan, ResultEvent};
//! use gridvine_pgrid::PeerId;
//! use gridvine_rdf::{Term, Triple, TriplePatternQuery};
//! use gridvine_semantic::{Correspondence, MappingKind, Provenance, Schema};
//!
//! let mut sys = GridVineSystem::new(GridVineConfig::default());
//! let p = PeerId(0);
//! sys.insert_schema(p, Schema::new("EMBL", ["Organism"]))?;
//! sys.insert_schema(p, Schema::new("EMP", ["SystematicName"]))?;
//! sys.insert_mapping(p, "EMBL", "EMP", MappingKind::Equivalence, Provenance::Manual,
//!     vec![Correspondence::new("Organism", "SystematicName")])?;
//! sys.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
//!     Term::literal("Aspergillus niger")))?;
//!
//! let plan = QueryPlan::search(TriplePatternQuery::example_aspergillus());
//! // window(4): up to four subqueries in flight on the simulated clock.
//! let mut session = sys.open(PeerId(3), &plan, &QueryOptions::new().window(4))?;
//! while let Some(event) = session.next_event()? {
//!     match event {
//!         ResultEvent::SchemaHop { schema, depth, quality } => {
//!             println!("answering in {schema} at depth {depth} (quality {quality})");
//!         }
//!         ResultEvent::Rows(batch) => println!("{} new rows", batch.len()),
//!         ResultEvent::Stats(delta) => println!("+{} messages", delta.messages),
//!     }
//! }
//! println!("simulated time to drain: {}", session.sim_elapsed());
//! let outcome = session.into_outcome();
//! assert_eq!(outcome.rows.len(), 1);
//! # Ok::<(), gridvine_core::SystemError>(())
//! ```

use super::conjunctive::JoinMode;
use super::exec::{one_var_row, ClosureSweep, ExecStats, QueryOptions, QueryOutcome};
use super::pool::SessionId;
use super::sched::QueuedReply;
use super::*;
use crate::plan::{object_prefix_core, QueryPlan};
use gridvine_netsim::{SimDuration, SimTime};
use gridvine_rdf::join::{hash_join_rows, TermInterner, VarTable, UNBOUND};
use gridvine_rdf::{Binding, ConjunctiveQuery};
use std::collections::{HashMap, HashSet, VecDeque};

/// One increment of a [`QuerySession`] (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum ResultEvent {
    /// Fresh distinct solution rows, projected onto the distinguished
    /// variables, in discovery order.
    Rows(Vec<Binding>),
    /// The closure walk resolved the query at `schema`, reached over
    /// `depth` mapping applications with path quality `quality`.
    SchemaHop {
        schema: SchemaId,
        depth: usize,
        quality: f64,
    },
    /// Counter movement since the previous event.
    Stats(ExecStats),
}

/// How the accumulated rows are ordered by [`QuerySession::into_outcome`]
/// (the canonical order the drained `execute` promises).
enum RowOrder {
    /// Single-pattern plans: by the distinguished variable's term.
    ByTerm(String),
    /// Join plans: by the row's display form.
    ByDisplay,
}

/// Group queue of one bound-substitution pattern: rows agreeing on the
/// pattern's already-bound variables share one substituted instance.
struct Groups {
    bound_slots: Vec<(usize, String)>,
    queue: VecDeque<(usize, Vec<usize>)>,
}

/// Per-pattern progress of a join plan.
enum JoinPhase {
    /// Independent mode: one full network sweep per pattern, in written
    /// order (each sweep an independent scheduler unit); a final local
    /// fold unit joins + projects once every sweep completed.
    Independent {
        next_pattern: usize,
        sets: Vec<Vec<Vec<u64>>>,
    },
    /// Bound substitution in the planner's order: one substituted-group
    /// resolution per unit; rows complete at the last pattern. Groups
    /// of one pattern are independent (they pipeline); each pattern
    /// waits for its predecessor through the barrier.
    Bound {
        oi: usize,
        groups: Option<Groups>,
        next: Vec<Vec<u64>>,
    },
}

/// Join-plan execution state: the hash-join binding engine of
/// [`gridvine_rdf::join`], advanced one unit of network work per issue.
/// Owns its query (cloned from the plan at open) so sessions can
/// outlive the plan borrow inside a pool.
struct JoinState {
    query: ConjunctiveQuery,
    order: Vec<usize>,
    vars: VarTable,
    interner: TermInterner,
    /// Partial solution rows (term-code vectors over the variable slots).
    rows: Vec<Vec<u64>>,
    phase: JoinPhase,
    /// Scheduler ready time of the current bound pattern's groups: the
    /// completion instant of the predecessor pattern's last unit.
    barrier: SimTime,
    /// π onto the distinguished variables: slots into `rows`' layout and
    /// the projected table; `seen` dedups on projected codes before any
    /// term is materialized.
    slots: Vec<usize>,
    proj: VarTable,
    seen: BTreeSet<Vec<u64>>,
}

enum State {
    Done,
    /// One routed lookup.
    Pattern {
        query: TriplePatternQuery,
    },
    /// One peer-region probe per unit (probes are independent).
    Prefix {
        query: TriplePatternQuery,
        probes: std::vec::IntoIter<BitString>,
        seen: BTreeSet<Term>,
    },
    /// One closure hop (resolution unit + discovery unit) per pull.
    Closure {
        query: TriplePatternQuery,
        sweep: Box<ClosureSweep>,
        seen: BTreeSet<Term>,
    },
    Join(Box<JoinState>),
}

/// Scheduler metadata of one issued unit.
enum Stamp {
    /// Nothing depends on this unit's completion time.
    None,
    /// A discovery completed: the listed schemas' hops become ready at
    /// this unit's completion instant.
    Schemas(Vec<SchemaId>),
    /// A bound-join pattern finished: the next pattern's groups become
    /// ready at the max completion over everything issued so far.
    Barrier,
}

/// What one canonical step did.
enum StepOutcome {
    /// No work left at this state boundary; no unit was issued.
    Idle,
    /// One unit was issued (its messages were charged, its events
    /// produced); `done` means the plan has no further work.
    Unit {
        ready: SimTime,
        stamp: Stamp,
        done: bool,
    },
}

/// The owned state of one in-flight session: everything a
/// [`QuerySession`] is, minus the `&mut GridVineSystem` borrow. Every
/// method takes the system explicitly, so a
/// [`SessionPool`](super::pool::SessionPool) can own many cores and
/// lend each one the system in turn.
pub(crate) struct SessionCore {
    pub(crate) id: SessionId,
    pub(crate) origin: PeerId,
    strategy: Strategy,
    ttl: usize,
    limit: Option<usize>,
    window: usize,
    /// Retransmit budget armed onto the shared protocol state at every
    /// issue (sessions with different budgets interleave correctly).
    max_retries: usize,
    /// Units issued whose reply has not been delivered yet — this
    /// session's share of the origin queue (which other sessions may
    /// also occupy). A duplicated reply counts twice, like its two
    /// queue entries.
    pub(crate) inflight: usize,
    /// Request ids already delivered: a duplicated reply popping a
    /// second time is dropped, never double-charged.
    seen_replies: HashSet<u64>,
    /// Cumulative counters, folded in per issue (messages and protocol
    /// counters as deltas of the shared system counters around each
    /// issue, so concurrent sessions never charge each other's work)
    /// and at delivery (`duplicates_dropped`).
    stats: ExecStats,
    /// The cumulative state already folded into per-unit `Stats`
    /// deltas.
    issued_reported: ExecStats,
    /// Accumulated distinct solution rows, discovery order.
    rows: Vec<Binding>,
    order_by: RowOrder,
    /// Events of delivered replies, handed out one at a time (used by
    /// the standalone loop; a pool hands out whole reply batches).
    pub(crate) delivered: VecDeque<ResultEvent>,
    /// Events a failing unit produced before erroring, surfaced after
    /// every queued reply but before the error itself.
    pub(crate) error_events: Vec<ResultEvent>,
    /// A unit failure waiting to surface once everything already
    /// produced has been delivered.
    pub(crate) error: Option<SystemError>,
    state: State,
    /// The origin peer's clock when the session opened (pools may
    /// start later arrivals at their submission instant).
    started_at: SimTime,
    /// Simulated time of the latest delivered reply.
    sim_now: SimTime,
    /// Max completion instant over every issued unit.
    max_completion: SimTime,
    /// Per-schema hop ready times (stamped by discovery completions).
    ready_of: HashMap<SchemaId, SimTime>,
    /// Ready time of the hop whose expansion unit is pending.
    hop_ready: SimTime,
}

/// A lazily-advancing handle on one executing [`QueryPlan`] — see the
/// [module docs](self) for the event protocol, the scheduler seam,
/// early-termination guarantees and the closure caches.
///
/// The session borrows the system mutably, so standalone sessions run
/// one at a time, exactly as they did through `execute` (which is a
/// drain of this handle); use a
/// [`SessionPool`](crate::system::pool::SessionPool) to interleave
/// many sessions. Its scheduled replies live on the origin peer's
/// event queue; dropping the session cancels them.
pub struct QuerySession<'a> {
    sys: &'a mut GridVineSystem,
    core: SessionCore,
}

impl GridVineSystem {
    /// Open a pull-based session on `plan` — the incremental
    /// counterpart of [`GridVineSystem::execute`].
    ///
    /// Validates the plan shape (the same errors `execute` reports:
    /// [`SystemError::NotRoutable`], [`SystemError::NoQuerySchema`])
    /// but issues **no** subquery: all network work happens inside
    /// [`QuerySession::next_event`] pulls, so a dropped session costs
    /// nothing further.
    pub fn open<'a>(
        &'a mut self,
        origin: PeerId,
        plan: &QueryPlan,
        options: &QueryOptions,
    ) -> Result<QuerySession<'a>, SystemError> {
        debug_assert_eq!(
            self.exec_state(origin).queue.len(),
            0,
            "standalone sessions own their origin's reply queue; interleave via SessionPool"
        );
        let started_at = self.exec_state(origin).clock;
        let core = SessionCore::open(self, origin, plan, options, started_at)?;
        Ok(QuerySession { sys: self, core })
    }
}

impl SessionCore {
    /// Validate `plan` and build the owned session state. Issues no
    /// subquery; `started_at` is the session's scheduler epoch (the
    /// origin clock for standalone sessions, the admission instant for
    /// pooled ones).
    pub(crate) fn open(
        sys: &mut GridVineSystem,
        origin: PeerId,
        plan: &QueryPlan,
        options: &QueryOptions,
        started_at: SimTime,
    ) -> Result<SessionCore, SystemError> {
        let ttl = options.ttl.unwrap_or(sys.config.ttl);
        // Arm the retry protocol immediately so work between open and
        // the first issue (none today) would see this query's budget;
        // every issue re-arms it, which is what makes interleaved
        // sessions with different budgets correct.
        sys.proto.max_retries = options.max_retries;
        let mut stats = ExecStats::default();
        let state = match plan {
            QueryPlan::Pattern { query } => {
                if query.pattern.routing_constant().is_none() {
                    return Err(SystemError::NotRoutable);
                }
                State::Pattern {
                    query: query.clone(),
                }
            }
            QueryPlan::ObjectPrefix { query } => {
                if sys.config.hash != HashKind::OrderPreserving {
                    return Err(SystemError::NotRoutable);
                }
                let Some(prefix) = object_prefix_core(&query.pattern) else {
                    return Err(SystemError::NotRoutable);
                };
                let key_prefix = sys.keyspace().prefix_key(prefix);
                let probes: Vec<BitString> = sys
                    .overlay
                    .range_regions(&key_prefix)
                    .into_iter()
                    .map(|region| {
                        if region.len() >= key_prefix.len() {
                            region
                        } else {
                            key_prefix.clone()
                        }
                    })
                    .collect();
                State::Prefix {
                    query: query.clone(),
                    probes: probes.into_iter(),
                    seen: BTreeSet::new(),
                }
            }
            QueryPlan::Closure { query } => {
                // The `SearchFor` contract requires a schema'd predicate
                // (§2.3); a schema-less pattern is an error here, not a
                // plain lookup.
                let (schema, attr) = gridvine_semantic::query_schema(query)
                    .map_err(|_| SystemError::NoQuerySchema)?;
                let sweep = ClosureSweep::open(
                    sys,
                    origin,
                    &query.pattern,
                    schema,
                    attr,
                    options.strategy,
                    ttl,
                    &mut stats,
                );
                State::Closure {
                    query: query.clone(),
                    sweep: Box::new(sweep),
                    seen: BTreeSet::new(),
                }
            }
            QueryPlan::Join { query, order } => {
                let vars = VarTable::from_patterns(&query.patterns);
                let mut slots = Vec::with_capacity(query.distinguished.len());
                let mut proj = VarTable::new();
                // `slots` and `proj` share one filtered name set so a
                // distinguished variable absent from every pattern is
                // skipped rather than misaligning names.
                for d in &query.distinguished {
                    if let Some(s) = vars.slot(d) {
                        slots.push(s);
                        proj.slot_of(d);
                    }
                }
                let rows = vec![vars.empty_row()];
                let phase = match options.join_mode {
                    JoinMode::Independent => JoinPhase::Independent {
                        next_pattern: 0,
                        sets: Vec::with_capacity(query.patterns.len()),
                    },
                    JoinMode::BoundSubstitution => JoinPhase::Bound {
                        oi: 0,
                        groups: None,
                        next: Vec::new(),
                    },
                };
                State::Join(Box::new(JoinState {
                    query: query.clone(),
                    order: order.clone(),
                    vars,
                    interner: TermInterner::new(),
                    rows,
                    phase,
                    barrier: started_at,
                    slots,
                    proj,
                    seen: BTreeSet::new(),
                }))
            }
        };
        let order_by = match plan {
            QueryPlan::Join { .. } => RowOrder::ByDisplay,
            QueryPlan::Pattern { query }
            | QueryPlan::ObjectPrefix { query }
            | QueryPlan::Closure { query } => RowOrder::ByTerm(query.distinguished.clone()),
        };
        Ok(SessionCore {
            id: sys.alloc_session_id(),
            origin,
            strategy: options.strategy,
            ttl,
            limit: options.limit,
            window: options.window.max(1),
            max_retries: options.max_retries,
            inflight: 0,
            seen_replies: HashSet::new(),
            stats,
            issued_reported: ExecStats::default(),
            rows: Vec::new(),
            order_by,
            delivered: VecDeque::new(),
            error_events: Vec::new(),
            error: None,
            state,
            started_at,
            sim_now: started_at,
            max_completion: started_at,
            ready_of: HashMap::new(),
            hop_ready: started_at,
        })
    }

    /// The plan still has units to issue (not drained, not failed).
    pub(crate) fn has_work(&self) -> bool {
        self.error.is_none() && !matches!(self.state, State::Done)
    }

    /// Issue canonical units until the window is full or the plan runs
    /// out of ready work; a unit failure parks the error for delivery.
    pub(crate) fn replenish(&mut self, sys: &mut GridVineSystem) {
        while self.issue_one(sys) {}
    }

    /// The session's window has room for another unit.
    pub(crate) fn wants_issue(&self) -> bool {
        self.has_work() && self.inflight < self.window
    }

    /// Issue at most one canonical unit (the pool's round-robin
    /// replenisher calls this once per session per round, preserving
    /// each session's canonical issue order). Returns whether the
    /// window could take further work afterwards.
    pub(crate) fn issue_one(&mut self, sys: &mut GridVineSystem) -> bool {
        if !self.wants_issue() {
            return false;
        }
        if let Err(e) = self.issue_step(sys) {
            self.state = State::Done;
            self.error = Some(e);
        }
        self.wants_issue()
    }

    /// Deliver one popped reply to this session: advance its clock,
    /// drop duplicate request ids. Returns the reply's events, or
    /// `None` for a dropped duplicate.
    pub(crate) fn deliver(&mut self, at: SimTime, reply: QueuedReply) -> Option<Vec<ResultEvent>> {
        debug_assert_eq!(reply.session, self.id, "reply routed to the wrong session");
        self.inflight = self.inflight.saturating_sub(1);
        self.sim_now = self.sim_now.max(at);
        if !self.seen_replies.insert(reply.request_id) {
            // A duplicated reply: this unit was already delivered and
            // folded in — drop the copy so rows, messages and
            // accounting are never double-charged.
            self.stats.duplicates_dropped += 1;
            return None;
        }
        Some(reply.events)
    }

    /// Cancel the session's remaining scheduled replies (other
    /// sessions' replies on the shared origin queue survive) and write
    /// the simulated clock back to the origin peer.
    pub(crate) fn cancel(&mut self, sys: &mut GridVineSystem) {
        let id = self.id;
        let exec = sys.exec_state_mut(self.origin);
        if self.inflight > 0 {
            exec.queue.retain(|r| r.session != id);
            self.inflight = 0;
        }
        exec.clock = exec.clock.max(self.sim_now);
    }

    /// Cumulative execution counters so far. Work is accounted at
    /// *issue*, so in-flight units are already counted.
    pub(crate) fn stats(&self) -> ExecStats {
        self.stats
    }

    pub(crate) fn rows(&self) -> &[Binding] {
        &self.rows
    }

    pub(crate) fn sim_now(&self) -> SimTime {
        self.sim_now
    }

    pub(crate) fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// Finish: the rows accumulated so far in the canonical sorted
    /// order plus cumulative stats (exactly what `execute` returns
    /// after a full drain).
    pub(crate) fn outcome(&mut self) -> QueryOutcome {
        let mut rows = std::mem::take(&mut self.rows);
        match &self.order_by {
            RowOrder::ByTerm(var) => rows.sort_by(|a, b| a.get(var).cmp(&b.get(var))),
            RowOrder::ByDisplay => rows.sort_by_key(|b| b.to_string()),
        }
        QueryOutcome {
            rows,
            stats: self.stats,
        }
    }

    /// The result cap has been reached.
    fn limit_reached(&self) -> bool {
        self.limit.is_some_and(|k| self.rows.len() >= k)
    }

    /// Issue the next canonical unit: run its logical work, charge its
    /// counters, compute its send/completion instants and schedule its
    /// reply on the origin peer's event queue.
    fn issue_step(&mut self, sys: &mut GridVineSystem) -> Result<(), SystemError> {
        if self.limit_reached() {
            self.state = State::Done;
            return Ok(());
        }
        // Arm the retry protocol for this unit: this session's budget,
        // attempts scheduled against its clock, backoff delay and the
        // latency destination reset per issue. Re-arming every issue is
        // what lets sessions interleave on the shared protocol state.
        sys.proto.max_retries = self.max_retries;
        sys.proto.now = self.sim_now;
        sys.proto.delay = SimDuration::ZERO;
        sys.proto.unit_dest = None;
        // Snapshot the shared counters so exactly this unit's movement
        // is folded into this session's stats.
        let m0 = sys.overlay.messages_sent();
        let p0 = sys.proto.counters;
        let pl0 = sys.place.counters;
        let mut state = std::mem::replace(&mut self.state, State::Done);
        let mut out: Vec<ResultEvent> = Vec::new();
        let result = match &mut state {
            State::Done => Ok(StepOutcome::Idle),
            State::Pattern { query } => self.step_pattern(sys, query, &mut out),
            State::Prefix {
                query,
                probes,
                seen,
            } => self.step_prefix(sys, query, probes, seen, &mut out),
            State::Closure { query, sweep, seen } => {
                self.step_closure(sys, query, sweep, seen, &mut out)
            }
            State::Join(join) => self.step_join(sys, join, &mut out),
        };
        // Fold the unit's counter movement in on success *and* failure
        // (a failing unit's messages were still sent and charged).
        self.stats.messages += sys.overlay.messages_sent() - m0;
        let c = sys.proto.counters;
        self.stats.requests += c.requests - p0.requests;
        self.stats.sends += c.sends - p0.sends;
        self.stats.timeouts += c.timeouts - p0.timeouts;
        self.stats.retransmits += c.retransmits - p0.retransmits;
        let pl = sys.place.counters;
        self.stats.replica_hits += pl.replica_hits - pl0.replica_hits;
        self.stats.failovers += pl.failovers - pl0.failovers;
        self.stats.migrations += pl.migrations - pl0.migrations;
        match result {
            Ok(StepOutcome::Idle) => Ok(()), // state stays Done
            Ok(StepOutcome::Unit { ready, stamp, done }) => {
                if !done {
                    self.state = state;
                }
                self.schedule_unit(sys, ready, stamp, out);
                Ok(())
            }
            Err(e) => {
                // Events the failing unit already produced (rows that
                // were shipped and charged) surface before the error.
                self.error_events = out;
                Err(e)
            }
        }
    }

    /// Scheduler bookkeeping of one issued unit.
    fn schedule_unit(
        &mut self,
        sys: &mut GridVineSystem,
        ready: SimTime,
        stamp: Stamp,
        mut events: Vec<ResultEvent>,
    ) {
        // The unit is in flight from here: fold the high-water mark in
        // *before* the delta snapshot so delta sums stay exact.
        let in_flight = self.inflight + 1;
        self.stats.max_in_flight = self.stats.max_in_flight.max(in_flight);
        let cur = self.stats;
        let prev = self.issued_reported;
        let delta = ExecStats {
            messages: cur.messages - prev.messages,
            subqueries: cur.subqueries - prev.subqueries,
            reformulations: cur.reformulations - prev.reformulations,
            schemas_visited: cur.schemas_visited - prev.schemas_visited,
            failures: cur.failures - prev.failures,
            bindings_shipped: cur.bindings_shipped - prev.bindings_shipped,
            mapping_fetches: cur.mapping_fetches - prev.mapping_fetches,
            max_in_flight: cur.max_in_flight - prev.max_in_flight,
            cache_hits: cur.cache_hits - prev.cache_hits,
            cache_misses: cur.cache_misses - prev.cache_misses,
            cache_evictions: cur.cache_evictions - prev.cache_evictions,
            requests: cur.requests - prev.requests,
            sends: cur.sends - prev.sends,
            timeouts: cur.timeouts - prev.timeouts,
            retransmits: cur.retransmits - prev.retransmits,
            duplicates_dropped: cur.duplicates_dropped - prev.duplicates_dropped,
            assessment_probes: cur.assessment_probes - prev.assessment_probes,
            quarantined_mappings: cur.quarantined_mappings - prev.quarantined_mappings,
            replica_hits: cur.replica_hits - prev.replica_hits,
            failovers: cur.failovers - prev.failovers,
            migrations: cur.migrations - prev.migrations,
        };
        self.issued_reported = cur;
        events.push(ResultEvent::Stats(delta));
        let send = ready.max(self.sim_now);
        // The unit's reply lands after its overlay work plus whatever
        // backoff delay its retried requests accumulated, plus any
        // reorder jitter the fault process deals the reply itself.
        let (reply_jitter, duplicate) = sys.proto.reply_fate();
        let completion =
            send + sys.proto.delay + sys.unit_delay(self.origin, delta.messages) + reply_jitter;
        self.max_completion = self.max_completion.max(completion);
        match stamp {
            Stamp::None => {}
            Stamp::Schemas(list) => {
                for s in list {
                    self.ready_of.insert(s, completion);
                }
            }
            Stamp::Barrier => {
                if let State::Join(join) = &mut self.state {
                    join.barrier = self.max_completion;
                }
            }
        }
        let request_id = sys.proto.next_request_id();
        let session = self.id;
        let queue = &mut sys.exec_state_mut(self.origin).queue;
        if let Some(trailing) = duplicate {
            // The duplicated reply carries the same events under the
            // same request id; delivery-side dedup drops whichever
            // copy lands second.
            queue.schedule(
                completion + trailing,
                QueuedReply {
                    session,
                    request_id,
                    events: events.clone(),
                },
            );
            self.inflight += 1;
        }
        queue.schedule(
            completion,
            QueuedReply {
                session,
                request_id,
                events,
            },
        );
        self.inflight += 1;
    }

    /// Admit freshly-shipped bindings of a single-pattern plan: project
    /// onto the distinguished variable, dedup against `seen`, append to
    /// the session rows. Returns `(batch, limit_hit)`.
    fn admit_terms(
        &mut self,
        seen: &mut BTreeSet<Term>,
        var: &str,
        bindings: &[Binding],
    ) -> (Vec<Binding>, bool) {
        let mut batch = Vec::new();
        for b in bindings {
            let Some(t) = b.get(var) else { continue };
            if !seen.insert(t.clone()) {
                continue;
            }
            let row = one_var_row(var, t.clone());
            self.rows.push(row.clone());
            batch.push(row);
            if self.limit_reached() {
                return (batch, true);
            }
        }
        (batch, false)
    }

    /// [`QueryPlan::Pattern`]: the single routed lookup.
    fn step_pattern(
        &mut self,
        sys: &mut GridVineSystem,
        query: &TriplePatternQuery,
        out: &mut Vec<ResultEvent>,
    ) -> Result<StepOutcome, SystemError> {
        self.stats.subqueries += 1;
        let bindings = sys.resolve_pattern_once(self.origin, &query.pattern)?;
        self.stats.bindings_shipped += bindings.len();
        let mut seen = BTreeSet::new();
        let (batch, _) = self.admit_terms(&mut seen, &query.distinguished, &bindings);
        if !batch.is_empty() {
            out.push(ResultEvent::Rows(batch));
        }
        Ok(StepOutcome::Unit {
            ready: self.started_at,
            stamp: Stamp::None,
            done: true,
        })
    }

    /// [`QueryPlan::ObjectPrefix`]: probe the next peer region of the
    /// prefix's bit-region (same regions, routes and response charges
    /// as a range `Retrieve`). Probes are independent units: they are
    /// all ready at session start and pipeline `window`-wide.
    fn step_prefix(
        &mut self,
        sys: &mut GridVineSystem,
        query: &TriplePatternQuery,
        probes: &mut std::vec::IntoIter<BitString>,
        seen: &mut BTreeSet<Term>,
        out: &mut Vec<ResultEvent>,
    ) -> Result<StepOutcome, SystemError> {
        let Some(probe) = probes.next() else {
            return Ok(StepOutcome::Idle);
        };
        let dest = sys.route_retrieve(self.origin, &probe)?;
        sys.proto_request(self.origin, dest)?;
        self.stats.subqueries += 1;
        let db = &sys.local_dbs[dest.index()];
        let bindings: Vec<Binding> = db.match_pattern(&query.pattern);
        self.stats.bindings_shipped += bindings.len();
        let (batch, limit_hit) = self.admit_terms(seen, &query.distinguished, &bindings);
        if !batch.is_empty() {
            out.push(ResultEvent::Rows(batch));
        }
        Ok(StepOutcome::Unit {
            ready: self.started_at,
            stamp: Stamp::None,
            done: limit_hit || probes.as_slice().is_empty(),
        })
    }

    /// [`QueryPlan::Closure`]: one unit of the reformulation closure —
    /// either resolve the next (possibly reformulated) pattern at its
    /// destination via the shared [`ClosureSweep`], or run the pending
    /// hop's mapping discovery. The two units of one hop share a ready
    /// time (they are independent requests and overlap under a window);
    /// a discovery's completion stamps the ready times of the hops it
    /// admits. Early termination skips the discovery outright, so its
    /// messages are never sent.
    fn step_closure(
        &mut self,
        sys: &mut GridVineSystem,
        query: &TriplePatternQuery,
        sweep: &mut ClosureSweep,
        seen: &mut BTreeSet<Term>,
        out: &mut Vec<ResultEvent>,
    ) -> Result<StepOutcome, SystemError> {
        if sweep.has_pending() {
            // Discovery unit of the previously resolved hop.
            let expansion =
                sweep.expand_pending(sys, self.origin, self.strategy, self.ttl, &mut self.stats)?;
            return Ok(StepOutcome::Unit {
                ready: self.hop_ready,
                stamp: Stamp::Schemas(expansion.admitted),
                done: sweep.is_exhausted(),
            });
        }
        let Some(hop) = sweep.resolve_next(sys, self.origin)? else {
            return Ok(StepOutcome::Idle);
        };
        let ready = self
            .ready_of
            .get(&hop.schema)
            .copied()
            .unwrap_or(self.started_at);
        self.hop_ready = ready;
        hop.charge(&mut self.stats);
        out.push(ResultEvent::SchemaHop {
            schema: hop.schema,
            depth: hop.depth,
            quality: hop.quality,
        });
        let mut limit_hit = false;
        if let Some(bindings) = hop.bindings {
            self.stats.bindings_shipped += bindings.len();
            let (batch, hit) = self.admit_terms(seen, &query.distinguished, &bindings);
            limit_hit = hit;
            if !batch.is_empty() {
                out.push(ResultEvent::Rows(batch));
            }
        }
        if limit_hit {
            // A truncated walk neither expands nor commits to the
            // cache.
            sweep.discard_pending();
            return Ok(StepOutcome::Unit {
                ready,
                stamp: Stamp::None,
                done: true,
            });
        }
        Ok(StepOutcome::Unit {
            ready,
            stamp: Stamp::None,
            done: sweep.is_exhausted() && !sweep.has_pending(),
        })
    }

    /// Project completed join rows onto the distinguished variables,
    /// dedup on codes, admit fresh rows. Returns `(batch, limit_hit)`.
    fn admit_join_rows(
        join: &mut JoinState,
        completed: &[Vec<u64>],
        rows: &mut Vec<Binding>,
        limit: Option<usize>,
    ) -> (Vec<Binding>, bool) {
        let mut batch = Vec::new();
        for row in completed {
            let projected: Vec<u64> = join.slots.iter().map(|&s| row[s]).collect();
            if !join.seen.insert(projected.clone()) {
                continue;
            }
            let b = join.interner.decode(&projected, &join.proj);
            rows.push(b.clone());
            batch.push(b);
            if limit.is_some_and(|k| rows.len() >= k) {
                return (batch, true);
            }
        }
        (batch, false)
    }

    /// [`QueryPlan::Join`]: one unit of join work — a full pattern
    /// sweep or the local fold (independent mode), or one
    /// substituted-group resolution (bound substitution).
    fn step_join(
        &mut self,
        sys: &mut GridVineSystem,
        join: &mut JoinState,
        out: &mut Vec<ResultEvent>,
    ) -> Result<StepOutcome, SystemError> {
        match &mut join.phase {
            JoinPhase::Independent { .. } => self.step_join_independent(sys, join, out),
            JoinPhase::Bound { .. } => self.step_join_bound(sys, join, out),
        }
    }

    /// Independent mode: sweep the next pattern (written order — the
    /// order its message accounting is defined over). Sweeps are
    /// mutually independent units, all ready at session start; once the
    /// last one is issued, a final local fold unit (ready at the max
    /// sweep completion) joins the binding sets through the hash-join
    /// engine and emits the projected rows.
    fn step_join_independent(
        &mut self,
        sys: &mut GridVineSystem,
        join: &mut JoinState,
        out: &mut Vec<ResultEvent>,
    ) -> Result<StepOutcome, SystemError> {
        let JoinState {
            query,
            interner,
            vars,
            rows: partial,
            phase,
            ..
        } = &mut *join;
        let JoinPhase::Independent { next_pattern, sets } = phase else {
            unreachable!("phase checked by step_join");
        };
        if *next_pattern < query.patterns.len() {
            let pattern = &query.patterns[*next_pattern];
            let net = sys.sweep_pattern_network(self.origin, pattern, self.strategy, self.ttl)?;
            net.charge(&mut self.stats);
            sets.push(
                net.bindings
                    .iter()
                    .map(|b| interner.encode(b, vars))
                    .collect(),
            );
            *next_pattern += 1;
            return Ok(StepOutcome::Unit {
                ready: self.started_at,
                stamp: Stamp::None,
                done: false,
            });
        }
        // All sweeps issued: fold + project locally once they all
        // completed (a zero-message unit ready at the barrier).
        let mut rows = std::mem::take(partial);
        for set in sets.iter() {
            rows = hash_join_rows(&rows, set);
            if rows.is_empty() {
                break;
            }
        }
        let ready = self.max_completion;
        let (batch, _) = Self::admit_join_rows(join, &rows, &mut self.rows, self.limit);
        if !batch.is_empty() {
            out.push(ResultEvent::Rows(batch));
        }
        Ok(StepOutcome::Unit {
            ready,
            stamp: Stamp::None,
            done: true,
        })
    }

    /// Bound substitution: resolve one substituted instance (one group
    /// of rows agreeing on the pattern's bound variables). Groups of
    /// one pattern are independent units sharing the pattern's barrier
    /// ready time; rows complete at the last pattern of the planner's
    /// order — reaching the result limit there skips every remaining
    /// group, so the leftover subqueries are never issued.
    fn step_join_bound(
        &mut self,
        sys: &mut GridVineSystem,
        join: &mut JoinState,
        out: &mut Vec<ResultEvent>,
    ) -> Result<StepOutcome, SystemError> {
        let ready = join.barrier;
        // Phase bookkeeping (split out so the phase borrow never
        // overlaps the interner/row borrows below).
        let (pattern_index, last) = {
            let JoinPhase::Bound { oi, .. } = &join.phase else {
                unreachable!("phase checked by step_join");
            };
            (join.order[*oi], *oi + 1 == join.order.len())
        };
        let pattern = &join.query.patterns[pattern_index];
        // Rows agreeing on the pattern's already-bound variables
        // produce the same substituted instance — group by those codes
        // so each instance is resolved once.
        if matches!(&join.phase, JoinPhase::Bound { groups: None, .. }) {
            let bound_slots: Vec<(usize, String)> = pattern
                .variables()
                .iter()
                .filter_map(|v| {
                    let slot = join.vars.slot(v)?;
                    (join.rows[0][slot] != UNBOUND).then(|| (slot, v.to_string()))
                })
                .collect();
            let mut by_key: HashMap<Vec<u64>, usize> = HashMap::new();
            let mut queue: Vec<(usize, Vec<usize>)> = Vec::new();
            for (i, row) in join.rows.iter().enumerate() {
                let key: Vec<u64> = bound_slots.iter().map(|&(s, _)| row[s]).collect();
                match by_key.get(&key) {
                    Some(&g) => queue[g].1.push(i),
                    None => {
                        by_key.insert(key, queue.len());
                        queue.push((i, vec![i]));
                    }
                }
            }
            let JoinPhase::Bound { groups, .. } = &mut join.phase else {
                unreachable!("phase unchanged");
            };
            *groups = Some(Groups {
                bound_slots,
                queue: queue.into(),
            });
        }
        let popped = {
            let JoinPhase::Bound {
                groups: Some(g), ..
            } = &mut join.phase
            else {
                unreachable!("groups just built");
            };
            g.queue
                .pop_front()
                .map(|(rep, members)| (rep, members, g.bound_slots.clone()))
        };
        let mut limit_hit = false;
        if let Some((rep, members, bound_slots)) = popped {
            let mut seed = Binding::new();
            for (slot, name) in &bound_slots {
                seed.bind(
                    name.clone(),
                    join.interner.term(join.rows[rep][*slot]).clone(),
                );
            }
            let sub = pattern.substitute(&seed);
            match sys.sweep_pattern_network(self.origin, &sub, self.strategy, self.ttl) {
                Ok(net) => {
                    net.charge(&mut self.stats);
                    // The substituted instance's matches bind only the
                    // pattern's remaining variables: merge each into
                    // every member row.
                    let fragments: Vec<Vec<u64>> = net
                        .bindings
                        .iter()
                        .map(|b| join.interner.encode(b, &join.vars))
                        .collect();
                    let mut appended: Vec<Vec<u64>> = Vec::new();
                    for &i in &members {
                        let member = std::slice::from_ref(&join.rows[i]);
                        let joined = hash_join_rows(member, &fragments);
                        if last {
                            let (batch, hit) =
                                Self::admit_join_rows(join, &joined, &mut self.rows, self.limit);
                            if !batch.is_empty() {
                                out.push(ResultEvent::Rows(batch));
                            }
                            if hit {
                                limit_hit = true;
                                break;
                            }
                        } else {
                            appended.extend(joined);
                        }
                    }
                    if !appended.is_empty() {
                        let JoinPhase::Bound { next, .. } = &mut join.phase else {
                            unreachable!("phase unchanged");
                        };
                        next.extend(appended);
                    }
                }
                Err(SystemError::NotRoutable) => {
                    self.stats.failures += 1;
                }
                Err(e) => return Err(e),
            }
        }
        if limit_hit {
            return Ok(StepOutcome::Unit {
                ready,
                stamp: Stamp::None,
                done: true,
            });
        }
        let JoinPhase::Bound { oi, groups, next } = &mut join.phase else {
            unreachable!("phase unchanged");
        };
        if groups.as_ref().is_some_and(|g| !g.queue.is_empty()) {
            return Ok(StepOutcome::Unit {
                ready,
                stamp: Stamp::None,
                done: false,
            });
        }
        // Pattern finished: advance (or end — either out of patterns,
        // or no partial row survived, so no later pattern can produce
        // rows and their subqueries are skipped, as the monolithic
        // executor's early-exit did). The barrier stamp makes the next
        // pattern's groups wait for everything issued so far.
        join.rows = std::mem::take(next);
        *groups = None;
        *oi += 1;
        let done = *oi >= join.order.len() || join.rows.is_empty();
        Ok(StepOutcome::Unit {
            ready,
            stamp: if done { Stamp::None } else { Stamp::Barrier },
            done,
        })
    }
}

impl QuerySession<'_> {
    /// Return the next [`ResultEvent`], or `Ok(None)` once the plan is
    /// fully drained or the result limit terminated it.
    ///
    /// Internally this keeps up to [`QueryOptions::window`] units in
    /// flight: it issues canonical units until the window is full (or
    /// the plan runs out of ready work), then delivers the earliest
    /// scheduled reply, advancing the simulated clock. Errors end the
    /// session: events already produced (rows that *were* shipped and
    /// charged) are delivered first, then the error surfaces exactly
    /// once, then the session reports drained.
    pub fn next_event(&mut self) -> Result<Option<ResultEvent>, SystemError> {
        loop {
            if let Some(ev) = self.core.delivered.pop_front() {
                return Ok(Some(ev));
            }
            // Replenish the window in canonical order.
            self.core.replenish(self.sys);
            // Deliver the earliest reply, advancing the clock.
            if let Some((at, reply)) = self.sys.exec_state_mut(self.core.origin).queue.pop() {
                debug_assert_eq!(
                    reply.session, self.core.id,
                    "standalone sessions own their origin's reply queue"
                );
                if let Some(events) = self.core.deliver(at, reply) {
                    self.core.delivered.extend(events);
                }
                continue;
            }
            if !self.core.error_events.is_empty() {
                let stash = std::mem::take(&mut self.core.error_events);
                self.core.delivered.extend(stash);
                continue;
            }
            if let Some(e) = self.core.error.take() {
                return Err(e);
            }
            return Ok(None);
        }
    }

    /// Cumulative execution counters so far (messages included). Work
    /// is accounted at *issue*, so in-flight units are already counted.
    pub fn stats(&self) -> ExecStats {
        self.core.stats()
    }

    /// Distinct solution rows accumulated so far, in discovery order.
    pub fn rows(&self) -> &[Binding] {
        self.core.rows()
    }

    /// The plan has no work left (drained, limit-terminated or failed)
    /// and every scheduled reply was delivered.
    pub fn is_complete(&self) -> bool {
        matches!(self.core.state, State::Done)
            && self.core.delivered.is_empty()
            && self.core.error_events.is_empty()
            && self.core.error.is_none()
            && self.core.inflight == 0
    }

    /// Simulated time of the latest delivered reply (the origin peer's
    /// clock resumes from here for the next session).
    pub fn sim_now(&self) -> SimTime {
        self.core.sim_now()
    }

    /// Simulated time elapsed since the session opened.
    pub fn sim_elapsed(&self) -> SimDuration {
        self.core.sim_now().saturating_since(self.core.started_at())
    }

    /// Units currently in flight (issued, reply not yet delivered).
    pub fn in_flight(&self) -> usize {
        self.core.inflight
    }

    /// Finish the session: the rows accumulated so far in the canonical
    /// order (sorted as `execute` returns them) plus cumulative stats.
    /// Valid at any point — after a full drain this is exactly the
    /// [`QueryOutcome`] `execute` would have returned; mid-flight it
    /// cancels the remaining scheduled replies.
    pub fn into_outcome(mut self) -> QueryOutcome {
        // Dropping `self` afterwards cancels any still-queued replies
        // and writes the clock back to the origin peer's state.
        self.core.outcome()
    }
}

impl Drop for QuerySession<'_> {
    /// Cancel every still-scheduled reply of this session (the origin's
    /// event queue drops them — `pending_events() == 0` when no other
    /// session is in flight) and write the simulated clock back to the
    /// origin peer's execution state.
    fn drop(&mut self) {
        self.core.cancel(self.sys);
    }
}

impl Iterator for QuerySession<'_> {
    type Item = Result<ResultEvent, SystemError>;

    /// Iterator adapter over [`QuerySession::next_event`]: yields
    /// `Err` once on failure, then ends.
    fn next(&mut self) -> Option<Self::Item> {
        self.next_event().transpose()
    }
}
