//! Distributed conjunctive queries (§2.3).
//!
//! "Conjunctive queries can be resolved in a similar manner, by
//! iteratively resolving each triple pattern contained in the query and
//! aggregating the sets of results retrieved." The paper leaves the
//! aggregation policy open; this module implements the two classic
//! options so they can be compared (ablation A4):
//!
//! * [`JoinMode::Independent`] — every triple pattern is resolved over
//!   the full mapping network on its own, all matching bindings are
//!   shipped back to the origin, and the origin joins the binding sets
//!   locally. Simple, one network sweep per pattern, but it pays to ship
//!   *every* match of *every* pattern even when the join keeps almost
//!   none of them.
//!
//! * [`JoinMode::BoundSubstitution`] — patterns are resolved in
//!   selectivity order; each partial solution row is substituted into
//!   the next pattern before that subquery is shipped
//!   ([`gridvine_rdf::TriplePattern::substitute`]), so the overlay only ever evaluates
//!   patterns already constrained by earlier answers. This is the
//!   semi-join/bound-join strategy of distributed query processing: more
//!   routed subqueries, far fewer irrelevant results on the wire.
//!
//! Both modes reformulate every (sub)pattern through the mapping network
//! exactly like single-pattern [`GridVineSystem::search`], so a
//! conjunctive query also benefits from the self-organizing mapping
//! layer of §3.

use super::*;
use gridvine_rdf::{Binding, ConjunctiveQuery};

/// How the binding sets of the individual triple patterns are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinMode {
    /// Resolve each pattern over the network independently, join at the
    /// origin.
    Independent,
    /// Substitute partial solutions into subsequent patterns before
    /// routing them (bound join).
    BoundSubstitution,
}

/// Outcome of one distributed conjunctive `SearchFor`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConjunctiveOutcome {
    /// Solution rows, projected onto the distinguished variables,
    /// deduplicated and sorted.
    pub bindings: Vec<Binding>,
    /// Overlay messages consumed.
    pub messages: u64,
    /// Routed pattern resolutions (original patterns, reformulations and
    /// bound-substituted instances all count).
    pub subqueries: usize,
    /// Mapping applications across all patterns.
    pub reformulations: usize,
    /// Schemas reached, summed over patterns (each pattern's traversal
    /// counts its own distinct set, including the pattern's own schema).
    pub schemas_visited: usize,
    /// Subqueries that could not be routed or resolved.
    pub failures: usize,
    /// Total matching bindings returned by destination peers across all
    /// subqueries, *before* joining — a proxy for result bytes on the
    /// wire. This, not the routed message count, is where the two join
    /// modes differ asymptotically: an unconstrained pattern ships its
    /// full extension under [`JoinMode::Independent`], while
    /// [`JoinMode::BoundSubstitution`] only ships matches of already-
    /// constrained instances.
    pub bindings_shipped: usize,
}

impl GridVineSystem {
    /// `SearchFor` for a conjunctive query: iteratively resolve each
    /// triple pattern over the overlay (with reformulation through the
    /// mapping network, per `strategy`) and aggregate the binding sets
    /// into solution rows (§2.3).
    ///
    /// ```
    /// use gridvine_core::{GridVineConfig, GridVineSystem, JoinMode, QueryOptions, QueryPlan, Strategy};
    /// use gridvine_pgrid::PeerId;
    /// use gridvine_rdf::{parse_query, Term, Triple};
    /// use gridvine_semantic::Schema;
    ///
    /// let mut gv = GridVineSystem::new(GridVineConfig::default());
    /// let p = PeerId(0);
    /// gv.insert_schema(p, Schema::new("EMBL", ["Organism", "SequenceLength"]))?;
    /// gv.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
    ///     Term::literal("Aspergillus niger")))?;
    /// gv.insert_triple(p, Triple::new("seq:A78712", "EMBL#SequenceLength",
    ///     Term::literal("1042")))?;
    ///
    /// let q = parse_query(
    ///     r#"SELECT ?x, ?len WHERE (?x, <EMBL#Organism>, "%Aspergillus%"),
    ///                             (?x, <EMBL#SequenceLength>, ?len)"#)?;
    /// // Migration: search_conjunctive(p, &q, strategy, mode) becomes
    /// let out = gv.execute(p, &QueryPlan::conjunctive(q),
    ///     &QueryOptions::new().strategy(Strategy::Iterative)
    ///         .join_mode(JoinMode::BoundSubstitution))?;
    /// assert_eq!(out.rows.len(), 1);
    /// assert_eq!(out.rows[0].get("len"), Some(&Term::literal("1042")));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// Under [`JoinMode::BoundSubstitution`] a subquery instance that
    /// ends up with no routable constant (possible only if the pattern
    /// shares no variable with its predecessors *and* carries no
    /// constant) is counted in
    /// [`failures`](ConjunctiveOutcome::failures) and its candidate row
    /// is dropped; well-formed conjunctive queries — connected join
    /// graphs with at least one constant per component — never hit this.
    #[deprecated(
        since = "0.1.0",
        note = "use GridVineSystem::execute with QueryPlan::conjunctive (see gridvine_core::exec)"
    )]
    pub fn search_conjunctive(
        &mut self,
        origin: PeerId,
        query: &ConjunctiveQuery,
        strategy: Strategy,
        mode: JoinMode,
    ) -> Result<ConjunctiveOutcome, SystemError> {
        let plan = crate::plan::QueryPlan::conjunctive(query.clone());
        let options = super::exec::QueryOptions::new()
            .strategy(strategy)
            .join_mode(mode);
        let out = self.execute(origin, &plan, &options)?;
        Ok(ConjunctiveOutcome {
            bindings: out.rows,
            messages: out.stats.messages,
            subqueries: out.stats.subqueries,
            reformulations: out.stats.reformulations,
            schemas_visited: out.stats.schemas_visited,
            failures: out.stats.failures,
            bindings_shipped: out.stats.bindings_shipped,
        })
    }
}

#[cfg(test)]
mod tests {
    // The legacy shims stay under test here; the equivalence suite
    // proves they match the executor.
    #![allow(deprecated)]

    use super::*;
    use gridvine_rdf::{PatternTerm, TriplePattern};

    /// Two schemas linked by a manual mapping, with sequence-length
    /// facts so a two-pattern join has work to do.
    fn federation() -> GridVineSystem {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("EMBL", ["Organism", "SequenceLength"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("EMP", ["SystematicName", "Length"]))
            .unwrap();
        sys.insert_mapping(
            p0,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new("Organism", "SystematicName"),
                Correspondence::new("SequenceLength", "Length"),
            ],
        )
        .unwrap();
        for (s, p, o) in [
            ("seq:A78712", "EMBL#Organism", "Aspergillus niger"),
            ("seq:A78712", "EMBL#SequenceLength", "1042"),
            ("seq:A78767", "EMBL#Organism", "Aspergillus nidulans"),
            // A78767 has no length fact anywhere: joins must drop it.
            (
                "seq:NEN94295-05",
                "EMP#SystematicName",
                "Aspergillus oryzae",
            ),
            ("seq:NEN94295-05", "EMP#Length", "2210"),
            ("seq:X99999", "EMP#SystematicName", "Escherichia coli"),
            ("seq:X99999", "EMP#Length", "512"),
        ] {
            sys.insert_triple(p0, Triple::new(s, p, Term::literal(o)))
                .unwrap();
        }
        sys
    }

    fn organism_length_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec!["x".into(), "len".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("%Aspergillus%")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
            ],
        )
        .expect("valid query")
    }

    #[test]
    fn conjunctive_joins_across_schemas() {
        // The EMBL-vocabulary query must also find the EMP record via
        // the mapping: {A78712, 1042} and {NEN94295-05, 2210}.
        let mut sys = federation();
        for strategy in [Strategy::Iterative, Strategy::Recursive] {
            for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
                let out = sys
                    .search_conjunctive(PeerId(3), &organism_length_query(), strategy, mode)
                    .unwrap();
                let rows: Vec<String> = out.bindings.iter().map(|b| b.to_string()).collect();
                assert_eq!(
                    out.bindings.len(),
                    2,
                    "{strategy:?}/{mode:?} rows: {rows:?}"
                );
                assert!(rows
                    .iter()
                    .any(|r| r.contains("A78712") && r.contains("1042")));
                assert!(rows
                    .iter()
                    .any(|r| r.contains("NEN94295-05") && r.contains("2210")));
                assert!(out.messages > 0);
            }
        }
    }

    #[test]
    fn modes_agree_on_results() {
        let mut sys = federation();
        let q = organism_length_query();
        let a = sys
            .search_conjunctive(PeerId(1), &q, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        let b = sys
            .search_conjunctive(
                PeerId(1),
                &q,
                Strategy::Iterative,
                JoinMode::BoundSubstitution,
            )
            .unwrap();
        assert_eq!(a.bindings, b.bindings);
    }

    #[test]
    fn bound_mode_issues_more_subqueries_but_matches_fewer_rows() {
        let mut sys = federation();
        let q = organism_length_query();
        let ind = sys
            .search_conjunctive(PeerId(1), &q, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        let bnd = sys
            .search_conjunctive(
                PeerId(1),
                &q,
                Strategy::Iterative,
                JoinMode::BoundSubstitution,
            )
            .unwrap();
        // Bound substitution resolves one instance per surviving row of
        // the first pattern (3 organisms) instead of one sweep of the
        // unconstrained second pattern.
        assert!(
            bnd.subqueries >= ind.subqueries,
            "bound {} vs independent {}",
            bnd.subqueries,
            ind.subqueries
        );
    }

    #[test]
    fn unsatisfiable_join_returns_empty() {
        let mut sys = federation();
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("Aspergillus nidulans")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
            ],
        )
        .unwrap();
        for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
            let out = sys
                .search_conjunctive(PeerId(2), &q, Strategy::Iterative, mode)
                .unwrap();
            assert!(out.bindings.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn single_pattern_conjunctive_agrees_with_search() {
        let mut sys = federation();
        let single = TriplePatternQuery::example_aspergillus();
        let cq = ConjunctiveQuery::new(vec!["x".into()], vec![single.pattern.clone()]).unwrap();
        let s = sys.search(PeerId(5), &single, Strategy::Iterative).unwrap();
        let c = sys
            .search_conjunctive(PeerId(5), &cq, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        let mut from_conj: Vec<Term> = c
            .bindings
            .iter()
            .filter_map(|b| b.get("x").cloned())
            .collect();
        from_conj.sort();
        from_conj.dedup();
        assert_eq!(s.results, from_conj);
    }

    #[test]
    fn projection_respects_distinguished_variables() {
        let mut sys = federation();
        let q = ConjunctiveQuery::new(
            vec!["x".into()], // drop ?len
            organism_length_query().patterns,
        )
        .unwrap();
        let out = sys
            .search_conjunctive(PeerId(0), &q, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        for b in &out.bindings {
            assert!(b.get("x").is_some());
            assert!(b.get("len").is_none());
        }
    }

    #[test]
    fn ground_second_pattern_acts_as_filter() {
        let mut sys = federation();
        // ?x is an organism match AND the specific length fact must hold.
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("%Aspergillus%")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::constant(Term::literal("1042")),
                ),
            ],
        )
        .unwrap();
        for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
            let out = sys
                .search_conjunctive(PeerId(4), &q, Strategy::Iterative, mode)
                .unwrap();
            assert_eq!(out.bindings.len(), 1, "{mode:?}");
            assert_eq!(
                out.bindings[0].get("x"),
                Some(&Term::uri("seq:A78712")),
                "{mode:?}"
            );
        }
    }
}
