//! Distributed conjunctive queries (§2.3).
//!
//! "Conjunctive queries can be resolved in a similar manner, by
//! iteratively resolving each triple pattern contained in the query and
//! aggregating the sets of results retrieved." The paper leaves the
//! aggregation policy open; this module implements the two classic
//! options so they can be compared (ablation A4):
//!
//! * [`JoinMode::Independent`] — every triple pattern is resolved over
//!   the full mapping network on its own, all matching bindings are
//!   shipped back to the origin, and the origin joins the binding sets
//!   locally. Simple, one network sweep per pattern, but it pays to ship
//!   *every* match of *every* pattern even when the join keeps almost
//!   none of them.
//!
//! * [`JoinMode::BoundSubstitution`] — patterns are resolved in
//!   selectivity order; each partial solution row is substituted into
//!   the next pattern before that subquery is shipped
//!   ([`TriplePattern::substitute`]), so the overlay only ever evaluates
//!   patterns already constrained by earlier answers. This is the
//!   semi-join/bound-join strategy of distributed query processing: more
//!   routed subqueries, far fewer irrelevant results on the wire.
//!
//! Both modes reformulate every (sub)pattern through the mapping network
//! exactly like single-pattern [`GridVineSystem::search`], so a
//! conjunctive query also benefits from the self-organizing mapping
//! layer of §3.

use super::*;
use gridvine_rdf::join::{hash_join_rows, TermInterner, VarTable, UNBOUND};
use gridvine_rdf::{Binding, ConjunctiveQuery, TriplePattern};
use std::borrow::Cow;
use std::collections::HashMap;
use std::rc::Rc;

/// How the binding sets of the individual triple patterns are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinMode {
    /// Resolve each pattern over the network independently, join at the
    /// origin.
    Independent,
    /// Substitute partial solutions into subsequent patterns before
    /// routing them (bound join).
    BoundSubstitution,
}

/// Outcome of one distributed conjunctive `SearchFor`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConjunctiveOutcome {
    /// Solution rows, projected onto the distinguished variables,
    /// deduplicated and sorted.
    pub bindings: Vec<Binding>,
    /// Overlay messages consumed.
    pub messages: u64,
    /// Routed pattern resolutions (original patterns, reformulations and
    /// bound-substituted instances all count).
    pub subqueries: usize,
    /// Mapping applications across all patterns.
    pub reformulations: usize,
    /// Schemas reached, summed over patterns (each pattern's traversal
    /// counts its own distinct set, including the pattern's own schema).
    pub schemas_visited: usize,
    /// Subqueries that could not be routed or resolved.
    pub failures: usize,
    /// Total matching bindings returned by destination peers across all
    /// subqueries, *before* joining — a proxy for result bytes on the
    /// wire. This, not the routed message count, is where the two join
    /// modes differ asymptotically: an unconstrained pattern ships its
    /// full extension under [`JoinMode::Independent`], while
    /// [`JoinMode::BoundSubstitution`] only ships matches of already-
    /// constrained instances.
    pub bindings_shipped: usize,
}

/// Result of resolving one pattern across the mapping network.
#[derive(Debug, Clone, Default)]
struct PatternNetOutcome {
    bindings: Vec<Binding>,
    subqueries: usize,
    reformulations: usize,
    schemas_visited: usize,
    failures: usize,
}

impl PatternNetOutcome {
    /// Fold this pattern-level traversal into the query-level outcome.
    fn charge(&self, out: &mut ConjunctiveOutcome) {
        out.subqueries += self.subqueries;
        out.reformulations += self.reformulations;
        out.schemas_visited += self.schemas_visited;
        out.failures += self.failures;
        out.bindings_shipped += self.bindings.len();
    }
}

impl GridVineSystem {
    /// Resolve one concrete triple pattern at its routing key and return
    /// every matching binding from the destination peer's database —
    /// the destination's indexed `DB_p` via
    /// [`gridvine_rdf::TripleStore::match_pattern`], with the response
    /// message charged exactly as the old bucket `Retrieve` was.
    fn resolve_pattern_once(
        &mut self,
        origin: PeerId,
        pattern: &TriplePattern,
    ) -> Result<Vec<Binding>, SystemError> {
        let Some((_, term)) = pattern.routing_constant() else {
            return Err(SystemError::NotRoutable);
        };
        let key = self.key_of(term.lexical());
        let route = self.overlay.route(origin, &key, &mut self.rng)?;
        self.overlay.charge_response(origin, route.destination);
        Ok(self.local_dbs[route.destination.index()].match_pattern(pattern))
    }

    /// Resolve a pattern over the mapping network: answer it in its own
    /// schema, then in every schema reachable through active mappings
    /// (within the TTL), aggregating bindings. Patterns whose predicate
    /// is a variable (or does not name a schema) are resolved once,
    /// without reformulation — there is no schema to translate from.
    fn resolve_pattern_network(
        &mut self,
        origin: PeerId,
        pattern: &TriplePattern,
        strategy: Strategy,
    ) -> Result<PatternNetOutcome, SystemError> {
        let mut out = PatternNetOutcome::default();

        let Ok((origin_schema, _)) = gridvine_semantic::pattern_schema(pattern) else {
            // Un-schema'd pattern: a single routed resolution.
            out.subqueries = 1;
            out.bindings = self.resolve_pattern_once(origin, pattern)?;
            return Ok(out);
        };

        // Schema ids are shared via `Rc` between the visited set and the
        // frontier, and the origin pattern is borrowed (`Cow`) — the
        // traversal only clones what a hop actually creates (the
        // reformulated pattern and one `Rc` bump per discovered schema).
        let origin_schema = Rc::new(origin_schema);
        let mut visited: BTreeSet<Rc<SchemaId>> = BTreeSet::new();
        visited.insert(Rc::clone(&origin_schema));
        let mut frontier: Vec<(Rc<SchemaId>, Cow<'_, TriplePattern>, PeerId, usize)> =
            vec![(origin_schema, Cow::Borrowed(pattern), origin, 0)];

        while let Some((schema, pat, at_peer, depth)) = frontier.pop() {
            out.subqueries += 1;
            match self.resolve_pattern_once(at_peer, &pat) {
                Ok(bindings) => out.bindings.extend(bindings),
                Err(_) => out.failures += 1,
            }
            if depth >= self.config.ttl {
                continue;
            }
            let schema_key = self.key_of(schema.as_str());
            let (next_peer, mappings) = match strategy {
                Strategy::Iterative => (origin, self.mappings_at_schema(origin, &schema)?),
                Strategy::Recursive => {
                    let route = self.overlay.route(at_peer, &schema_key, &mut self.rng)?;
                    let items = self
                        .overlay
                        .store(route.destination)
                        .get(&schema_key)
                        .to_vec();
                    let maps = items
                        .into_iter()
                        .filter_map(|i| match i {
                            MediationItem::Mapping { mapping, .. } => Some(mapping),
                            _ => None,
                        })
                        .collect();
                    (route.destination, maps)
                }
            };
            for m in mappings {
                let Some(dir) = m.applicable_from(&schema) else {
                    continue;
                };
                if visited.contains(m.destination(dir)) {
                    continue;
                }
                let Some(np) = gridvine_semantic::reformulate_pattern(&pat, &m, dir) else {
                    continue;
                };
                let dest = Rc::new(m.destination(dir).clone());
                visited.insert(Rc::clone(&dest));
                out.reformulations += 1;
                frontier.push((dest, Cow::Owned(np), next_peer, depth + 1));
            }
        }
        out.schemas_visited = visited.len();
        Ok(out)
    }

    /// `SearchFor` for a conjunctive query: iteratively resolve each
    /// triple pattern over the overlay (with reformulation through the
    /// mapping network, per `strategy`) and aggregate the binding sets
    /// into solution rows (§2.3).
    ///
    /// ```
    /// use gridvine_core::{GridVineConfig, GridVineSystem, JoinMode, Strategy};
    /// use gridvine_pgrid::PeerId;
    /// use gridvine_rdf::{parse_query, Term, Triple};
    /// use gridvine_semantic::Schema;
    ///
    /// let mut gv = GridVineSystem::new(GridVineConfig::default());
    /// let p = PeerId(0);
    /// gv.insert_schema(p, Schema::new("EMBL", ["Organism", "SequenceLength"]))?;
    /// gv.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
    ///     Term::literal("Aspergillus niger")))?;
    /// gv.insert_triple(p, Triple::new("seq:A78712", "EMBL#SequenceLength",
    ///     Term::literal("1042")))?;
    ///
    /// let q = parse_query(
    ///     r#"SELECT ?x, ?len WHERE (?x, <EMBL#Organism>, "%Aspergillus%"),
    ///                             (?x, <EMBL#SequenceLength>, ?len)"#)?;
    /// let out = gv.search_conjunctive(p, &q, Strategy::Iterative,
    ///     JoinMode::BoundSubstitution)?;
    /// assert_eq!(out.bindings.len(), 1);
    /// assert_eq!(out.bindings[0].get("len"), Some(&Term::literal("1042")));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// Under [`JoinMode::BoundSubstitution`] a subquery instance that
    /// ends up with no routable constant (possible only if the pattern
    /// shares no variable with its predecessors *and* carries no
    /// constant) is counted in
    /// [`failures`](ConjunctiveOutcome::failures) and its candidate row
    /// is dropped; well-formed conjunctive queries — connected join
    /// graphs with at least one constant per component — never hit this.
    pub fn search_conjunctive(
        &mut self,
        origin: PeerId,
        query: &ConjunctiveQuery,
        strategy: Strategy,
        mode: JoinMode,
    ) -> Result<ConjunctiveOutcome, SystemError> {
        let before = self.overlay.messages_sent();
        let mut out = ConjunctiveOutcome::default();

        // The hash-join binding engine (gridvine_rdf::join): solution
        // rows are term-code vectors over the query's variable slots,
        // coded against a query-scoped interner (peers materialize terms
        // into the wire format, so codes must be assigned at the
        // origin). Joins and dedup compare u64s; terms are materialized
        // again only for the rows that survive.
        let vars = VarTable::from_patterns(&query.patterns);
        let mut interner = TermInterner::new();
        let mut rows: Vec<Vec<u64>> = vec![vars.empty_row()];
        match mode {
            JoinMode::Independent => {
                // One full network sweep per pattern, hash-join the
                // binding sets afterwards.
                let mut sets: Vec<Vec<Vec<u64>>> = Vec::with_capacity(query.patterns.len());
                for pattern in &query.patterns {
                    let net = self.resolve_pattern_network(origin, pattern, strategy)?;
                    net.charge(&mut out);
                    sets.push(
                        net.bindings
                            .iter()
                            .map(|b| interner.encode(b, &vars))
                            .collect(),
                    );
                }
                for set in sets {
                    rows = hash_join_rows(&rows, &set);
                    if rows.is_empty() {
                        break;
                    }
                }
            }
            JoinMode::BoundSubstitution => {
                // Most selective pattern first: more constants, longer
                // routing constant, fewer variables.
                let mut order: Vec<&TriplePattern> = query.patterns.iter().collect();
                order.sort_by_key(|p| {
                    let routable_len = p
                        .routing_constant()
                        .map(|(_, t)| t.lexical().len())
                        .unwrap_or(0);
                    (
                        std::cmp::Reverse(p.constants().len()),
                        std::cmp::Reverse(routable_len),
                        p.variables().len(),
                    )
                });
                for pattern in order {
                    // Rows agreeing on the pattern's already-bound
                    // variables produce the same substituted instance —
                    // group by those codes so each instance is resolved
                    // once, instead of the old O(rows²) pattern-equality
                    // scan.
                    let bound_slots: Vec<(usize, &str)> = pattern
                        .variables()
                        .iter()
                        .filter_map(|v| {
                            let slot = vars.slot(v)?;
                            (rows[0][slot] != UNBOUND).then_some((slot, *v))
                        })
                        .collect();
                    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (rep row, members)
                    let mut by_key: HashMap<Vec<u64>, usize> = HashMap::new();
                    for (i, row) in rows.iter().enumerate() {
                        let key: Vec<u64> = bound_slots.iter().map(|&(s, _)| row[s]).collect();
                        match by_key.get(&key) {
                            Some(&g) => groups[g].1.push(i),
                            None => {
                                by_key.insert(key, groups.len());
                                groups.push((i, vec![i]));
                            }
                        }
                    }
                    let mut next = Vec::new();
                    for (rep, members) in groups {
                        let mut seed = Binding::new();
                        for &(slot, name) in &bound_slots {
                            seed.bind(name.to_string(), interner.term(rows[rep][slot]).clone());
                        }
                        let sub = pattern.substitute(&seed);
                        match self.resolve_pattern_network(origin, &sub, strategy) {
                            Ok(net) => {
                                net.charge(&mut out);
                                // The substituted instance's matches bind
                                // only the pattern's remaining variables:
                                // merge each into every member row.
                                let fragments: Vec<Vec<u64>> = net
                                    .bindings
                                    .iter()
                                    .map(|b| interner.encode(b, &vars))
                                    .collect();
                                for &i in &members {
                                    let member = std::slice::from_ref(&rows[i]);
                                    next.extend(hash_join_rows(member, &fragments));
                                }
                            }
                            Err(SystemError::NotRoutable) => {
                                out.failures += 1;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    rows = next;
                    if rows.is_empty() {
                        break;
                    }
                }
            }
        }

        // π onto the distinguished variables; dedup on codes before any
        // term is materialized. `slots` and `proj` share one filtered
        // name set so a distinguished variable absent from every
        // pattern is skipped rather than misaligning names.
        let mut slots: Vec<usize> = Vec::with_capacity(query.distinguished.len());
        let mut proj = VarTable::new();
        for d in &query.distinguished {
            if let Some(s) = vars.slot(d) {
                slots.push(s);
                proj.slot_of(d);
            }
        }
        let mut seen: BTreeSet<Vec<u64>> = BTreeSet::new();
        let mut bindings: Vec<Binding> = Vec::new();
        for row in &rows {
            let projected: Vec<u64> = slots.iter().map(|&s| row[s]).collect();
            if seen.insert(projected.clone()) {
                bindings.push(interner.decode(&projected, &proj));
            }
        }
        bindings.sort_by_key(|b| b.to_string());
        out.bindings = bindings;
        out.messages = self.overlay.messages_sent() - before;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvine_rdf::{PatternTerm, TriplePattern};

    /// Two schemas linked by a manual mapping, with sequence-length
    /// facts so a two-pattern join has work to do.
    fn federation() -> GridVineSystem {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("EMBL", ["Organism", "SequenceLength"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("EMP", ["SystematicName", "Length"]))
            .unwrap();
        sys.insert_mapping(
            p0,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new("Organism", "SystematicName"),
                Correspondence::new("SequenceLength", "Length"),
            ],
        )
        .unwrap();
        for (s, p, o) in [
            ("seq:A78712", "EMBL#Organism", "Aspergillus niger"),
            ("seq:A78712", "EMBL#SequenceLength", "1042"),
            ("seq:A78767", "EMBL#Organism", "Aspergillus nidulans"),
            // A78767 has no length fact anywhere: joins must drop it.
            (
                "seq:NEN94295-05",
                "EMP#SystematicName",
                "Aspergillus oryzae",
            ),
            ("seq:NEN94295-05", "EMP#Length", "2210"),
            ("seq:X99999", "EMP#SystematicName", "Escherichia coli"),
            ("seq:X99999", "EMP#Length", "512"),
        ] {
            sys.insert_triple(p0, Triple::new(s, p, Term::literal(o)))
                .unwrap();
        }
        sys
    }

    fn organism_length_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec!["x".into(), "len".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("%Aspergillus%")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
            ],
        )
        .expect("valid query")
    }

    #[test]
    fn conjunctive_joins_across_schemas() {
        // The EMBL-vocabulary query must also find the EMP record via
        // the mapping: {A78712, 1042} and {NEN94295-05, 2210}.
        let mut sys = federation();
        for strategy in [Strategy::Iterative, Strategy::Recursive] {
            for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
                let out = sys
                    .search_conjunctive(PeerId(3), &organism_length_query(), strategy, mode)
                    .unwrap();
                let rows: Vec<String> = out.bindings.iter().map(|b| b.to_string()).collect();
                assert_eq!(
                    out.bindings.len(),
                    2,
                    "{strategy:?}/{mode:?} rows: {rows:?}"
                );
                assert!(rows
                    .iter()
                    .any(|r| r.contains("A78712") && r.contains("1042")));
                assert!(rows
                    .iter()
                    .any(|r| r.contains("NEN94295-05") && r.contains("2210")));
                assert!(out.messages > 0);
            }
        }
    }

    #[test]
    fn modes_agree_on_results() {
        let mut sys = federation();
        let q = organism_length_query();
        let a = sys
            .search_conjunctive(PeerId(1), &q, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        let b = sys
            .search_conjunctive(
                PeerId(1),
                &q,
                Strategy::Iterative,
                JoinMode::BoundSubstitution,
            )
            .unwrap();
        assert_eq!(a.bindings, b.bindings);
    }

    #[test]
    fn bound_mode_issues_more_subqueries_but_matches_fewer_rows() {
        let mut sys = federation();
        let q = organism_length_query();
        let ind = sys
            .search_conjunctive(PeerId(1), &q, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        let bnd = sys
            .search_conjunctive(
                PeerId(1),
                &q,
                Strategy::Iterative,
                JoinMode::BoundSubstitution,
            )
            .unwrap();
        // Bound substitution resolves one instance per surviving row of
        // the first pattern (3 organisms) instead of one sweep of the
        // unconstrained second pattern.
        assert!(
            bnd.subqueries >= ind.subqueries,
            "bound {} vs independent {}",
            bnd.subqueries,
            ind.subqueries
        );
    }

    #[test]
    fn unsatisfiable_join_returns_empty() {
        let mut sys = federation();
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("Aspergillus nidulans")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
            ],
        )
        .unwrap();
        for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
            let out = sys
                .search_conjunctive(PeerId(2), &q, Strategy::Iterative, mode)
                .unwrap();
            assert!(out.bindings.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn single_pattern_conjunctive_agrees_with_search() {
        let mut sys = federation();
        let single = TriplePatternQuery::example_aspergillus();
        let cq = ConjunctiveQuery::new(vec!["x".into()], vec![single.pattern.clone()]).unwrap();
        let s = sys.search(PeerId(5), &single, Strategy::Iterative).unwrap();
        let c = sys
            .search_conjunctive(PeerId(5), &cq, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        let mut from_conj: Vec<Term> = c
            .bindings
            .iter()
            .filter_map(|b| b.get("x").cloned())
            .collect();
        from_conj.sort();
        from_conj.dedup();
        assert_eq!(s.results, from_conj);
    }

    #[test]
    fn projection_respects_distinguished_variables() {
        let mut sys = federation();
        let q = ConjunctiveQuery::new(
            vec!["x".into()], // drop ?len
            organism_length_query().patterns,
        )
        .unwrap();
        let out = sys
            .search_conjunctive(PeerId(0), &q, Strategy::Iterative, JoinMode::Independent)
            .unwrap();
        for b in &out.bindings {
            assert!(b.get("x").is_some());
            assert!(b.get("len").is_none());
        }
    }

    #[test]
    fn ground_second_pattern_acts_as_filter() {
        let mut sys = federation();
        // ?x is an organism match AND the specific length fact must hold.
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("%Aspergillus%")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::constant(Term::literal("1042")),
                ),
            ],
        )
        .unwrap();
        for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
            let out = sys
                .search_conjunctive(PeerId(4), &q, Strategy::Iterative, mode)
                .unwrap();
            assert_eq!(out.bindings.len(), 1, "{mode:?}");
            assert_eq!(
                out.bindings[0].get("x"),
                Some(&Term::uri("seq:A78712")),
                "{mode:?}"
            );
        }
    }
}
