//! Distributed conjunctive queries (§2.3).
//!
//! "Conjunctive queries can be resolved in a similar manner, by
//! iteratively resolving each triple pattern contained in the query and
//! aggregating the sets of results retrieved." The paper leaves the
//! aggregation policy open; this module defines the two classic options
//! so they can be compared (ablation A4):
//!
//! * [`JoinMode::Independent`] — every triple pattern is resolved over
//!   the full mapping network on its own, all matching bindings are
//!   shipped back to the origin, and the origin joins the binding sets
//!   locally. Simple, one network sweep per pattern, but it pays to ship
//!   *every* match of *every* pattern even when the join keeps almost
//!   none of them.
//!
//! * [`JoinMode::BoundSubstitution`] — patterns are resolved in
//!   selectivity order; each partial solution row is substituted into
//!   the next pattern before that subquery is shipped
//!   ([`gridvine_rdf::TriplePattern::substitute`]), so the overlay only ever evaluates
//!   patterns already constrained by earlier answers. This is the
//!   semi-join/bound-join strategy of distributed query processing: more
//!   routed subqueries, far fewer irrelevant results on the wire.
//!
//! Both modes reformulate every (sub)pattern through the mapping network
//! exactly like a single-pattern closure plan, so a conjunctive query
//! also benefits from the self-organizing mapping layer of §3 — and from
//! the epoch-keyed reformulation-closure cache: every bound-substituted
//! instance of a pattern shares its predicate, so after the first
//! instance's walk the remaining instances replay the memoized closure.
//!
//! Execution lives behind the plan surface: build
//! [`QueryPlan::conjunctive`](crate::plan::QueryPlan::conjunctive) and
//! either drain it with [`GridVineSystem::execute`] or pull it
//! incrementally with [`GridVineSystem::open`] (the legacy
//! `search_conjunctive` entry point completed its deprecation cycle and
//! is gone — see the migration table in [`super::session`]).
//!
//! ```
//! use gridvine_core::{GridVineConfig, GridVineSystem, JoinMode, QueryOptions, QueryPlan, Strategy};
//! use gridvine_pgrid::PeerId;
//! use gridvine_rdf::{parse_query, Term, Triple};
//! use gridvine_semantic::Schema;
//!
//! let mut gv = GridVineSystem::new(GridVineConfig::default());
//! let p = PeerId(0);
//! gv.insert_schema(p, Schema::new("EMBL", ["Organism", "SequenceLength"]))?;
//! gv.insert_triple(p, Triple::new("seq:A78712", "EMBL#Organism",
//!     Term::literal("Aspergillus niger")))?;
//! gv.insert_triple(p, Triple::new("seq:A78712", "EMBL#SequenceLength",
//!     Term::literal("1042")))?;
//!
//! let q = parse_query(
//!     r#"SELECT ?x, ?len WHERE (?x, <EMBL#Organism>, "%Aspergillus%"),
//!                             (?x, <EMBL#SequenceLength>, ?len)"#)?;
//! let out = gv.execute(p, &QueryPlan::conjunctive(q),
//!     &QueryOptions::new().strategy(Strategy::Iterative)
//!         .join_mode(JoinMode::BoundSubstitution))?;
//! assert_eq!(out.rows.len(), 1);
//! assert_eq!(out.rows[0].get("len"), Some(&Term::literal("1042")));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Under [`JoinMode::BoundSubstitution`] a subquery instance that ends
//! up with no routable constant (possible only if the pattern shares no
//! variable with its predecessors *and* carries no constant) is counted
//! in [`ExecStats::failures`](super::exec::ExecStats::failures) and its
//! candidate row is dropped; well-formed conjunctive queries — connected
//! join graphs with at least one constant per component — never hit
//! this.

use super::*;

/// How the binding sets of the individual triple patterns are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinMode {
    /// Resolve each pattern over the network independently, join at the
    /// origin.
    Independent,
    /// Substitute partial solutions into subsequent patterns before
    /// routing them (bound join).
    BoundSubstitution,
}

#[cfg(test)]
mod tests {
    use super::exec::{QueryOptions, QueryOutcome};
    use super::*;
    use crate::plan::QueryPlan;
    use gridvine_rdf::{ConjunctiveQuery, PatternTerm, Term, TriplePattern};

    fn conjunctive(
        sys: &mut GridVineSystem,
        origin: PeerId,
        q: &ConjunctiveQuery,
        strategy: Strategy,
        mode: JoinMode,
    ) -> QueryOutcome {
        sys.execute(
            origin,
            &QueryPlan::conjunctive(q.clone()),
            &QueryOptions::new().strategy(strategy).join_mode(mode),
        )
        .unwrap()
    }

    /// Two schemas linked by a manual mapping, with sequence-length
    /// facts so a two-pattern join has work to do.
    fn federation() -> GridVineSystem {
        let mut sys = GridVineSystem::new(GridVineConfig {
            peers: 32,
            ..GridVineConfig::default()
        });
        let p0 = PeerId(0);
        sys.insert_schema(p0, Schema::new("EMBL", ["Organism", "SequenceLength"]))
            .unwrap();
        sys.insert_schema(p0, Schema::new("EMP", ["SystematicName", "Length"]))
            .unwrap();
        sys.insert_mapping(
            p0,
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![
                Correspondence::new("Organism", "SystematicName"),
                Correspondence::new("SequenceLength", "Length"),
            ],
        )
        .unwrap();
        for (s, p, o) in [
            ("seq:A78712", "EMBL#Organism", "Aspergillus niger"),
            ("seq:A78712", "EMBL#SequenceLength", "1042"),
            ("seq:A78767", "EMBL#Organism", "Aspergillus nidulans"),
            // A78767 has no length fact anywhere: joins must drop it.
            (
                "seq:NEN94295-05",
                "EMP#SystematicName",
                "Aspergillus oryzae",
            ),
            ("seq:NEN94295-05", "EMP#Length", "2210"),
            ("seq:X99999", "EMP#SystematicName", "Escherichia coli"),
            ("seq:X99999", "EMP#Length", "512"),
        ] {
            sys.insert_triple(p0, Triple::new(s, p, Term::literal(o)))
                .unwrap();
        }
        sys
    }

    fn organism_length_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            vec!["x".into(), "len".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("%Aspergillus%")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
            ],
        )
        .expect("valid query")
    }

    #[test]
    fn conjunctive_joins_across_schemas() {
        // The EMBL-vocabulary query must also find the EMP record via
        // the mapping: {A78712, 1042} and {NEN94295-05, 2210}.
        let mut sys = federation();
        for strategy in [Strategy::Iterative, Strategy::Recursive] {
            for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
                let out = conjunctive(
                    &mut sys,
                    PeerId(3),
                    &organism_length_query(),
                    strategy,
                    mode,
                );
                let rows: Vec<String> = out.rows.iter().map(|b| b.to_string()).collect();
                assert_eq!(out.rows.len(), 2, "{strategy:?}/{mode:?} rows: {rows:?}");
                assert!(rows
                    .iter()
                    .any(|r| r.contains("A78712") && r.contains("1042")));
                assert!(rows
                    .iter()
                    .any(|r| r.contains("NEN94295-05") && r.contains("2210")));
                assert!(out.stats.messages > 0);
            }
        }
    }

    #[test]
    fn modes_agree_on_results() {
        let mut sys = federation();
        let q = organism_length_query();
        let a = conjunctive(
            &mut sys,
            PeerId(1),
            &q,
            Strategy::Iterative,
            JoinMode::Independent,
        );
        let b = conjunctive(
            &mut sys,
            PeerId(1),
            &q,
            Strategy::Iterative,
            JoinMode::BoundSubstitution,
        );
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn bound_mode_issues_more_subqueries_but_matches_fewer_rows() {
        let mut sys = federation();
        let q = organism_length_query();
        let ind = conjunctive(
            &mut sys,
            PeerId(1),
            &q,
            Strategy::Iterative,
            JoinMode::Independent,
        );
        let bnd = conjunctive(
            &mut sys,
            PeerId(1),
            &q,
            Strategy::Iterative,
            JoinMode::BoundSubstitution,
        );
        // Bound substitution resolves one instance per surviving row of
        // the first pattern (3 organisms) instead of one sweep of the
        // unconstrained second pattern.
        assert!(
            bnd.stats.subqueries >= ind.stats.subqueries,
            "bound {} vs independent {}",
            bnd.stats.subqueries,
            ind.stats.subqueries
        );
    }

    #[test]
    fn unsatisfiable_join_returns_empty() {
        let mut sys = federation();
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("Aspergillus nidulans")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
            ],
        )
        .unwrap();
        for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
            let out = conjunctive(&mut sys, PeerId(2), &q, Strategy::Iterative, mode);
            assert!(out.rows.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn single_pattern_conjunctive_agrees_with_search() {
        let mut sys = federation();
        let single = TriplePatternQuery::example_aspergillus();
        let cq = ConjunctiveQuery::new(vec!["x".into()], vec![single.pattern.clone()]).unwrap();
        let s = sys
            .execute(
                PeerId(5),
                &QueryPlan::search(single.clone()),
                &QueryOptions::default(),
            )
            .unwrap();
        let c = conjunctive(
            &mut sys,
            PeerId(5),
            &cq,
            Strategy::Iterative,
            JoinMode::Independent,
        );
        assert_eq!(s.terms(&single.distinguished), c.terms("x"));
    }

    #[test]
    fn projection_respects_distinguished_variables() {
        let mut sys = federation();
        let q = ConjunctiveQuery::new(
            vec!["x".into()], // drop ?len
            organism_length_query().patterns,
        )
        .unwrap();
        let out = conjunctive(
            &mut sys,
            PeerId(0),
            &q,
            Strategy::Iterative,
            JoinMode::Independent,
        );
        assert!(!out.rows.is_empty());
        for b in &out.rows {
            assert!(b.get("x").is_some());
            assert!(b.get("len").is_none());
        }
    }

    #[test]
    fn ground_second_pattern_acts_as_filter() {
        let mut sys = federation();
        // ?x is an organism match AND the specific length fact must hold.
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("%Aspergillus%")),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::constant(Term::literal("1042")),
                ),
            ],
        )
        .unwrap();
        for mode in [JoinMode::Independent, JoinMode::BoundSubstitution] {
            let out = conjunctive(&mut sys, PeerId(4), &q, Strategy::Iterative, mode);
            assert_eq!(out.rows.len(), 1, "{mode:?}");
            assert_eq!(
                out.rows[0].get("x"),
                Some(&Term::uri("seq:A78712")),
                "{mode:?}"
            );
        }
    }
}
