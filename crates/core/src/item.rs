//! Mediation-layer items and their overlay keys.
//!
//! Everything GridVine shares lives in the DHT (§2.2–§3.1):
//!
//! * a **triple** is indexed three times — `Update(Hash(s), t)`,
//!   `Update(Hash(p), t)`, `Update(Hash(o), t)`;
//! * a **schema** at `Hash(Schema Name)`;
//! * a **mapping** at the source schema's key space — "or at the key
//!   spaces corresponding to both schemas if the mapping is
//!   bidirectional" (§3); we also place a lightweight record at the
//!   target of one-way mappings so the target peer can maintain its
//!   in-degree for the §3.1 statistics (see `DESIGN.md`);
//! * a **connectivity record** at `Hash(Domain)`.

use gridvine_pgrid::{BitString, KeyHasher};
use gridvine_rdf::Triple;
use gridvine_semantic::{DegreeRecord, Mapping, MappingKind, Schema};
use serde::{Deserialize, Serialize};

/// A value stored in the overlay by the mediation layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MediationItem {
    Triple(Triple),
    Schema(Schema),
    /// A mapping stored at one of its schema key spaces; `at_source`
    /// says which role this copy plays.
    Mapping {
        mapping: Mapping,
        at_source: bool,
    },
    Connectivity(DegreeRecord),
}

impl MediationItem {
    /// Byte estimate for transfer accounting.
    pub fn approx_size(&self) -> usize {
        match self {
            MediationItem::Triple(t) => {
                t.subject.as_str().len() + t.predicate.as_str().len() + t.object.lexical().len()
            }
            MediationItem::Schema(s) => {
                s.id().as_str().len() + s.attributes().iter().map(String::len).sum::<usize>()
            }
            MediationItem::Mapping { mapping, .. } => {
                mapping.source.as_str().len()
                    + mapping.target.as_str().len()
                    + mapping
                        .correspondences
                        .iter()
                        .map(|c| c.source_attr.len() + c.target_attr.len())
                        .sum::<usize>()
            }
            MediationItem::Connectivity(r) => r.schema.as_str().len() + 16,
        }
    }
}

/// Derives overlay keys for mediation items using the configured hash.
pub struct KeySpace<'a> {
    hasher: &'a (dyn KeyHasher + Send + Sync),
    depth: usize,
}

impl<'a> KeySpace<'a> {
    pub fn new(hasher: &'a (dyn KeyHasher + Send + Sync), depth: usize) -> KeySpace<'a> {
        assert!(depth > 0, "key depth must be positive");
        KeySpace { hasher, depth }
    }

    /// Key of an arbitrary lexical value.
    pub fn key_of(&self, lexical: &str) -> BitString {
        self.hasher.hash(lexical, self.depth)
    }

    /// The three index keys of a triple (subject, predicate, object).
    pub fn triple_keys(&self, t: &Triple) -> [BitString; 3] {
        [
            self.key_of(t.subject.as_str()),
            self.key_of(t.predicate.as_str()),
            self.key_of(t.object.lexical()),
        ]
    }

    /// Key a schema definition lives under.
    pub fn schema_key(&self, schema: &Schema) -> BitString {
        self.key_of(schema.id().as_str())
    }

    /// Keys a mapping is stored under: always the source schema key;
    /// bidirectional (equivalence) mappings and in-degree records also
    /// at the target.
    pub fn mapping_keys(&self, m: &Mapping) -> Vec<(BitString, bool)> {
        let mut keys = vec![(self.key_of(m.source.as_str()), true)];
        if m.kind == MappingKind::Equivalence {
            // §3: "at the key spaces corresponding to both schemas if the
            // mapping is bidirectional"; one-way subsumption mappings are
            // only discoverable from their source schema.
            keys.push((self.key_of(m.target.as_str()), false));
        }
        keys
    }

    /// Key of the domain connectivity aggregation.
    pub fn domain_key(&self, domain: &str) -> BitString {
        self.key_of(domain)
    }

    /// The bit prefix covering *every* key of a lexical value starting
    /// with `prefix` — the primitive behind `Aspergillus%`-style range
    /// searches. Only meaningful under the order-preserving hash: it is
    /// the common prefix of the hashes of the interval endpoints
    /// `[prefix, prefix·0x7F…)`.
    pub fn prefix_key(&self, prefix: &str) -> BitString {
        let lo = self.hasher.hash(prefix, self.depth);
        let mut upper = String::with_capacity(prefix.len() + 16);
        upper.push_str(prefix);
        for _ in 0..16 {
            upper.push('\u{7e}'); // '~': top of the printable alphabet
        }
        let hi = self.hasher.hash(&upper, self.depth);
        lo.prefix(lo.common_prefix_len(&hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvine_pgrid::OrderPreservingHash;
    use gridvine_rdf::Term;
    use gridvine_semantic::{Correspondence, MappingId, Provenance};

    fn keyspace(h: &OrderPreservingHash) -> KeySpace<'_> {
        KeySpace::new(h, 24)
    }

    #[test]
    fn triple_indexed_three_times() {
        let h = OrderPreservingHash::default();
        let ks = keyspace(&h);
        let t = Triple::new(
            "seq:P1",
            "EMBL#Organism",
            Term::literal("Aspergillus niger"),
        );
        let [s, p, o] = ks.triple_keys(&t);
        assert_eq!(s.len(), 24);
        assert_ne!(s, p);
        assert_ne!(p, o);
        // Keys derive from lexical values only.
        assert_eq!(s, ks.key_of("seq:P1"));
        assert_eq!(p, ks.key_of("EMBL#Organism"));
        assert_eq!(o, ks.key_of("Aspergillus niger"));
    }

    #[test]
    fn mapping_stored_at_both_schema_keys() {
        let h = OrderPreservingHash::default();
        let ks = keyspace(&h);
        let m = Mapping::new(
            MappingId(0),
            "EMBL",
            "EMP",
            MappingKind::Equivalence,
            Provenance::Manual,
            vec![Correspondence::new("Organism", "SystematicName")],
        );
        let keys = ks.mapping_keys(&m);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0], (ks.key_of("EMBL"), true));
        assert_eq!(keys[1], (ks.key_of("EMP"), false));
    }

    #[test]
    fn approx_size_is_positive_and_ordered() {
        let t = MediationItem::Triple(Triple::new(
            "seq:P1",
            "EMBL#Organism",
            Term::literal("Aspergillus niger"),
        ));
        let tiny = MediationItem::Triple(Triple::new("a", "b", Term::literal("c")));
        assert!(t.approx_size() > tiny.approx_size());
        assert!(tiny.approx_size() > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        let h = OrderPreservingHash::default();
        let _ = KeySpace::new(&h, 0);
    }

    #[test]
    fn prefix_key_covers_all_extensions() {
        let h = OrderPreservingHash::default();
        let ks = KeySpace::new(&h, 32);
        let p = ks.prefix_key("Aspergillus");
        assert!(!p.is_empty(), "a long prefix pins many bits");
        for s in [
            "Aspergillus",
            "Aspergillus niger",
            "Aspergillus oryzae var. brunneus",
        ] {
            assert!(
                p.is_prefix_of(&ks.key_of(s)),
                "{s} must hash under the prefix region"
            );
        }
        // And excludes non-matching values.
        assert!(!p.is_prefix_of(&ks.key_of("Penicillium")));
    }

    #[test]
    fn prefix_key_narrows_with_longer_prefixes() {
        let h = OrderPreservingHash::default();
        let ks = KeySpace::new(&h, 48);
        let short = ks.prefix_key("As");
        let long = ks.prefix_key("Aspergillus");
        assert!(short.len() < long.len());
        assert!(short.is_prefix_of(&long));
    }
}

#[cfg(test)]
mod prefix_proptests {
    use super::*;
    use gridvine_pgrid::OrderPreservingHash;
    use proptest::prelude::*;

    proptest! {
        /// Every extension of a prefix hashes inside the prefix region.
        #[test]
        fn prefix_region_sound(prefix in "[A-Za-z]{1,8}", suffix in "[A-Za-z ]{0,10}") {
            let h = OrderPreservingHash::default();
            let ks = KeySpace::new(&h, 48);
            let region = ks.prefix_key(&prefix);
            let full = format!("{prefix}{suffix}");
            prop_assert!(region.is_prefix_of(&ks.key_of(&full)),
                "{} outside region of {}", full, prefix);
        }
    }
}
