//! Policy-driven replica placement, heat migration and crash failover.
//!
//! The paper's P-Grid substrate stores each triple at exactly the σ(p)
//! owner group of its key, so failure injection on an owner turns every
//! query touching that key into a *recorded failure* — degraded rows,
//! not degraded latency. This module makes replication a first-class,
//! policy-driven mechanism layered over the PR 5–8 machinery: extra
//! replicas are provisioned per placement rule, reads pick the
//! lowest-expected-latency live holder, the timeout–retry protocol
//! fails over past dead holders before resolving
//! [`PeerDown`](super::SystemError::PeerDown), and windowed heat
//! telemetry migrates replicas toward hot origins.
//!
//! ## Lifecycle: policy → registry → routing → failover
//!
//! ```text
//!  PlacementPolicy (GridVineConfig::placement, serde; null = exactly-
//!        │          owner placement, bit-identical to PR 8)
//!        │ rule matches a lexical at insert time
//!        ▼
//!  replica registry ──commit_replica──► extra holders beyond σ(key)
//!        │   (atomic multi-peer copy in the commit_mapping_copies
//!        │    style: written copies roll back when the armed
//!        │    commit-crash hook downs the target mid-commit; inserts
//!        │    fan out to every registered extra the same way)
//!        │ a unit resolves a pattern whose routed lexical matches
//!        ▼
//!  replica-aware issue: rank σ(key) ∪ extras by the latency model's
//!        │  deterministic expected(origin, holder), ties by peer
//!        │  index; direct exchange with the best holder (no DHT walk,
//!        │  no routing-RNG draw)
//!        │
//!        ├──request answered──► replica_hits += 1, rows served
//!        │
//!        └──holder crashed / retries exhausted──► failovers += 1,
//!              next-ranked holder tried; only when every holder is
//!              down does the unit resolve PeerDown
//! ```
//!
//! ## Heat telemetry
//!
//! Every replica-path access bumps a windowed per-key counter on the
//! protocol clock (`ProtocolState::now`).
//! Reaching [`PlacementPolicy::heat_threshold`] accesses within one
//! [`PlacementPolicy::heat_window`] raises a [`HeatSpike`], handled
//! inline in the serving unit so its copies are charged as that unit's
//! overlay messages and latency:
//!
//! * service already within the rule's `latency_target` → [`SpikeAction::Hold`];
//! * holders below the growth cap → a new replica is committed on the
//!   cheapest live non-holder ([`SpikeAction::Replicate`]);
//! * at the cap → the worst-placed extra migrates to the cheaper peer
//!   ([`SpikeAction::Migrate`]) — σ owners never move, so prefix scans
//!   and null-policy routing always find the natural copies.
//!
//! `replica_hits` / `failovers` / `migrations` join
//! [`ExecStats`](super::exec::ExecStats) (diffed per issued unit, like
//! the protocol counters) and surface as
//! [`gridvine_netsim::ReplicaCounters`] via
//! [`GridVineSystem::replica_counters`].
//!
//! ## Determinism
//!
//! A null policy (no rules) takes none of these paths: no registry
//! entries, no heat tracking, no extra RNG draws — rows, stats and the
//! routing RNG stream are bit-identical to the PR-8 scheduler (pinned
//! by proptest for windows 1 and 4). An active policy consumes *no*
//! main-stream randomness either: candidate ranking uses the latency
//! model's deterministic [`expected`](gridvine_netsim::LatencyModel::expected)
//! and expected-latency scores are computed for **every** candidate
//! before liveness is probed, so the model's placement stream advances
//! identically in faulty and fault-free runs.

use super::{GridVineSystem, SystemError};
use gridvine_netsim::{NodeId, ReplicaCounters, SimDuration, SimTime};
use gridvine_pgrid::{BitString, PeerId};
use gridvine_rdf::Triple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Heat window used when a policy enables heat telemetry without
/// picking one.
pub const DEFAULT_HEAT_WINDOW: SimDuration = SimDuration::from_millis(50);

/// One placement rule: every key whose routed lexical starts with
/// `prefix` (a predicate URI, a schema name, or any key-prefix) is
/// held by `factor` peers — the natural σ(key) owners plus committed
/// extras.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementRule {
    /// Lexical prefix the rule covers (first matching rule wins).
    pub prefix: String,
    /// Desired number of live holders of a matching key. Factors at or
    /// below the natural σ-group size provision nothing up front but
    /// still enable replica-aware routing and heat migration.
    pub factor: usize,
    /// Expected one-way latency target: a heat spike whose best live
    /// holder already serves within the target holds placement steady
    /// instead of replicating or migrating. `None` chases every spike.
    #[serde(default)]
    pub latency_target: Option<SimDuration>,
}

impl PlacementRule {
    pub fn new(prefix: impl Into<String>, factor: usize) -> PlacementRule {
        PlacementRule {
            prefix: prefix.into(),
            factor,
            latency_target: None,
        }
    }

    /// Set the rule's expected-latency target.
    pub fn latency_target(mut self, target: SimDuration) -> PlacementRule {
        self.latency_target = Some(target);
        self
    }
}

/// The per-key-prefix replication policy
/// ([`GridVineConfig::placement`](super::GridVineConfig)). The default
/// is the **null policy**: no rules, exactly-owner placement,
/// bit-identical to the placement-free scheduler.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPolicy {
    /// Rules in priority order: the first whose prefix matches a
    /// routed lexical governs that key.
    #[serde(default)]
    pub rules: Vec<PlacementRule>,
    /// Replica-path accesses to one key within one window that raise a
    /// [`HeatSpike`]. Zero (the default) disables heat telemetry.
    #[serde(default)]
    pub heat_threshold: usize,
    /// Width of the per-key access window on the protocol clock
    /// (`None` → [`DEFAULT_HEAT_WINDOW`]).
    #[serde(default)]
    pub heat_window: Option<SimDuration>,
}

impl PlacementPolicy {
    pub fn new() -> PlacementPolicy {
        PlacementPolicy::default()
    }

    /// Append a rule replicating `prefix`-keyed lexicals to `factor`
    /// holders.
    pub fn replicate(mut self, prefix: impl Into<String>, factor: usize) -> PlacementPolicy {
        self.rules.push(PlacementRule::new(prefix, factor));
        self
    }

    /// Enable heat telemetry: `threshold` accesses within `window`
    /// raise a spike.
    pub fn heat(mut self, threshold: usize, window: SimDuration) -> PlacementPolicy {
        self.heat_threshold = threshold;
        self.heat_window = Some(window);
        self
    }

    /// The null policy places every key at exactly its owners.
    pub fn is_null(&self) -> bool {
        self.rules.is_empty()
    }

    /// First rule covering `lexical`, if any.
    pub fn rule_for(&self, lexical: &str) -> Option<&PlacementRule> {
        self.rules.iter().find(|r| lexical.starts_with(&r.prefix))
    }

    fn window(&self) -> SimDuration {
        self.heat_window.unwrap_or(DEFAULT_HEAT_WINDOW)
    }
}

/// What one heat spike did (see [`GridVineSystem::heat_spikes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpikeAction {
    /// A new replica was committed on this peer.
    Replicate(PeerId),
    /// The worst-placed extra moved to a cheaper peer.
    Migrate { from: PeerId, to: PeerId },
    /// Placement held steady: service already within the latency
    /// target, no cheaper live peer exists, or the commit failed and
    /// rolled back.
    Hold,
}

/// One detected heat spike: a key whose windowed access count reached
/// the policy threshold, and the placement change it triggered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatSpike {
    /// The routed lexical whose key went hot.
    pub lexical: String,
    /// The origin whose access tripped the threshold.
    pub origin: PeerId,
    /// Protocol-clock instant of the spike.
    pub at: SimTime,
    /// Accesses accumulated in the window.
    pub count: usize,
    /// What the spike triggered.
    pub action: SpikeAction,
}

/// Running placement counters, accumulated system-wide and diffed per
/// issued unit into [`ExecStats`](super::exec::ExecStats) — exactly
/// like [`ProtoCounters`](super::ProtoCounters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PlaceCounters {
    pub(crate) replica_hits: usize,
    pub(crate) failovers: usize,
    pub(crate) migrations: usize,
}

#[derive(Debug)]
struct HeatWindow {
    since: SimTime,
    count: usize,
}

/// Runtime placement state: the configured policy, the replica
/// registry (extra holders per key, beyond the natural σ owners), the
/// heat windows and the lifetime counters.
#[derive(Debug)]
pub(crate) struct PlacementState {
    pub(crate) policy: PlacementPolicy,
    /// Extra holders per exact key. Only fully-committed replicas are
    /// registered (a rolled-back commit leaves no entry), and σ owners
    /// never appear here.
    extras: BTreeMap<BitString, Vec<PeerId>>,
    heat: BTreeMap<BitString, HeatWindow>,
    pub(crate) counters: PlaceCounters,
    spikes: Vec<HeatSpike>,
}

impl PlacementState {
    pub(crate) fn new(policy: PlacementPolicy) -> PlacementState {
        PlacementState {
            policy,
            extras: BTreeMap::new(),
            heat: BTreeMap::new(),
            counters: PlaceCounters::default(),
            spikes: Vec::new(),
        }
    }

    fn extras_for(&self, key: &BitString) -> &[PeerId] {
        self.extras.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    fn register_extra(&mut self, key: BitString, peer: PeerId) {
        let list = self.extras.entry(key).or_default();
        if !list.contains(&peer) {
            list.push(peer);
        }
    }

    fn retire_extra(&mut self, key: &BitString, peer: PeerId) {
        if let Some(list) = self.extras.get_mut(key) {
            list.retain(|&p| p != peer);
            if list.is_empty() {
                self.extras.remove(key);
            }
        }
    }

    /// Record one replica-path access at `now`; `Some(count)` when the
    /// windowed count reaches the policy threshold (the window resets).
    fn record_access(&mut self, key: &BitString, now: SimTime) -> Option<usize> {
        let threshold = self.policy.heat_threshold;
        if threshold == 0 {
            return None;
        }
        let window = self.policy.window();
        let w = self.heat.entry(key.clone()).or_insert(HeatWindow {
            since: now,
            count: 0,
        });
        if now.saturating_since(w.since) > window {
            w.since = now;
            w.count = 0;
        }
        w.count += 1;
        if w.count >= threshold {
            let count = w.count;
            w.since = now;
            w.count = 0;
            Some(count)
        } else {
            None
        }
    }
}

impl GridVineSystem {
    /// Replica-aware unit issue: when a placement rule covers
    /// `lexical`, serve from the lowest-expected-latency live holder of
    /// its key, failing over past dead holders (see the module docs).
    /// `None` when no rule covers the key — the caller takes the
    /// classic routed path, so the null policy touches nothing.
    pub(crate) fn replica_route(
        &mut self,
        origin: PeerId,
        lexical: &str,
    ) -> Option<Result<PeerId, SystemError>> {
        if self.place.policy.is_null() {
            return None;
        }
        let rule = self.place.policy.rule_for(lexical)?.clone();
        let key = self.key_of(lexical);
        if let Some(count) = self.place.record_access(&key, self.proto.now) {
            self.heat_spike(origin, &key, lexical, count, &rule);
        }
        let holders = self.holders_of(&key);
        // Rank every holder before probing liveness: the latency
        // model's placement stream advances identically whether or not
        // any candidate is down.
        let mut ranked: Vec<(SimDuration, u32)> = holders
            .iter()
            .map(|&c| (self.expected_latency(origin, c), c.0))
            .collect();
        ranked.sort();
        let mut down = None;
        for &(_, c) in &ranked {
            let c = PeerId(c);
            match self.proto_request(origin, c) {
                Ok(()) => {
                    // A direct request/response exchange with a known
                    // holder: no DHT walk, no routing-RNG draw.
                    self.overlay.charge_direct(origin, c, 2);
                    self.place.counters.replica_hits += 1;
                    return Some(Ok(c));
                }
                Err(SystemError::PeerDown(p)) => {
                    // The unanswered request was still sent (and its
                    // retry backoffs accumulated in the unit's delay).
                    self.overlay.charge_direct(origin, c, 1);
                    self.place.counters.failovers += 1;
                    down = Some(SystemError::PeerDown(p));
                }
                Err(e) => return Some(Err(e)),
            }
        }
        Some(Err(down.unwrap_or(SystemError::NotRoutable)))
    }

    /// Placement hook of [`GridVineSystem::insert_triple`]: for each of
    /// the triple's three keys covered by a rule, fan the new triple
    /// out to the registered extras and provision up to the rule's
    /// factor. No-op under the null policy.
    pub(crate) fn place_triple(
        &mut self,
        origin: PeerId,
        t: &Triple,
        keys: &[BitString; 3],
    ) -> Result<(), SystemError> {
        if self.place.policy.is_null() {
            return Ok(());
        }
        let lexicals = [t.subject.as_str(), t.predicate.as_str(), t.object.lexical()];
        for (key, lexical) in keys.iter().zip(lexicals) {
            let Some(rule) = self.place.policy.rule_for(lexical).cloned() else {
                continue;
            };
            self.fan_out_insert(origin, key, t)?;
            self.ensure_factor(origin, key, &rule)?;
        }
        Ok(())
    }

    /// Atomically fan one freshly-placed triple out to the registered
    /// extras of `key`, in the `commit_mapping_copies` style: a down
    /// extra (possibly downed mid-commit by the armed crash hook) rolls
    /// the already-written copies back and fails the insert, so the
    /// registry never points at a holder missing rows.
    fn fan_out_insert(
        &mut self,
        origin: PeerId,
        key: &BitString,
        t: &Triple,
    ) -> Result<(), SystemError> {
        let extras = self.place.extras_for(key).to_vec();
        let mut written: Vec<PeerId> = Vec::new();
        for x in extras {
            if !written.is_empty() {
                // Between the first and later replica writes: the
                // armed crash hook fires here.
                if let Some(victim) = self.commit_crash.take() {
                    self.crash_peer(victim);
                }
            }
            if self.crashed.contains(&x) {
                for w in written {
                    self.local_dbs[w.index()].remove(t);
                }
                return Err(SystemError::PeerDown(x));
            }
            self.local_dbs[x.index()].insert(t.clone());
            self.overlay.charge_direct(origin, x, 1);
            written.push(x);
        }
        Ok(())
    }

    /// Commit replicas until `key` has `rule.factor` holders (or no
    /// live non-holder remains).
    fn ensure_factor(
        &mut self,
        origin: PeerId,
        key: &BitString,
        rule: &PlacementRule,
    ) -> Result<(), SystemError> {
        loop {
            let holders = self.holders_of(key);
            if holders.len() >= rule.factor {
                return Ok(());
            }
            let Some((_, target)) = self.best_new_holder(origin, &holders) else {
                return Ok(());
            };
            self.commit_replica(origin, key, target)?;
        }
    }

    /// Copy the full matching set of `key` from its first σ owner to
    /// `target` and register the extra — atomically: a target downed
    /// mid-copy (the armed crash hook fires between items) rolls the
    /// copied rows back, and the registry is only written after the
    /// last row lands. Charges one registration message plus one per
    /// copied triple as direct exchanges.
    fn commit_replica(
        &mut self,
        origin: PeerId,
        key: &BitString,
        target: PeerId,
    ) -> Result<(), SystemError> {
        if self.crashed.contains(&target) {
            return Err(SystemError::PeerDown(target));
        }
        let src = self
            .topology
            .responsible(key)
            .first()
            .copied()
            .expect("every key has a responsible peer");
        let items: Vec<Triple> = {
            let ks = self.keyspace();
            self.local_dbs[src.index()]
                .iter()
                .filter(|t| ks.triple_keys(t).contains(key))
                .collect()
        };
        let mut copied: Vec<Triple> = Vec::new();
        for t in items {
            if !copied.is_empty() {
                if let Some(victim) = self.commit_crash.take() {
                    self.crash_peer(victim);
                }
            }
            if self.crashed.contains(&target) {
                for c in &copied {
                    self.local_dbs[target.index()].remove(c);
                }
                return Err(SystemError::PeerDown(target));
            }
            self.local_dbs[target.index()].insert(t.clone());
            copied.push(t);
        }
        self.overlay
            .charge_direct(origin, target, 1 + copied.len() as u64);
        self.place.register_extra(key.clone(), target);
        Ok(())
    }

    /// Move the extra at `from` to `to`: commit the new copy first,
    /// then retire the old one (never a σ owner, so natural placement
    /// is untouched).
    fn migrate_replica(
        &mut self,
        origin: PeerId,
        key: &BitString,
        from: PeerId,
        to: PeerId,
    ) -> Result<(), SystemError> {
        self.commit_replica(origin, key, to)?;
        let items: Vec<Triple> = {
            let ks = self.keyspace();
            self.local_dbs[from.index()]
                .iter()
                .filter(|t| ks.triple_keys(t).contains(key))
                .collect()
        };
        for t in &items {
            self.local_dbs[from.index()].remove(t);
        }
        self.overlay.charge_direct(origin, from, 1);
        self.place.retire_extra(key, from);
        Ok(())
    }

    /// Handle one heat spike inline in the serving unit (its copies
    /// charge as that unit's messages and latency).
    fn heat_spike(
        &mut self,
        origin: PeerId,
        key: &BitString,
        lexical: &str,
        count: usize,
        rule: &PlacementRule,
    ) {
        let at = self.proto.now;
        let owners = self.topology.responsible(key).len();
        let holders = self.holders_of(key);
        // Score every holder before filtering liveness so the latency
        // model's call sequence is identical in faulty and fault-free
        // runs.
        let mut best_current: Option<SimDuration> = None;
        for &c in &holders {
            let d = self.expected_latency(origin, c);
            if self.crashed.contains(&c) || self.churn_down_at(c, at) {
                continue;
            }
            if best_current.is_none_or(|b| d < b) {
                best_current = Some(d);
            }
        }
        let within_target = match (rule.latency_target, best_current) {
            (Some(target), Some(best)) => best <= target,
            _ => false,
        };
        let action = if within_target {
            SpikeAction::Hold
        } else {
            match self.best_new_holder(origin, &holders) {
                Some((d, to)) if best_current.is_none_or(|b| d < b) => {
                    // Allow at least one heat-driven extra even when the
                    // factor is within the natural σ-group size.
                    let cap = rule.factor.max(owners + 1);
                    if holders.len() < cap {
                        match self.commit_replica(origin, key, to) {
                            Ok(()) => {
                                self.place.counters.migrations += 1;
                                SpikeAction::Replicate(to)
                            }
                            Err(_) => SpikeAction::Hold,
                        }
                    } else {
                        let worst_extra = self
                            .place
                            .extras_for(key)
                            .to_vec()
                            .into_iter()
                            .map(|x| (self.expected_latency(origin, x), x.0))
                            .max();
                        match worst_extra {
                            Some((_, from)) => {
                                let from = PeerId(from);
                                match self.migrate_replica(origin, key, from, to) {
                                    Ok(()) => {
                                        self.place.counters.migrations += 1;
                                        SpikeAction::Migrate { from, to }
                                    }
                                    Err(_) => SpikeAction::Hold,
                                }
                            }
                            None => SpikeAction::Hold,
                        }
                    }
                }
                _ => SpikeAction::Hold,
            }
        };
        self.place.spikes.push(HeatSpike {
            lexical: lexical.to_string(),
            origin,
            at,
            count,
            action,
        });
    }

    /// The cheapest live non-holder from `origin`, ties broken by peer
    /// index. Expected latency is computed for **every** non-holder
    /// before liveness filtering so the model stream stays independent
    /// of the crash/churn state.
    fn best_new_holder(
        &mut self,
        origin: PeerId,
        holders: &[PeerId],
    ) -> Option<(SimDuration, PeerId)> {
        let at = self.proto.now;
        let mut best: Option<(SimDuration, u32)> = None;
        for i in 0..self.config.peers {
            let p = PeerId::from_index(i);
            if holders.contains(&p) {
                continue;
            }
            let d = self.expected_latency(origin, p);
            if self.crashed.contains(&p) || self.churn_down_at(p, at) {
                continue;
            }
            if best.is_none_or(|b| (d, p.0) < b) {
                best = Some((d, p.0));
            }
        }
        best.map(|(d, p)| (d, PeerId(p)))
    }

    /// σ(key) ∪ registered extras, owners first.
    fn holders_of(&self, key: &BitString) -> Vec<PeerId> {
        let mut holders = self.topology.responsible(key).to_vec();
        for x in self.place.extras_for(key) {
            if !holders.contains(x) {
                holders.push(*x);
            }
        }
        holders
    }

    /// Deterministic expected one-way delay used to rank replica
    /// holders: zero to self, the flat per-message cost without a
    /// model, the model's [`expected`](gridvine_netsim::LatencyModel::expected)
    /// otherwise (an uninformative zero falls back to the flat cost so
    /// locality still wins ties).
    fn expected_latency(&mut self, from: PeerId, to: PeerId) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        match self.latency.as_deref_mut() {
            None => super::sched::PER_MESSAGE,
            Some(model) => {
                let d = model.expected(
                    NodeId::from_index(from.index()),
                    NodeId::from_index(to.index()),
                );
                if d == SimDuration::ZERO {
                    super::sched::PER_MESSAGE
                } else {
                    d
                }
            }
        }
    }

    /// Every peer currently holding copies of the key of `lexical`:
    /// the natural σ(key) owners plus the registered placement extras.
    pub fn replica_holders(&self, lexical: &str) -> Vec<PeerId> {
        self.holders_of(&self.key_of(lexical))
    }

    /// Chronological heat-spike log (see [`HeatSpike`]).
    pub fn heat_spikes(&self) -> &[HeatSpike] {
        &self.place.spikes
    }

    /// Lifetime replica-placement counters: replica-path serves,
    /// failovers past dead holders, heat-driven creations/migrations.
    pub fn replica_counters(&self) -> ReplicaCounters {
        let c = self.place.counters;
        ReplicaCounters {
            replica_hits: c.replica_hits as u64,
            failovers: c.failovers as u64,
            migrations: c.migrations as u64,
        }
    }

    /// Compact every peer's local store in one pass — replica copies
    /// compact together with their owners, so the scan order a pattern
    /// match observes stays aligned across all holders of a replicated
    /// key.
    pub fn compact_stores(&mut self) {
        for db in &mut self.local_dbs {
            db.compact();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_policy_matches_nothing() {
        let p = PlacementPolicy::default();
        assert!(p.is_null());
        assert!(p.rule_for("EMBL#Organism").is_none());
    }

    #[test]
    fn first_matching_rule_wins() {
        let p = PlacementPolicy::new().replicate("S0#", 3).replicate("S", 2);
        assert_eq!(p.rule_for("S0#a0").unwrap().factor, 3);
        assert_eq!(p.rule_for("S1#a1").unwrap().factor, 2);
        assert!(p.rule_for("T0#b0").is_none());
        assert!(!p.is_null());
    }

    #[test]
    fn heat_window_resets_on_spike_and_expiry() {
        let mut state = PlacementState::new(
            PlacementPolicy::new()
                .replicate("k", 2)
                .heat(3, SimDuration::from_millis(10)),
        );
        let key = BitString::parse("0101");
        let t0 = SimTime::ZERO;
        assert_eq!(state.record_access(&key, t0), None);
        assert_eq!(state.record_access(&key, t0), None);
        assert_eq!(
            state.record_access(&key, t0),
            Some(3),
            "third access spikes"
        );
        // The window reset: counting starts over.
        assert_eq!(state.record_access(&key, t0), None);
        // Accesses past the window expire the count.
        let later = t0 + SimDuration::from_millis(20);
        assert_eq!(state.record_access(&key, later), None);
        assert_eq!(state.record_access(&key, later), None);
        assert_eq!(state.record_access(&key, later), Some(3));
    }

    #[test]
    fn threshold_zero_disables_heat() {
        let mut state = PlacementState::new(PlacementPolicy::new().replicate("k", 2));
        let key = BitString::parse("0101");
        for _ in 0..100 {
            assert_eq!(state.record_access(&key, SimTime::ZERO), None);
        }
    }

    #[test]
    fn extras_register_and_retire() {
        let mut state = PlacementState::new(PlacementPolicy::default());
        let key = BitString::parse("0011");
        assert!(state.extras_for(&key).is_empty());
        state.register_extra(key.clone(), PeerId(7));
        state.register_extra(key.clone(), PeerId(7)); // idempotent
        state.register_extra(key.clone(), PeerId(9));
        assert_eq!(state.extras_for(&key), &[PeerId(7), PeerId(9)]);
        state.retire_extra(&key, PeerId(7));
        assert_eq!(state.extras_for(&key), &[PeerId(9)]);
        state.retire_extra(&key, PeerId(9));
        assert!(state.extras_for(&key).is_empty());
    }
}
