//! Logical query plans: the *what* of a GridVine `SearchFor`, separated
//! from the *how* of its execution.
//!
//! The paper's `SearchFor` (§2.3, §3, §4) is one conceptual operation —
//! route, reformulate across the mapping network, evaluate, join — that
//! historically surfaced as four monolithic entry points
//! (`resolve_pattern`, `resolve_object_prefix`, `search`,
//! `search_conjunctive`). A [`QueryPlan`] names the logical shape of one
//! such operation; the physical access path (routing keys, reformulation
//! strategy, join mode, TTL) is supplied at execution time by
//! [`crate::exec::QueryOptions`] and evaluated by
//! [`crate::GridVineSystem::execute`].
//!
//! The planner's static decisions live here:
//!
//! * [`QueryPlan::single`] picks the dissemination shape of a
//!   single-pattern query — reformulation closure when the predicate
//!   names a schema, an object-prefix range sweep when only a
//!   `prefix%` object constraint is routable, a plain routed lookup
//!   otherwise;
//! * [`QueryPlan::conjunctive`] picks the **join order** for bound
//!   substitution: most selective pattern first (more constants, longer
//!   routing constant, fewer variables), the same order the legacy
//!   `search_conjunctive` computed inline.

use gridvine_rdf::{ConjunctiveQuery, Term, TriplePattern, TriplePatternQuery};
use serde::{Deserialize, Serialize};

/// The logical shape of one `SearchFor` operation.
///
/// | Legacy entry point | Plan constructor |
/// |---|---|
/// | `resolve_pattern(q)` | [`QueryPlan::pattern`] |
/// | `resolve_object_prefix(q)` | [`QueryPlan::object_prefix`] |
/// | `search(q, strategy)` | [`QueryPlan::search`] + [`crate::exec::QueryOptions::strategy`] |
/// | `search_conjunctive(q, strategy, mode)` | [`QueryPlan::conjunctive`] + [`crate::exec::QueryOptions::join_mode`] |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryPlan {
    /// One routed lookup: `Hash(routing constant)` → evaluate the
    /// destination's `DB_p`. No reformulation.
    Pattern { query: TriplePatternQuery },
    /// A range sweep over the bit-prefix region an order-preserving
    /// hash maps the object's `prefix%` constraint to, visiting every
    /// peer group in the region.
    ObjectPrefix { query: TriplePatternQuery },
    /// The full `SearchFor` dissemination: answer the query in its own
    /// schema, then in every schema reachable through active mappings
    /// within the TTL (§3, §4).
    Closure { query: TriplePatternQuery },
    /// A conjunctive query: every pattern is disseminated like
    /// [`QueryPlan::Closure`] and the binding sets are joined. `order`
    /// is the planner's bound-join order (indices into
    /// `query.patterns`, most selective first); independent-join
    /// execution sweeps the patterns in their written order, which is
    /// what its message accounting is defined over.
    Join {
        query: ConjunctiveQuery,
        order: Vec<usize>,
    },
}

impl QueryPlan {
    /// A plain routed lookup with no reformulation (the legacy
    /// `resolve_pattern`).
    pub fn pattern(query: TriplePatternQuery) -> QueryPlan {
        QueryPlan::Pattern { query }
    }

    /// An object-prefix range sweep (the legacy
    /// `resolve_object_prefix`); requires the order-preserving hash at
    /// execution time.
    pub fn object_prefix(query: TriplePatternQuery) -> QueryPlan {
        QueryPlan::ObjectPrefix { query }
    }

    /// The full reformulation closure (the legacy `search`).
    pub fn search(query: TriplePatternQuery) -> QueryPlan {
        QueryPlan::Closure { query }
    }

    /// Plan a conjunctive query (the legacy `search_conjunctive`),
    /// fixing the bound-join order: most constants first, then the
    /// longest routing constant, then the fewest variables — the
    /// selectivity heuristic of distributed bound joins.
    pub fn conjunctive(query: ConjunctiveQuery) -> QueryPlan {
        let order = bound_join_order(&query.patterns);
        QueryPlan::Join { query, order }
    }

    /// Plan a single-pattern query automatically: a reformulation
    /// closure when the predicate names a schema (the common
    /// `SearchFor`), an object-prefix sweep when the pattern is only
    /// routable through a `prefix%` object constraint, and a plain
    /// routed lookup otherwise.
    pub fn single(query: TriplePatternQuery) -> QueryPlan {
        if gridvine_semantic::query_schema(&query).is_ok() {
            QueryPlan::Closure { query }
        } else if query.pattern.routing_constant().is_none()
            && object_prefix_core(&query.pattern).is_some()
        {
            QueryPlan::ObjectPrefix { query }
        } else {
            QueryPlan::Pattern { query }
        }
    }
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryPlan::Pattern { query } => write!(f, "Pattern({query})"),
            QueryPlan::ObjectPrefix { query } => write!(f, "ObjectPrefix({query})"),
            QueryPlan::Closure { query } => write!(f, "Closure({query})"),
            QueryPlan::Join { query, order } => write!(f, "Join({query}, order {order:?})"),
        }
    }
}

/// The fixed part of a pattern's object constraint when it has the
/// rangeable `prefix%` shape (non-empty prefix, single trailing
/// wildcard) — the only shape [`QueryPlan::ObjectPrefix`] can route.
pub(crate) fn object_prefix_core(pattern: &TriplePattern) -> Option<&str> {
    let object = pattern.object.as_const()?;
    let prefix = object.lexical().strip_suffix('%')?;
    (!prefix.is_empty() && !prefix.contains('%')).then_some(prefix)
}

/// Bound-join order over a conjunctive query's patterns: indices sorted
/// by decreasing constant count, then decreasing routing-constant
/// length, then increasing variable count (stable, so written order
/// breaks ties).
fn bound_join_order(patterns: &[TriplePattern]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..patterns.len()).collect();
    order.sort_by_key(|&i| {
        let p = &patterns[i];
        let routable_len = p
            .routing_constant()
            .map(|(_, t): (_, &Term)| t.lexical().len())
            .unwrap_or(0);
        (
            std::cmp::Reverse(p.constants().len()),
            std::cmp::Reverse(routable_len),
            p.variables().len(),
        )
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridvine_rdf::{PatternTerm, Term};

    #[test]
    fn single_picks_closure_for_schema_predicates() {
        let plan = QueryPlan::single(TriplePatternQuery::example_aspergillus());
        assert!(matches!(plan, QueryPlan::Closure { .. }));
    }

    #[test]
    fn single_picks_prefix_sweep_when_only_the_object_ranges() {
        let q = TriplePatternQuery::new(
            "x",
            TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("p"),
                PatternTerm::constant(Term::literal("Aspergillus%")),
            ),
        )
        .unwrap();
        assert!(matches!(
            QueryPlan::single(q),
            QueryPlan::ObjectPrefix { .. }
        ));
    }

    #[test]
    fn single_falls_back_to_a_plain_lookup() {
        // Routable subject constant, schema-less variable predicate.
        let q = TriplePatternQuery::new(
            "o",
            TriplePattern::new(
                PatternTerm::constant(Term::uri("seq:A78712")),
                PatternTerm::var("p"),
                PatternTerm::var("o"),
            ),
        )
        .unwrap();
        assert!(matches!(QueryPlan::single(q), QueryPlan::Pattern { .. }));
    }

    #[test]
    fn conjunctive_orders_by_selectivity() {
        // Unconstrained pattern second, doubly-constant pattern first.
        let q = ConjunctiveQuery::new(
            vec!["x".into()],
            vec![
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#SequenceLength")),
                    PatternTerm::var("len"),
                ),
                TriplePattern::new(
                    PatternTerm::var("x"),
                    PatternTerm::constant(Term::uri("EMBL#Organism")),
                    PatternTerm::constant(Term::literal("Aspergillus niger")),
                ),
            ],
        )
        .unwrap();
        let QueryPlan::Join { order, .. } = QueryPlan::conjunctive(q) else {
            panic!("expected a join plan");
        };
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn object_prefix_core_rejects_non_prefix_shapes() {
        for (bad, expect) in [
            ("%Aspergillus%", None),
            ("Aspergillus", None),
            ("%", None),
            ("a%b%", None),
            ("Aspergillus%", Some("Aspergillus")),
        ] {
            let p = TriplePattern::new(
                PatternTerm::var("x"),
                PatternTerm::var("p"),
                PatternTerm::constant(Term::literal(bad)),
            );
            assert_eq!(object_prefix_core(&p), expect, "{bad}");
        }
    }
}
